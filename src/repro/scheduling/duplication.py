"""HEFT with task duplication.

Duplication-based list scheduling attacks the transfer bottleneck from
the other side: instead of waiting for a predecessor's output to cross
the network, re-run the predecessor *locally* on the consumer's resource
when the re-execution finishes before the transfer would.  This module
implements the classic conservative variant on top of HEFT:

* jobs are placed in HEFT's upward-rank order with the minimum-EFT rule;
* per candidate resource, the placement additionally evaluates
  duplicating the job's *binding* predecessor — the one whose file
  earliest availability dominates the ready time — onto that resource
  (its own inputs priced with the usual FEA rules, its slot found on the
  real timeline);
* the duplicate is adopted only when it strictly lowers the job's EFT;
  the globally best (resource, with-or-without-duplicate) option wins.

Duplicates are first-class: they occupy processor time on the shared
timelines (so later jobs and other tenants plan around them), they are
recorded on the returned :class:`~repro.scheduling.base.Schedule` via
:meth:`~repro.scheduling.base.Schedule.add_duplicate`, and the
feasibility validators treat every copy as a data source.  Job status,
finish times and the makespan always come from the primary copies.

As a replanner (``run_adaptive(strategy="heft_dup")``) the strategy
re-derives duplicates from scratch on every pass — stale duplicates from
the previous plan are dropped (those that already began executing stay
pinned as facts), and a duplicate stranded on a departing resource marks
the plan infeasible exactly like a stranded primary
(see :func:`repro.core.adaptive.apply_departure_kills`).

Execution semantics: the discrete-event static executor runs duplicates
as real work (they occupy their booked slot, and their output is one
more data source for the job's consumers — under accurate estimates the
simulated makespan equals the planned one exactly).  Known
approximation: the adaptive loop's *truth-replay* projection and the
shared-grid actuals replay price dup plans conservatively — duplicates
are not re-executed there, so consumers wait for the primary copies and
achieved makespans are upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.scheduling.base import Schedule, TIME_EPS
from repro.scheduling.frame import PartialScheduleFrame, clone_timeline
from repro.scheduling.heft import BusyIntervals, heft_priority_order
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["heft_dup_reschedule", "HEFTDupScheduler"]

#: a fully specified placement option: (finish, start, dup or None)
#: where dup = (pred, dup_start, dup_finish)
_Option = Tuple[float, float, Optional[Tuple[str, float, float]]]


def _candidate_on(
    frame: PartialScheduleFrame, job: str, rid: str, *, insertion: bool
) -> _Option:
    """Best option for ``job`` on ``rid``: plain EFT vs duplicate-assisted."""
    costs = frame.costs
    duration = costs.computation_cost(job, rid)
    feas: Dict[str, float] = {
        pred: frame.fea(pred, job, rid) for pred in frame.workflow.predecessors(job)
    }
    ready = frame.clock
    for value in feas.values():
        if value > ready:
            ready = value
    timeline = frame.timelines[rid]
    start = timeline.earliest_start(ready, duration, insertion=insertion)
    plain: _Option = (start + duration, start, None)
    if not feas:
        return plain

    # binding predecessor: the latest input (deterministic tie-break)
    p_star = max(feas, key=lambda p: (feas[p], p))
    if feas[p_star] <= frame.clock + TIME_EPS:
        return plain  # nothing to gain: inputs are not the constraint
    dup_duration = costs.computation_cost(p_star, rid)
    dup_ready = frame.ready_time(p_star, rid)
    dup_start = timeline.earliest_start(dup_ready, dup_duration, insertion=insertion)
    dup_finish = dup_start + dup_duration
    ready2 = frame.clock
    for pred, value in feas.items():
        value = min(value, dup_finish) if pred == p_star else value
        if value > ready2:
            ready2 = value
    # the duplicate occupies the timeline too: place the job around it
    tentative = clone_timeline(timeline)
    tentative.occupy(dup_start, dup_finish, f"<dup:{p_star}>")
    start2 = tentative.earliest_start(ready2, duration, insertion=insertion)
    finish2 = start2 + duration
    if finish2 < plain[0] - TIME_EPS:
        return (finish2, start2, (p_star, dup_start, dup_finish))
    return plain


def heft_dup_reschedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float = 0.0,
    previous_schedule: Optional[Schedule] = None,
    execution_state=None,
    insertion: bool = True,
    respect_running: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    busy: Optional[BusyIntervals] = None,
    name: str = "heft_dup",
) -> Schedule:
    """(Re)schedule with HEFT order and duplication-assisted placement."""
    frame = PartialScheduleFrame(
        workflow,
        costs,
        resources,
        clock=clock,
        previous_schedule=previous_schedule,
        execution_state=execution_state,
        respect_running=respect_running,
        resource_available_from=resource_available_from,
        busy=busy,
        name=name,
    )
    order = [
        job
        for job in heft_priority_order(workflow, costs, resources)
        if job in frame.to_schedule_set
    ]
    for job in order:
        best_rid: Optional[str] = None
        best: Optional[_Option] = None
        for rid in frame.resources:
            option = _candidate_on(frame, job, rid, insertion=insertion)
            if best is None or option[0] < best[0] - TIME_EPS:
                best_rid = rid
                best = option
        assert best_rid is not None and best is not None
        finish, start, dup = best
        if dup is not None:
            pred, dup_start, dup_finish = dup
            frame.place_duplicate(pred, best_rid, dup_start, dup_finish)
        frame.place(job, best_rid, start, finish)
    return frame.schedule


@dataclass(frozen=True)
class HEFTDupScheduler:
    """HEFT with task duplication, common scheduler interface."""

    insertion: bool = True
    respect_running: bool = True
    name: str = "HEFT-Dup"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return heft_dup_reschedule(
            workflow,
            costs,
            resources,
            clock=0.0,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )

    def reschedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        previous_schedule: Optional[Schedule],
        execution_state=None,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return heft_dup_reschedule(
            workflow,
            costs,
            resources,
            clock=clock,
            previous_schedule=previous_schedule,
            execution_state=execution_state,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )
