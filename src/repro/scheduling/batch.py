"""Plan-style adapter for the dynamic batch heuristics (Min-Min family).

The Min-Min / Max-Min / Sufferage heuristics are *dynamic* by nature:
the just-in-time executor hands them a batch of ready jobs at each
decision instant (see :mod:`repro.scheduling.minmin`).  To make them
first-class citizens of the strategy registry — full-schedule producers
for the universal invariant suite, golden fixtures and the tournament,
replanners for the adaptive loop, ``busy``-aware tenants on a shared
grid — :class:`BatchPlanMixin` replays that just-in-time process
*analytically*:

* time advances from ``clock`` through the completion instants of mapped
  jobs; at each instant every job whose predecessors have all finished
  forms the ready batch;
* the batch is fixed job by job with the family's selector (smallest
  best completion for Min-Min, largest for Max-Min, largest sufferage
  for Sufferage), identical to :func:`repro.scheduling.minmin.batch_map`;
* candidate completions follow the dynamic-strategy rules of the paper
  (§4.1): input transfers start at the mapping decision time, and
  placement respects the per-resource timelines — which is what makes
  foreign ``busy`` bookings and pinned work binding.

The one deliberate difference from the scalar ``batch_map`` is that
slots come from :meth:`ResourceTimeline.earliest_start` (insertion
enabled), so busy blocks booked by other tenants in the future do not
push every local job behind them.  ``run_dynamic`` keeps using the
event-driven executor with the scalar code path; this adapter is the
*planning* view of the same heuristics.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scheduling.base import Assignment, Schedule, TIME_EPS
from repro.scheduling.frame import PartialScheduleFrame
from repro.scheduling.heft import BusyIntervals
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["BatchPlanMixin"]


class BatchPlanMixin:
    """Adds ``schedule``/``reschedule`` to a batch-mapping heuristic.

    Subclasses provide ``selector(best_by_job) -> job`` (the classic
    Min-Min-family selector over ``{job: (sufferage, best_assignment)}``)
    and a ``name`` attribute.
    """

    @staticmethod
    def selector(best_by_job: Dict[str, Tuple[float, Assignment]]) -> str:
        raise NotImplementedError

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return self.reschedule(
            workflow,
            costs,
            resources,
            clock=0.0,
            previous_schedule=None,
            execution_state=None,
            resource_available_from=resource_available_from,
            busy=busy,
        )

    def reschedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        previous_schedule: Optional[Schedule] = None,
        execution_state=None,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        frame = PartialScheduleFrame(
            workflow,
            costs,
            resources,
            clock=clock,
            previous_schedule=previous_schedule,
            execution_state=execution_state,
            respect_running=True,  # a just-in-time mapper cannot migrate work
            resource_available_from=resource_available_from,
            busy=busy,
            name=getattr(self, "name", "batch"),
        )
        finish_time: Dict[str, float] = {
            job: assignment.finish for job, assignment in frame.pinned.items()
        }
        location: Dict[str, str] = {
            job: assignment.resource_id for job, assignment in frame.pinned.items()
        }
        unmapped = set(frame.to_schedule)
        now = frame.clock
        while unmapped:
            ready = [
                job
                for job in frame.to_schedule
                if job in unmapped
                and all(
                    pred in finish_time and finish_time[pred] <= now + TIME_EPS
                    for pred in workflow.predecessors(job)
                )
            ]
            if not ready:
                pending = [
                    finish for finish in finish_time.values() if finish > now + TIME_EPS
                ]
                if not pending:  # pragma: no cover - guarded by DAG validation
                    raise RuntimeError("batch mapping stalled: no job is ready")
                now = min(pending)
                continue
            remaining = list(ready)
            while remaining:
                best_by_job: Dict[str, Tuple[float, Assignment]] = {}
                for job in remaining:
                    candidates: List[Assignment] = []
                    for rid in frame.resources:
                        data_ready = now
                        for pred in workflow.predecessors(job):
                            # dynamic-strategy rule: the transfer starts at
                            # the mapping decision, not at the producer's
                            # completion
                            transfer = costs.communication_cost(
                                pred, job, location[pred], rid
                            )
                            if now + transfer > data_ready:
                                data_ready = now + transfer
                        duration = costs.computation_cost(job, rid)
                        start = frame.timelines[rid].earliest_start(
                            data_ready, duration, insertion=True
                        )
                        candidates.append(Assignment(job, rid, start, start + duration))
                    candidates.sort(key=lambda a: (a.finish, a.resource_id))
                    best = candidates[0]
                    second = candidates[1] if len(candidates) > 1 else candidates[0]
                    best_by_job[job] = (second.finish - best.finish, best)
                chosen_job = self.selector(best_by_job)
                chosen = best_by_job[chosen_job][1]
                frame.place(chosen_job, chosen.resource_id, chosen.start, chosen.finish)
                finish_time[chosen_job] = chosen.finish
                location[chosen_job] = chosen.resource_id
                remaining.remove(chosen_job)
                unmapped.discard(chosen_job)
        return frame.schedule
