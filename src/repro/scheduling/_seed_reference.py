"""Frozen copy of the seed scheduling kernel (reference implementation).

The fast kernel (indexed DAG/cost caches, bisect timelines, rank reuse,
hoisted inner loops) is required to be *bit-identical* to the original seed
implementation: same assignments, same start/finish times, same makespans.
This module preserves the seed algorithms verbatim so that

* ``tests/test_scheduling_base.py`` can property-check the bisect-based
  :class:`~repro.scheduling.base.ResourceTimeline` against
  :class:`SeedResourceTimeline` on random interval sequences, and assert
  HEFT/AHEFT schedule equivalence on seeded random and application DAGs,
* ``benchmarks/bench_kernel_scaling.py`` can measure the speedup of the
  fast kernel against the exact seed code path.

Do not optimise this module — its slowness is the point.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    Schedule,
    TIME_EPS,
)
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "SeedResourceTimeline",
    "seed_upward_ranks",
    "seed_heft_priority_order",
    "seed_heft_schedule",
    "seed_aheft_reschedule",
    "SeedHEFTScheduler",
    "SeedAHEFTScheduler",
]


class SeedResourceTimeline:
    """The seed timeline: O(n) overlap scan + full re-sort per ``occupy``."""

    def __init__(self, resource_id: str, *, available_from: float = 0.0) -> None:
        self.resource_id = resource_id
        self.available_from = float(available_from)
        self._intervals: List[Tuple[float, float, str]] = []

    def occupy(self, start: float, finish: float, job_id: str) -> None:
        if finish < start - TIME_EPS:
            raise ValueError("finish precedes start")
        for other_start, other_finish, other_job in self._intervals:
            if start < other_finish - TIME_EPS and other_start < finish - TIME_EPS:
                raise ValueError(
                    f"interval [{start}, {finish}) of {job_id!r} overlaps "
                    f"[{other_start}, {other_finish}) of {other_job!r} on "
                    f"{self.resource_id!r}"
                )
        self._intervals.append((float(start), float(finish), job_id))
        self._intervals.sort(key=lambda item: (item[0], item[1], item[2]))

    def intervals(self) -> List[Tuple[float, float, str]]:
        return list(self._intervals)

    def ready_time(self) -> float:
        if not self._intervals:
            return self.available_from
        return max(self.available_from, max(finish for _, finish, _ in self._intervals))

    def earliest_start(
        self, ready: float, duration: float, *, insertion: bool = True
    ) -> float:
        ready = max(ready, self.available_from)
        if not insertion:
            return max(ready, self.ready_time())
        cursor = ready
        for start, finish, _ in self._intervals:
            if cursor + duration <= start + TIME_EPS:
                return cursor
            cursor = max(cursor, finish)
        return cursor


def seed_upward_ranks(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Seed ``rank_u``: per-job ``np.mean`` over the pool, no caching."""
    ranks: Dict[str, float] = {}
    order = workflow.topological_order()
    for job in reversed(order):
        if resources:
            w_avg = float(
                np.mean([costs.computation_cost(job, r) for r in resources])
            )
        else:
            w_avg = costs.intrinsic_average_computation_cost(job)
        succ = workflow.successors(job)
        if not succ:
            ranks[job] = w_avg
            continue
        best = 0.0
        for nxt in succ:
            c_avg = costs.average_communication_cost(job, nxt)
            candidate = c_avg + ranks[nxt]
            if candidate > best:
                best = candidate
        ranks[job] = w_avg + best
    return ranks


def seed_heft_priority_order(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> List[str]:
    ranks = seed_upward_ranks(workflow, costs, resources)
    topo_index = {job: idx for idx, job in enumerate(workflow.topological_order())}
    return sorted(
        workflow.jobs,
        key=lambda job: (-ranks[job], topo_index[job], job),
    )


def seed_heft_schedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    insertion: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    name: str = "heft",
) -> Schedule:
    """The seed static HEFT: per-(job, resource) cost/communication calls."""
    if not resources:
        raise ValueError("cannot schedule on an empty resource set")
    workflow.validate()
    availability = resource_available_from or {}
    timelines: Dict[str, SeedResourceTimeline] = {
        rid: SeedResourceTimeline(rid, available_from=float(availability.get(rid, 0.0)))
        for rid in resources
    }
    schedule = Schedule(name=name)

    for job in seed_heft_priority_order(workflow, costs, resources):
        best: Optional[Assignment] = None
        for rid in resources:
            duration = costs.computation_cost(job, rid)
            ready = 0.0
            for pred in workflow.predecessors(job):
                pred_assignment = schedule.get(pred)
                if pred_assignment is None:
                    raise RuntimeError(
                        f"predecessor {pred!r} of {job!r} not scheduled yet; "
                        "priority order is not topologically consistent"
                    )
                transfer = costs.communication_cost(
                    pred, job, pred_assignment.resource_id, rid
                )
                ready = max(ready, pred_assignment.finish + transfer)
            start = timelines[rid].earliest_start(ready, duration, insertion=insertion)
            candidate = Assignment(job, rid, start, start + duration)
            if best is None or candidate.finish < best.finish - TIME_EPS:
                best = candidate
        assert best is not None
        timelines[best.resource_id].occupy(best.start, best.finish, job)
        schedule.add(best)
    return schedule


def _seed_scheduled_transfer_arrival(
    pred: str,
    job: str,
    candidate_resource: str,
    costs: CostModel,
    previous_schedule: Optional[Schedule],
    state: ExecutionState,
) -> Optional[float]:
    recorded = state.data_available_at(pred, candidate_resource)
    if recorded is not None:
        return recorded
    if previous_schedule is None:
        return None
    finish = state.actual_finish.get(pred)
    if finish is None:
        return None
    old = previous_schedule.get(job)
    if old is not None and old.resource_id == candidate_resource:
        transfer = costs.communication_cost(
            pred, job, state.executed_on[pred], candidate_resource
        )
        return finish + transfer
    return None


def seed_aheft_reschedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float = 0.0,
    previous_schedule: Optional[Schedule] = None,
    execution_state: Optional[ExecutionState] = None,
    insertion: bool = True,
    respect_running: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    name: str = "aheft",
) -> Schedule:
    """The seed AHEFT: Eq. (1)-(3) evaluated per (job, resource, pred)."""
    if not resources:
        raise ValueError("cannot schedule on an empty resource set")
    workflow.validate()
    if clock < 0:
        raise ValueError("clock must be non-negative")

    if execution_state is None:
        if previous_schedule is not None:
            execution_state = ExecutionState.from_schedule(
                previous_schedule, clock, jobs=workflow.jobs
            )
        else:
            execution_state = ExecutionState.initial(workflow.jobs)
    state = execution_state

    pinned: Dict[str, Assignment] = {}
    for job in workflow.jobs:
        status = state.job_status(job)
        if status is JobStatus.FINISHED:
            pinned[job] = Assignment(
                job,
                state.executed_on[job],
                state.actual_start[job],
                state.actual_finish[job],
            )
        elif status is JobStatus.RUNNING and respect_running:
            if previous_schedule is not None and previous_schedule.get(job) is not None:
                sft = previous_schedule.scheduled_finish_time(job)
            else:
                sft = state.actual_start[job] + costs.computation_cost(
                    job, state.executed_on[job]
                )
            pinned[job] = Assignment(
                job, state.executed_on[job], state.actual_start[job], sft
            )
    to_schedule = [job for job in workflow.jobs if job not in pinned]

    availability = resource_available_from or {}
    timelines: Dict[str, SeedResourceTimeline] = {}
    for rid in resources:
        start = max(clock, float(availability.get(rid, clock)))
        timelines[rid] = SeedResourceTimeline(rid, available_from=start)
    for assignment in pinned.values():
        timeline = timelines.get(assignment.resource_id)
        if timeline is not None and assignment.finish > timeline.available_from:
            timeline.occupy(assignment.start, assignment.finish, assignment.job_id)

    schedule = Schedule(name=name)
    schedule.extend(pinned.values())

    def fea(pred: str, job: str, rid: str) -> float:
        if state.job_status(pred) is JobStatus.FINISHED:
            executed_on = state.executed_on[pred]
            finish = state.actual_finish[pred]
            if executed_on == rid:
                return finish
            arrival = _seed_scheduled_transfer_arrival(
                pred, job, rid, costs, previous_schedule, state
            )
            if arrival is not None:
                return arrival
            comm = costs.communication_cost(pred, job, executed_on, rid)
            return clock + comm
        pred_assignment = schedule.get(pred)
        if pred_assignment is None:
            raise RuntimeError(
                f"predecessor {pred!r} of {job!r} is neither executed nor "
                "scheduled; the priority order is not topologically consistent"
            )
        if pred_assignment.resource_id == rid:
            return pred_assignment.finish
        comm = costs.communication_cost(pred, job, pred_assignment.resource_id, rid)
        return pred_assignment.finish + comm

    to_schedule_set: Set[str] = set(to_schedule)
    order = [
        job
        for job in seed_heft_priority_order(workflow, costs, resources)
        if job in to_schedule_set
    ]
    for job in order:
        best: Optional[Assignment] = None
        for rid in resources:
            duration = costs.computation_cost(job, rid)
            ready = clock
            for pred in workflow.predecessors(job):
                ready = max(ready, fea(pred, job, rid))
            start = timelines[rid].earliest_start(ready, duration, insertion=insertion)
            candidate = Assignment(job, rid, start, start + duration)
            if best is None or candidate.finish < best.finish - TIME_EPS:
                best = candidate
        assert best is not None
        timelines[best.resource_id].occupy(best.start, best.finish, job)
        schedule.add(best)
    return schedule


class SeedHEFTScheduler:
    """Seed HEFT behind the common scheduler interface (for equivalence runs)."""

    def __init__(self, *, insertion: bool = True, name: str = "HEFT") -> None:
        self.insertion = insertion
        self.name = name

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
    ) -> Schedule:
        return seed_heft_schedule(
            workflow,
            costs,
            resources,
            insertion=self.insertion,
            resource_available_from=resource_available_from,
            name=self.name,
        )


class SeedAHEFTScheduler:
    """Seed AHEFT behind the common scheduler interface (for equivalence runs)."""

    def __init__(
        self,
        *,
        insertion: bool = True,
        respect_running: bool = True,
        name: str = "AHEFT",
    ) -> None:
        self.insertion = insertion
        self.respect_running = respect_running
        self.name = name

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
    ) -> Schedule:
        return seed_aheft_reschedule(
            workflow,
            costs,
            resources,
            clock=0.0,
            previous_schedule=None,
            execution_state=None,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            name=self.name,
        )

    def reschedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        previous_schedule: Schedule,
        execution_state: Optional[ExecutionState] = None,
        resource_available_from: Optional[Mapping[str, float]] = None,
    ) -> Schedule:
        return seed_aheft_reschedule(
            workflow,
            costs,
            resources,
            clock=clock,
            previous_schedule=previous_schedule,
            execution_state=execution_state,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            name=self.name,
        )
