"""Core scheduling data structures shared by every heuristic.

* :class:`Assignment` — one job mapped to one resource for a time window.
* :class:`Schedule` — a full mapping (the Planner's plan ``S``), with the
  per-resource timelines needed for insertion-based placement and with
  makespan / SFT queries (paper Eq. 4).
* :class:`ResourceTimeline` — occupied intervals on one resource plus the
  earliest-slot search used by HEFT's insertion policy.
* :class:`ExecutionState` — the run-time snapshot the adaptive Planner uses
  at rescheduling time ``clock``: which jobs finished (AST/AFT), which are
  running, and where produced data currently lives or is in flight.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, insort
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Assignment",
    "Schedule",
    "ResourceTimeline",
    "JobStatus",
    "ExecutionState",
]

#: Numerical slack used when comparing logical times.
TIME_EPS = 1e-9


@dataclass(frozen=True)
class Assignment:
    """A job mapped to a resource for ``[start, finish)``.

    ``finish`` is the scheduled finish time SFT(n_i) while the assignment is
    still a plan, and the actual finish time AFT(n_i) once executed.
    """

    job_id: str
    resource_id: str
    start: float
    finish: float

    def __post_init__(self) -> None:
        if self.finish < self.start - TIME_EPS:
            raise ValueError(
                f"assignment of {self.job_id!r} finishes before it starts"
            )

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def shifted(self, delta: float) -> "Assignment":
        """The same assignment translated in time by ``delta``."""
        return replace(self, start=self.start + delta, finish=self.finish + delta)


class ResourceTimeline:
    """Occupied intervals on one resource, kept sorted by start time.

    Provides the earliest-slot search used by HEFT's insertion-based policy:
    a new task of length ``duration`` that becomes ready at ``ready`` is
    placed either inside an idle gap large enough to hold it or after the
    last occupied interval.

    The interval list is maintained sorted with ``bisect.insort``; because
    intervals are pairwise non-overlapping (the ``occupy`` invariant), an
    insertion only has to check its sorted neighbourhood for conflicts and
    the gap scan of :meth:`earliest_start` can start at the bisect position
    of the ready time instead of at index 0.  The maximum finish time is
    cached so :meth:`ready_time` is O(1).
    """

    def __init__(self, resource_id: str, *, available_from: float = 0.0) -> None:
        self.resource_id = resource_id
        self.available_from = float(available_from)
        self._intervals: List[Tuple[float, float, str]] = []
        #: parallel list of start times, for bisect on the ready time
        self._starts: List[float] = []
        self._max_finish: float = float("-inf")

    # ------------------------------------------------------------------
    def occupy(self, start: float, finish: float, job_id: str) -> None:
        """Mark ``[start, finish)`` as used by ``job_id``.

        Raises
        ------
        ValueError
            If the interval overlaps an existing one (beyond float slack).
        """
        if finish < start - TIME_EPS:
            raise ValueError("finish precedes start")
        start = float(start)
        finish = float(finish)
        item = (start, finish, job_id)
        intervals = self._intervals
        pos = bisect_left(intervals, item)
        # Overlap with ``(os, of)`` means ``start < of - eps and os < finish
        # - eps``.  Rightwards, starts are non-decreasing, so the scan can
        # stop at the first interval starting at/after ``finish``.
        i = pos
        n = len(intervals)
        while i < n and intervals[i][0] < finish - TIME_EPS:
            if start < intervals[i][1] - TIME_EPS:
                self._raise_overlap(start, finish, job_id, intervals[i])
            i += 1
        # Leftwards, only the nearest non-degenerate interval can overlap:
        # anything before it finishes by that interval's start (pairwise
        # non-overlap), hence before ``start``; degenerate (zero-length)
        # intervals at or before ``start`` can never overlap anything.
        i = pos - 1
        while i >= 0:
            other = intervals[i]
            if other[1] - other[0] <= TIME_EPS:
                i -= 1
                continue
            if start < other[1] - TIME_EPS and other[0] < finish - TIME_EPS:
                self._raise_overlap(start, finish, job_id, other)
            break
        insort(intervals, item)
        insort(self._starts, start)
        if finish > self._max_finish:
            self._max_finish = finish

    def _raise_overlap(
        self, start: float, finish: float, job_id: str, other: Tuple[float, float, str]
    ) -> None:
        raise ValueError(
            f"interval [{start}, {finish}) of {job_id!r} overlaps "
            f"[{other[0]}, {other[1]}) of {other[2]!r} on "
            f"{self.resource_id!r}"
        )

    def intervals(self) -> List[Tuple[float, float, str]]:
        return list(self._intervals)

    def ready_time(self) -> float:
        """Earliest time after every occupied interval (``avail[j]`` without insertion)."""
        if not self._intervals:
            return self.available_from
        return max(self.available_from, self._max_finish)

    def earliest_start(
        self, ready: float, duration: float, *, insertion: bool = True
    ) -> float:
        """Earliest start time for a task of ``duration`` ready at ``ready``.

        With ``insertion=True`` (original HEFT policy) idle gaps between
        already-placed tasks are considered; otherwise the task is appended
        after the last occupied interval.
        """
        ready = max(ready, self.available_from)
        if not insertion:
            return max(ready, self.ready_time())
        intervals = self._intervals
        if not intervals or ready >= self._max_finish:
            return ready
        if duration <= TIME_EPS:
            # A (near-)zero-length task can slot against any interval
            # boundary, including ones entirely before ``ready`` — scan all
            # gaps like the reference implementation.
            first = 0
        else:
            # Intervals finishing at/before ``ready`` neither move the
            # cursor nor open a usable gap (that would need ``ready +
            # duration - eps <= start`` with ``start <= ready``), so the
            # scan starts at the bisect position, stepping back over any
            # interval still in flight at ``ready``.
            first = bisect_left(self._starts, ready)
            i = first - 1
            while i >= 0:
                other = intervals[i]
                if other[1] > ready:
                    first = i
                elif other[1] - other[0] > TIME_EPS:
                    break
                i -= 1
        cursor = ready
        for index in range(first, len(intervals)):
            start, finish, _ = intervals[index]
            # Exact negation of the overlap predicate in :meth:`occupy`
            # (``interval_start < candidate_finish - eps``), evaluated
            # through the same float expression so the two can never
            # disagree.  The earlier ``cursor + duration <= start + eps``
            # form rounded differently for epsilon-scale operands and
            # accepted gaps that ``occupy`` then rejected as overlapping.
            if cursor + duration - TIME_EPS <= start:
                return cursor
            if finish > cursor:
                cursor = finish
        return cursor

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``[available_from, horizon)`` that is occupied."""
        window = horizon - self.available_from
        if window <= 0:
            return 0.0
        busy = sum(
            max(0.0, min(finish, horizon) - max(start, self.available_from))
            for start, finish, _ in self._intervals
        )
        return busy / window


class Schedule:
    """A complete or partial mapping of workflow jobs onto resources.

    Besides the *primary* assignment per job, a schedule may carry
    **duplicates**: redundant executions of a job on additional resources,
    produced by duplication-based heuristics (HEFT with task duplication).
    A duplicate re-runs an already-mapped job closer to a consumer so the
    consumer can start from the local copy instead of waiting for the
    transfer from the primary site.  Duplicates occupy processor time (the
    no-overlap invariant covers them) and act as extra data sources for the
    precedence invariant, but the job's status, finish time and makespan
    contribution always come from the primary assignment.
    """

    def __init__(self, *, name: str = "schedule") -> None:
        self.name = name
        self._assignments: Dict[str, Assignment] = {}
        self._duplicates: List[Assignment] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, assignment: Assignment) -> None:
        """Add or replace the assignment of a job."""
        self._assignments[assignment.job_id] = assignment

    def extend(self, assignments: Iterable[Assignment]) -> None:
        for assignment in assignments:
            self.add(assignment)

    def add_duplicate(self, assignment: Assignment) -> None:
        """Record a redundant copy of an already-known job."""
        self._duplicates.append(assignment)

    def copy(self, *, name: Optional[str] = None) -> "Schedule":
        out = Schedule(name=name or self.name)
        out._assignments = dict(self._assignments)
        out._duplicates = list(self._duplicates)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, job_id: str) -> bool:
        return job_id in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self):
        return iter(self._assignments.values())

    def assignment(self, job_id: str) -> Assignment:
        return self._assignments[job_id]

    def get(self, job_id: str) -> Optional[Assignment]:
        return self._assignments.get(job_id)

    def jobs(self) -> List[str]:
        return list(self._assignments.keys())

    def resources_used(self) -> List[str]:
        return sorted({a.resource_id for a in self._assignments.values()})

    def resource_of(self, job_id: str) -> str:
        return self._assignments[job_id].resource_id

    def scheduled_finish_time(self, job_id: str) -> float:
        """SFT(n_i): the scheduled finish time of a mapped job."""
        return self._assignments[job_id].finish

    def scheduled_start_time(self, job_id: str) -> float:
        return self._assignments[job_id].start

    def makespan(self) -> float:
        """``max SFT(n_exit)`` — with no exit info, the max finish overall.

        The maximum over *all* jobs equals the maximum over exit jobs because
        every non-exit job finishes before its successors do.
        """
        if not self._assignments:
            return 0.0
        return max(a.finish for a in self._assignments.values())

    def assignments_on(self, resource_id: str) -> List[Assignment]:
        """Assignments placed on ``resource_id`` sorted by start time."""
        out = [a for a in self._assignments.values() if a.resource_id == resource_id]
        out.sort(key=lambda a: (a.start, a.finish, a.job_id))
        return out

    @property
    def duplicates(self) -> List[Assignment]:
        """Redundant copies recorded by duplication-based heuristics."""
        return list(self._duplicates)

    def duplicates_of(self, job_id: str) -> List[Assignment]:
        return [a for a in self._duplicates if a.job_id == job_id]

    def copies_of(self, job_id: str) -> List[Assignment]:
        """Every execution of a job: the primary copy plus any duplicates."""
        out: List[Assignment] = []
        primary = self._assignments.get(job_id)
        if primary is not None:
            out.append(primary)
        out.extend(self.duplicates_of(job_id))
        return out

    def all_assignments(self) -> List[Assignment]:
        """Primary assignments and duplicates — everything occupying time."""
        return list(self._assignments.values()) + list(self._duplicates)

    def timelines(
        self, resources: Optional[Sequence[str]] = None, *, available_from: Optional[Mapping[str, float]] = None
    ) -> Dict[str, ResourceTimeline]:
        """Per-resource timelines of this schedule's assignments."""
        resource_ids = list(resources) if resources is not None else self.resources_used()
        timelines: Dict[str, ResourceTimeline] = {}
        for rid in resource_ids:
            start = 0.0 if available_from is None else float(available_from.get(rid, 0.0))
            timelines[rid] = ResourceTimeline(rid, available_from=start)
        for assignment in self._assignments.values():
            if assignment.resource_id not in timelines:
                timelines[assignment.resource_id] = ResourceTimeline(assignment.resource_id)
            timelines[assignment.resource_id].occupy(
                assignment.start, assignment.finish, assignment.job_id
            )
        return timelines

    def gantt_rows(self) -> List[Tuple[str, str, float, float]]:
        """``(resource, job, start, finish)`` rows sorted for display."""
        rows = [
            (a.resource_id, a.job_id, a.start, a.finish)
            for a in self._assignments.values()
        ]
        rows.sort(key=lambda row: (row[0], row[2], row[1]))
        return rows

    def to_dict(self) -> Dict[str, Dict[str, float | str]]:
        """JSON-friendly rendering keyed by job id (primary copies only)."""
        return {
            job_id: {
                "resource": a.resource_id,
                "start": a.start,
                "finish": a.finish,
            }
            for job_id, a in sorted(self._assignments.items())
        }

    def duplicates_to_dict(self) -> List[List[object]]:
        """JSON-friendly rendering of the duplicate copies, sorted."""
        return sorted(
            [a.job_id, a.resource_id, a.start, a.finish] for a in self._duplicates
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule(name={self.name!r}, jobs={len(self)}, makespan={self.makespan():.2f})"


class JobStatus(enum.Enum):
    """Run-time status of a job at a given clock value."""

    NOT_STARTED = "not_started"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class ExecutionState:
    """Snapshot of a partially executed workflow at time ``clock``.

    Attributes
    ----------
    clock:
        The logical time of the snapshot (the ``clock`` of paper Eq. 1–3).
    status:
        Per-job :class:`JobStatus`.
    actual_start:
        AST(n_i) for jobs that started.
    actual_finish:
        AFT(n_i) for jobs that finished.
    executed_on:
        Resource each started job executes/executed on.
    data_arrivals:
        ``(producer_job, resource_id) -> time`` at which the producer's
        output is (or will be, for in-flight transfers) available on the
        resource.  Outputs are always available on the resource the producer
        ran on from AFT onwards; additional entries record transfers already
        initiated by the Executor under the previous schedule.
    """

    clock: float = 0.0
    status: Dict[str, JobStatus] = field(default_factory=dict)
    actual_start: Dict[str, float] = field(default_factory=dict)
    actual_finish: Dict[str, float] = field(default_factory=dict)
    executed_on: Dict[str, str] = field(default_factory=dict)
    data_arrivals: Dict[Tuple[str, str], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, jobs: Iterable[str]) -> "ExecutionState":
        """The pristine state: nothing started, clock at zero."""
        return cls(clock=0.0, status={job: JobStatus.NOT_STARTED for job in jobs})

    @classmethod
    def from_schedule(
        cls, schedule: Schedule, clock: float, *, jobs: Optional[Iterable[str]] = None
    ) -> "ExecutionState":
        """Derive the state of executing ``schedule`` accurately up to ``clock``.

        Under the paper's accuracy assumption (§4.1) a job scheduled for
        ``[start, finish)`` has actually started/finished exactly then, so
        the snapshot can be read off the schedule: finished if
        ``finish <= clock``, running if ``start <= clock < finish``.
        Data arrivals reflect the static-strategy rule that outputs are
        shipped to the successors' scheduled resources immediately on
        completion (§4.1 assumption 2); those transfers are recorded even if
        still in flight at ``clock``.
        """
        job_ids = list(jobs) if jobs is not None else schedule.jobs()
        state = cls(clock=float(clock))
        for job_id in job_ids:
            assignment = schedule.get(job_id)
            if assignment is None or assignment.start > clock + TIME_EPS:
                state.status[job_id] = JobStatus.NOT_STARTED
                continue
            state.executed_on[job_id] = assignment.resource_id
            state.actual_start[job_id] = assignment.start
            if assignment.finish <= clock + TIME_EPS:
                state.status[job_id] = JobStatus.FINISHED
                state.actual_finish[job_id] = assignment.finish
                state.data_arrivals[(job_id, assignment.resource_id)] = assignment.finish
            else:
                state.status[job_id] = JobStatus.RUNNING
        return state

    # ------------------------------------------------------------------
    def job_status(self, job_id: str) -> JobStatus:
        return self.status.get(job_id, JobStatus.NOT_STARTED)

    def is_finished(self, job_id: str) -> bool:
        return self.job_status(job_id) is JobStatus.FINISHED

    def is_running(self, job_id: str) -> bool:
        return self.job_status(job_id) is JobStatus.RUNNING

    def is_not_started(self, job_id: str) -> bool:
        return self.job_status(job_id) is JobStatus.NOT_STARTED

    def finished_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is JobStatus.FINISHED]

    def running_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is JobStatus.RUNNING]

    def unfinished_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is not JobStatus.FINISHED]

    def not_started_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is JobStatus.NOT_STARTED]

    def all_finished(self) -> bool:
        return bool(self.status) and all(
            s is JobStatus.FINISHED for s in self.status.values()
        )

    def record_start(self, job_id: str, resource_id: str, time: float) -> None:
        self.status[job_id] = JobStatus.RUNNING
        self.actual_start[job_id] = time
        self.executed_on[job_id] = resource_id

    def record_finish(self, job_id: str, time: float) -> None:
        if self.job_status(job_id) is not JobStatus.RUNNING:
            raise ValueError(f"job {job_id!r} cannot finish: it is not running")
        self.status[job_id] = JobStatus.FINISHED
        self.actual_finish[job_id] = time
        self.data_arrivals[(job_id, self.executed_on[job_id])] = time

    def record_data_arrival(self, producer: str, resource_id: str, time: float) -> None:
        key = (producer, resource_id)
        current = self.data_arrivals.get(key)
        if current is None or time < current:
            self.data_arrivals[key] = time

    def data_available_at(self, producer: str, resource_id: str) -> Optional[float]:
        """Time the producer's output is available on ``resource_id`` (or None)."""
        return self.data_arrivals.get((producer, resource_id))
