"""Core scheduling data structures shared by every heuristic.

* :class:`Assignment` — one job mapped to one resource for a time window.
* :class:`Schedule` — a full mapping (the Planner's plan ``S``), with the
  per-resource timelines needed for insertion-based placement and with
  makespan / SFT queries (paper Eq. 4).
* :class:`ResourceTimeline` — occupied intervals on one resource plus the
  earliest-slot search used by HEFT's insertion policy.
* :class:`ExecutionState` — the run-time snapshot the adaptive Planner uses
  at rescheduling time ``clock``: which jobs finished (AST/AFT), which are
  running, and where produced data currently lives or is in flight.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, insort
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Assignment",
    "Schedule",
    "ResourceTimeline",
    "TimelineArena",
    "JobStatus",
    "ExecutionState",
]

#: Numerical slack used when comparing logical times.
TIME_EPS = 1e-9

#: Safety margin for the conservative max-gap filter in
#: :meth:`ResourceTimeline.earliest_start` — generously larger than any
#: accumulated float rounding at the magnitudes logical times reach, and
#: far below any real task duration, so the filter is safely weaker than
#: the exact gap predicate while still firing on essentially every query.
_GAP_FILTER_SLACK = 1e-6


@dataclass(frozen=True)
class Assignment:
    """A job mapped to a resource for ``[start, finish)``.

    ``finish`` is the scheduled finish time SFT(n_i) while the assignment is
    still a plan, and the actual finish time AFT(n_i) once executed.
    """

    job_id: str
    resource_id: str
    start: float
    finish: float

    def __post_init__(self) -> None:
        if self.finish < self.start - TIME_EPS:
            raise ValueError(
                f"assignment of {self.job_id!r} finishes before it starts"
            )

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def shifted(self, delta: float) -> "Assignment":
        """The same assignment translated in time by ``delta``."""
        return replace(self, start=self.start + delta, finish=self.finish + delta)


class ResourceTimeline:
    """Occupied intervals on one resource, kept sorted by start time.

    Provides the earliest-slot search used by HEFT's insertion-based policy:
    a new task of length ``duration`` that becomes ready at ``ready`` is
    placed either inside an idle gap large enough to hold it or after the
    last occupied interval.

    The interval list is maintained sorted with ``bisect.insort``; because
    intervals are pairwise non-overlapping (the ``occupy`` invariant), an
    insertion only has to check its sorted neighbourhood for conflicts and
    the gap scan of :meth:`earliest_start` can start at the bisect position
    of the ready time instead of at index 0.  The maximum finish time is
    cached so :meth:`ready_time` is O(1).
    """

    def __init__(self, resource_id: str, *, available_from: float = 0.0) -> None:
        self.resource_id = resource_id
        self.available_from = float(available_from)
        self._intervals: List[Tuple[float, float, str]] = []
        #: parallel list of start times, for bisect on the ready time
        self._starts: List[float] = []
        #: parallel running maximum of finish times (``_prefix_finish[i]``
        #: is the max finish over ``_intervals[:i + 1]``); lets the gap scan
        #: of :meth:`earliest_start` absorb a whole run of unusable
        #: intervals into its cursor with one bisect instead of walking them
        self._prefix_finish: List[float] = []
        #: exact directory of the internal idle gaps larger than
        #: ``TIME_EPS``, sorted as ``(lo, hi)`` tuples where ``hi`` is the
        #: start of the interval behind the gap and ``lo`` the prefix
        #: maximum of every finish before it — i.e. exactly the cursor the
        #: reference scan of :meth:`earliest_start` would carry into that
        #: position.  For any task longer than the epsilon tolerance the
        #: earliest-slot search reduces to one bisect plus a scan of these
        #: entries; positions whose gap is at most ``TIME_EPS`` can never
        #: accept such a task, so leaving them out loses nothing.
        self._gaps: List[Tuple[float, float]] = []
        self._max_finish: float = float("-inf")
        #: conservative upper bound on the size of any idle gap between
        #: occupied intervals (see :meth:`earliest_start`); only ever
        #: overestimates (exact after :meth:`bulk_load`)
        self._max_gap_bound: float = 0.0
        #: conservative upper bound on the *end* of the last internal idle
        #: gap larger than ``TIME_EPS`` (see :meth:`earliest_start`); a
        #: query ready at/after it can only append at the tail.  Gaps only
        #: ever shrink or split after creation, so the bound stays valid.
        self._gap_end_bound: float = float(available_from)

    # ------------------------------------------------------------------
    def occupy(self, start: float, finish: float, job_id: str) -> None:
        """Mark ``[start, finish)`` as used by ``job_id``.

        Raises
        ------
        ValueError
            If the interval overlaps an existing one (beyond float slack).
        """
        if finish < start - TIME_EPS:
            raise ValueError("finish precedes start")
        start = float(start)
        finish = float(finish)
        item = (start, finish, job_id)
        intervals = self._intervals
        # Tail-append fast path — the overwhelmingly common case when jobs
        # are placed in priority order.  ``start`` at/after every finish
        # (minus the overlap tolerance) rules out any overlap, and a start
        # strictly past the last interval's start keeps the sort order, so
        # the bisects and neighbour scans of the general path are skipped.
        if intervals:
            last = intervals[-1]
            if start >= self._max_finish - TIME_EPS and start > last[0]:
                intervals.append(item)
                self._starts.append(start)
                prefix = self._prefix_finish
                prev = prefix[-1]
                prefix.append(finish if finish > prev else prev)
                if finish > self._max_finish:
                    self._max_finish = finish
                if start - prev > TIME_EPS:
                    insort(self._gaps, (prev, start))
                before = start - last[1]
                if before > TIME_EPS and start > self._gap_end_bound:
                    self._gap_end_bound = start
                if before > self._max_gap_bound:
                    self._max_gap_bound = before
                return
        else:
            intervals.append(item)
            self._starts.append(start)
            self._prefix_finish.append(finish)
            self._max_finish = finish
            before = start - self.available_from
            if before > self._max_gap_bound:
                self._max_gap_bound = before
            return
        pos = bisect_left(intervals, item)
        # Overlap with ``(os, of)`` means ``start < of - eps and os < finish
        # - eps``.  Rightwards, starts are non-decreasing, so the scan can
        # stop at the first interval starting at/after ``finish``.
        i = pos
        n = len(intervals)
        while i < n and intervals[i][0] < finish - TIME_EPS:
            if start < intervals[i][1] - TIME_EPS:
                self._raise_overlap(start, finish, job_id, intervals[i])
            i += 1
        # Leftwards, only the nearest non-degenerate interval can overlap:
        # anything before it finishes by that interval's start (pairwise
        # non-overlap), hence before ``start``; degenerate (zero-length)
        # intervals at or before ``start`` can never overlap anything.
        i = pos - 1
        while i >= 0:
            other = intervals[i]
            if other[1] - other[0] <= TIME_EPS:
                i -= 1
                continue
            if start < other[1] - TIME_EPS and other[0] < finish - TIME_EPS:
                self._raise_overlap(start, finish, job_id, other)
            break
        insort(intervals, item)
        insort(self._starts, start)
        if finish > self._max_finish:
            self._max_finish = finish
        pos = bisect_left(intervals, item)
        prefix = self._prefix_finish
        gaps = self._gaps
        starts_list = self._starts
        n_now = len(intervals)
        if pos == n_now - 1:
            prev = prefix[-1] if prefix else float("-inf")
            prefix.append(finish if finish > prev else prev)
            # the region ahead of the appended interval used to be the
            # (untracked) trailing region; it becomes an internal gap now
            if pos > 0 and start - prev > TIME_EPS:
                insort(gaps, (prev, start))
        else:
            # the insertion splits the inter-interval region at ``pos``:
            # drop its directory entry and re-add the surviving pieces
            running = prefix[pos - 1] if pos > 0 else float("-inf")
            old_next_start = starts_list[pos + 1]
            if pos > 0:
                if old_next_start - running > TIME_EPS:
                    old_gap = (running, old_next_start)
                    gi = bisect_left(gaps, old_gap)
                    if gi < len(gaps) and gaps[gi] == old_gap:
                        gaps.pop(gi)
                if start - running > TIME_EPS:
                    insort(gaps, (running, start))
            prefix.insert(pos, 0.0)
            new_running = finish if finish > running else running
            prefix[pos] = new_running
            if old_next_start - new_running > TIME_EPS:
                insort(gaps, (new_running, old_next_start))
            # Downstream, the new prefix is ``max(old prefix, finish)``;
            # the old values are non-decreasing, so the update stops at the
            # first position already at/above ``finish``.  Every raised
            # prefix re-anchors the directory entry of the gap behind it.
            idx = pos + 1
            while idx < n_now:
                old_val = prefix[idx]
                if finish <= old_val:
                    break
                prefix[idx] = finish
                if idx + 1 < n_now:
                    nxt = starts_list[idx + 1]
                    if nxt - old_val > TIME_EPS:
                        old_gap = (old_val, nxt)
                        gi = bisect_left(gaps, old_gap)
                        if gi < len(gaps) and gaps[gi] == old_gap:
                            gaps.pop(gi)
                    if nxt - finish > TIME_EPS:
                        insort(gaps, (finish, nxt))
                idx += 1
        # maintain the conservative gap bound: inserting can only split
        # existing gaps (covered by the old bound) or open a new gap next to
        # the inserted interval; neighbour finishes understate the prefix
        # max by at most the epsilon overlap tolerance, which the filter
        # slack absorbs
        if pos > 0:
            before = start - intervals[pos - 1][1]
            # a fresh internal gap opened in front of the inserted interval
            # ends at its start (the neighbour's finish understates the
            # prefix max by at most the epsilon overlap tolerance, so this
            # only over-triggers — the bound stays an overestimate)
            if before > TIME_EPS and start > self._gap_end_bound:
                self._gap_end_bound = start
        else:
            before = start - self.available_from
        if before > self._max_gap_bound:
            self._max_gap_bound = before
        if pos + 1 < len(intervals):
            after = intervals[pos + 1][0] - finish
            if after > self._max_gap_bound:
                self._max_gap_bound = after
            # the region behind the inserted interval is internal now even
            # if it used to be the (untracked) leading region before the
            # first interval
            if after > TIME_EPS and intervals[pos + 1][0] > self._gap_end_bound:
                self._gap_end_bound = intervals[pos + 1][0]

    def bulk_load(self, intervals: Iterable[Tuple[float, float, str]]) -> None:
        """Install a batch of intervals in one sorted build.

        Replaces ``k`` successive :meth:`occupy` calls (each an O(n) insort)
        with a single O(k log k) sort — the rebuild of pinned work at the
        start of every replan is the dominant timeline cost on large DAGs.
        Only valid on an empty timeline; the batch must be pairwise
        non-overlapping (it comes from an already-validated schedule), which
        a sweep over the sorted order verifies defensively with the same
        overlap predicate as :meth:`occupy`.
        """
        if self._intervals:
            raise ValueError("bulk_load requires an empty timeline")
        items = sorted(
            (float(start), float(finish), job_id) for start, finish, job_id in intervals
        )
        max_finish = float("-inf")
        max_item: Optional[Tuple[float, float, str]] = None
        for item in items:
            start, finish, job_id = item
            if finish < start - TIME_EPS:
                raise ValueError("finish precedes start")
            if (
                max_item is not None
                and start < max_finish - TIME_EPS
                and max_item[0] < finish - TIME_EPS
            ):
                self._raise_overlap(start, finish, job_id, max_item)
            if finish > max_finish:
                max_finish = finish
                max_item = item
        self._intervals = items
        self._starts = [item[0] for item in items]
        if items:
            self._max_finish = max_finish
            gap_bound = items[0][0] - self.available_from
            gap_end = self.available_from
            running = items[0][1]
            prefix = [running]
            gaps: List[Tuple[float, float]] = []
            for start, finish, _ in items[1:]:
                gap = start - running
                if gap > gap_bound:
                    gap_bound = gap
                if gap > TIME_EPS:
                    gaps.append((running, start))
                    if start > gap_end:
                        gap_end = start
                if finish > running:
                    running = finish
                prefix.append(running)
            self._prefix_finish = prefix
            self._gaps = gaps
            self._max_gap_bound = max(0.0, gap_bound)
            self._gap_end_bound = gap_end

    def reset(self, *, available_from: float = 0.0) -> None:
        """Return the timeline to its pristine empty state for reuse."""
        self.available_from = float(available_from)
        self._intervals = []
        self._starts = []
        self._prefix_finish = []
        self._gaps = []
        self._max_finish = float("-inf")
        self._max_gap_bound = 0.0
        self._gap_end_bound = self.available_from

    def _raise_overlap(
        self, start: float, finish: float, job_id: str, other: Tuple[float, float, str]
    ) -> None:
        raise ValueError(
            f"interval [{start}, {finish}) of {job_id!r} overlaps "
            f"[{other[0]}, {other[1]}) of {other[2]!r} on "
            f"{self.resource_id!r}"
        )

    def intervals(self) -> List[Tuple[float, float, str]]:
        return list(self._intervals)

    def ready_time(self) -> float:
        """Earliest time after every occupied interval (``avail[j]`` without insertion)."""
        if not self._intervals:
            return self.available_from
        return max(self.available_from, self._max_finish)

    def earliest_start(
        self, ready: float, duration: float, *, insertion: bool = True
    ) -> float:
        """Earliest start time for a task of ``duration`` ready at ``ready``.

        With ``insertion=True`` (original HEFT policy) idle gaps between
        already-placed tasks are considered; otherwise the task is appended
        after the last occupied interval.
        """
        ready = max(ready, self.available_from)
        if not insertion:
            return max(ready, self.ready_time())
        intervals = self._intervals
        if not intervals or ready >= self._max_finish:
            return ready
        if duration - TIME_EPS > self._max_gap_bound + _GAP_FILTER_SLACK:
            # No internal idle gap can hold this task (the bound only ever
            # overestimates gap sizes, and the filter slack absorbs every
            # float-rounding corner).  The leading region before the first
            # interval is the one candidate not covered by the bound — its
            # usable size depends on ``ready`` — so it is checked exactly.
            # Otherwise the scan below would walk every interval and return
            # ``max(ready, max finish)``: intervals excluded by its bisect
            # prologue all finish at/before ``ready``, so the global cached
            # maximum gives the identical cursor.
            if ready + duration - TIME_EPS <= intervals[0][0]:
                return ready
            return ready if ready > self._max_finish else self._max_finish
        if duration - TIME_EPS > TIME_EPS + _GAP_FILTER_SLACK:
            # A task longer than the epsilon tolerance can only start in the
            # leading region before the first interval, inside one of the
            # tracked internal gaps, or after every interval — positions
            # whose gap is at most ``TIME_EPS`` would need ``duration <=
            # 2·TIME_EPS``, excluded by the guard.
            #
            # Leading region: acceptance there implies ``ready`` precedes
            # the first start, so the reference scan would test position 0
            # with cursor ``ready`` and agree exactly.
            if ready + duration - TIME_EPS <= intervals[0][0]:
                return ready
            if ready >= self._gap_end_bound:
                # every tracked gap ends at/before ``ready`` — accepting one
                # would again need a sub-epsilon task; only the tail remains
                return ready if ready > self._max_finish else self._max_finish
            # Directory scan.  Each entry carries ``lo`` = the prefix
            # maximum of every finish before the gap, which equals the
            # reference scan's running cursor at that position (intervals
            # its prologue skips all finish at/before ``ready`` and cannot
            # raise the cursor past it).  Entries are ordered by position,
            # so the first acceptance is the reference's first acceptance,
            # through the same float expression as :meth:`occupy`'s overlap
            # predicate.  Gaps ending at/before ``ready`` cannot accept a
            # guarded task, so start at the bisect position — stepping back
            # once for a gap still open across ``ready`` (two such
            # straddling gaps would be separated by sub-epsilon intervals,
            # leaving the earlier one too small for a guarded task).
            gaps = self._gaps
            g = bisect_left(gaps, (ready,))
            if g and gaps[g - 1][1] > ready:
                g -= 1
            n_gaps = len(gaps)
            while g < n_gaps:
                lo, hi = gaps[g]
                cursor = ready if ready > lo else lo
                if cursor + duration - TIME_EPS <= hi:
                    return cursor
                g += 1
            return ready if ready > self._max_finish else self._max_finish
        if duration <= TIME_EPS:
            # A (near-)zero-length task can slot against any interval
            # boundary, including ones entirely before ``ready`` — scan all
            # gaps like the reference implementation.
            first = 0
        else:
            # Intervals finishing at/before ``ready`` neither move the
            # cursor nor open a usable gap (that would need ``ready +
            # duration - eps <= start`` with ``start <= ready``), so the
            # scan starts at the bisect position, stepping back over any
            # interval still in flight at ``ready``.
            first = bisect_left(self._starts, ready)
            i = first - 1
            while i >= 0:
                other = intervals[i]
                if other[1] > ready:
                    first = i
                elif other[1] - other[0] > TIME_EPS:
                    break
                i -= 1
        # Jump scan.  The acceptance test is the exact negation of the
        # overlap predicate in :meth:`occupy` (``interval_start <
        # candidate_finish - eps``), evaluated through the same float
        # expression so the two can never disagree.  Because the cursor only
        # ever grows, a whole run of intervals starting before ``cursor +
        # duration - eps`` fails that test one after the other — so instead
        # of walking them, bisect directly to the first interval at/past the
        # threshold and absorb the skipped run's finishes into the cursor
        # via the prefix maximum.  The prefix max over ``[0..j-1]`` equals
        # the reference scan's running cursor max exactly: every interval
        # the prologue excluded finishes at/before ``ready`` and cannot
        # raise it.
        starts = self._starts
        prefix = self._prefix_finish
        n = len(intervals)
        cursor = ready
        i = first
        while i < n:
            if cursor + duration - TIME_EPS <= starts[i]:
                return cursor
            i = bisect_left(starts, cursor + duration - TIME_EPS, i + 1, n)
            running = prefix[i - 1]
            if running > cursor:
                cursor = running
        return cursor

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``[available_from, horizon)`` that is occupied."""
        window = horizon - self.available_from
        if window <= 0:
            return 0.0
        busy = sum(
            max(0.0, min(finish, horizon) - max(start, self.available_from))
            for start, finish, _ in self._intervals
        )
        return busy / window


class TimelineArena:
    """Recycles :class:`ResourceTimeline` objects across replans.

    The adaptive loop rebuilds every resource's timeline from scratch on
    each trigger; recycling the objects (and installing the pinned batch via
    :meth:`ResourceTimeline.bulk_load`) keeps those rebuilds from
    reallocating per trigger.  Only safe for timelines that never escape
    the replan call — callers must not hand out references before
    :meth:`release`.
    """

    def __init__(self) -> None:
        self._pool: Dict[str, ResourceTimeline] = {}

    def acquire(self, resource_id: str, *, available_from: float = 0.0) -> ResourceTimeline:
        timeline = self._pool.pop(resource_id, None)
        if timeline is None:
            return ResourceTimeline(resource_id, available_from=available_from)
        timeline.reset(available_from=available_from)
        return timeline

    def release(self, timelines: Iterable[ResourceTimeline]) -> None:
        for timeline in timelines:
            self._pool[timeline.resource_id] = timeline


class Schedule:
    """A complete or partial mapping of workflow jobs onto resources.

    Besides the *primary* assignment per job, a schedule may carry
    **duplicates**: redundant executions of a job on additional resources,
    produced by duplication-based heuristics (HEFT with task duplication).
    A duplicate re-runs an already-mapped job closer to a consumer so the
    consumer can start from the local copy instead of waiting for the
    transfer from the primary site.  Duplicates occupy processor time (the
    no-overlap invariant covers them) and act as extra data sources for the
    precedence invariant, but the job's status, finish time and makespan
    contribution always come from the primary assignment.
    """

    def __init__(self, *, name: str = "schedule") -> None:
        self.name = name
        self._assignments: Dict[str, Assignment] = {}
        self._duplicates: List[Assignment] = []
        #: cached ``max finish`` (None = unknown); the adaptive loop queries
        #: the makespan several times per trigger, so keep it O(1)
        self._makespan_cache: Optional[float] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, assignment: Assignment) -> None:
        """Add or replace the assignment of a job."""
        if assignment.job_id in self._assignments:
            # replacing may *lower* the max finish; recompute lazily
            self._makespan_cache = None
        elif (
            self._makespan_cache is not None
            and assignment.finish > self._makespan_cache
        ):
            self._makespan_cache = assignment.finish
        self._assignments[assignment.job_id] = assignment

    def extend(self, assignments: Iterable[Assignment]) -> None:
        for assignment in assignments:
            self.add(assignment)

    def add_duplicate(self, assignment: Assignment) -> None:
        """Record a redundant copy of an already-known job."""
        self._duplicates.append(assignment)

    def copy(self, *, name: Optional[str] = None) -> "Schedule":
        out = Schedule(name=name or self.name)
        out._assignments = dict(self._assignments)
        out._duplicates = list(self._duplicates)
        out._makespan_cache = self._makespan_cache
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, job_id: str) -> bool:
        return job_id in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self):
        return iter(self._assignments.values())

    def assignment(self, job_id: str) -> Assignment:
        return self._assignments[job_id]

    def get(self, job_id: str) -> Optional[Assignment]:
        return self._assignments.get(job_id)

    def jobs(self) -> List[str]:
        return list(self._assignments.keys())

    def resources_used(self) -> List[str]:
        return sorted({a.resource_id for a in self._assignments.values()})

    def resource_of(self, job_id: str) -> str:
        return self._assignments[job_id].resource_id

    def scheduled_finish_time(self, job_id: str) -> float:
        """SFT(n_i): the scheduled finish time of a mapped job."""
        return self._assignments[job_id].finish

    def scheduled_start_time(self, job_id: str) -> float:
        return self._assignments[job_id].start

    def makespan(self) -> float:
        """``max SFT(n_exit)`` — with no exit info, the max finish overall.

        The maximum over *all* jobs equals the maximum over exit jobs because
        every non-exit job finishes before its successors do.
        """
        if not self._assignments:
            return 0.0
        if self._makespan_cache is None:
            self._makespan_cache = max(a.finish for a in self._assignments.values())
        return self._makespan_cache

    def assignments_on(self, resource_id: str) -> List[Assignment]:
        """Assignments placed on ``resource_id`` sorted by start time."""
        out = [a for a in self._assignments.values() if a.resource_id == resource_id]
        out.sort(key=lambda a: (a.start, a.finish, a.job_id))
        return out

    @property
    def duplicates(self) -> List[Assignment]:
        """Redundant copies recorded by duplication-based heuristics."""
        return list(self._duplicates)

    def duplicates_of(self, job_id: str) -> List[Assignment]:
        return [a for a in self._duplicates if a.job_id == job_id]

    def copies_of(self, job_id: str) -> List[Assignment]:
        """Every execution of a job: the primary copy plus any duplicates."""
        out: List[Assignment] = []
        primary = self._assignments.get(job_id)
        if primary is not None:
            out.append(primary)
        out.extend(self.duplicates_of(job_id))
        return out

    def all_assignments(self) -> List[Assignment]:
        """Primary assignments and duplicates — everything occupying time."""
        return list(self._assignments.values()) + list(self._duplicates)

    def timelines(
        self, resources: Optional[Sequence[str]] = None, *, available_from: Optional[Mapping[str, float]] = None
    ) -> Dict[str, ResourceTimeline]:
        """Per-resource timelines of this schedule's assignments."""
        resource_ids = list(resources) if resources is not None else self.resources_used()
        timelines: Dict[str, ResourceTimeline] = {}
        for rid in resource_ids:
            start = 0.0 if available_from is None else float(available_from.get(rid, 0.0))
            timelines[rid] = ResourceTimeline(rid, available_from=start)
        grouped: Dict[str, List[Tuple[float, float, str]]] = {}
        for assignment in self._assignments.values():
            grouped.setdefault(assignment.resource_id, []).append(
                (assignment.start, assignment.finish, assignment.job_id)
            )
        for rid, items in grouped.items():
            if rid not in timelines:
                timelines[rid] = ResourceTimeline(rid)
            timelines[rid].bulk_load(items)
        return timelines

    def gantt_rows(self) -> List[Tuple[str, str, float, float]]:
        """``(resource, job, start, finish)`` rows sorted for display."""
        rows = [
            (a.resource_id, a.job_id, a.start, a.finish)
            for a in self._assignments.values()
        ]
        rows.sort(key=lambda row: (row[0], row[2], row[1]))
        return rows

    def to_dict(self) -> Dict[str, Dict[str, float | str]]:
        """JSON-friendly rendering keyed by job id (primary copies only)."""
        return {
            job_id: {
                "resource": a.resource_id,
                "start": a.start,
                "finish": a.finish,
            }
            for job_id, a in sorted(self._assignments.items())
        }

    def duplicates_to_dict(self) -> List[List[object]]:
        """JSON-friendly rendering of the duplicate copies, sorted."""
        return sorted(
            [a.job_id, a.resource_id, a.start, a.finish] for a in self._duplicates
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule(name={self.name!r}, jobs={len(self)}, makespan={self.makespan():.2f})"


class JobStatus(enum.Enum):
    """Run-time status of a job at a given clock value."""

    NOT_STARTED = "not_started"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class ExecutionState:
    """Snapshot of a partially executed workflow at time ``clock``.

    Attributes
    ----------
    clock:
        The logical time of the snapshot (the ``clock`` of paper Eq. 1–3).
    status:
        Per-job :class:`JobStatus`.
    actual_start:
        AST(n_i) for jobs that started.
    actual_finish:
        AFT(n_i) for jobs that finished.
    executed_on:
        Resource each started job executes/executed on.
    data_arrivals:
        ``(producer_job, resource_id) -> time`` at which the producer's
        output is (or will be, for in-flight transfers) available on the
        resource.  Outputs are always available on the resource the producer
        ran on from AFT onwards; additional entries record transfers already
        initiated by the Executor under the previous schedule.
    """

    clock: float = 0.0
    status: Dict[str, JobStatus] = field(default_factory=dict)
    actual_start: Dict[str, float] = field(default_factory=dict)
    actual_finish: Dict[str, float] = field(default_factory=dict)
    executed_on: Dict[str, str] = field(default_factory=dict)
    data_arrivals: Dict[Tuple[str, str], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, jobs: Iterable[str]) -> "ExecutionState":
        """The pristine state: nothing started, clock at zero."""
        return cls(clock=0.0, status={job: JobStatus.NOT_STARTED for job in jobs})

    @classmethod
    def from_schedule(
        cls, schedule: Schedule, clock: float, *, jobs: Optional[Iterable[str]] = None
    ) -> "ExecutionState":
        """Derive the state of executing ``schedule`` accurately up to ``clock``.

        Under the paper's accuracy assumption (§4.1) a job scheduled for
        ``[start, finish)`` has actually started/finished exactly then, so
        the snapshot can be read off the schedule: finished if
        ``finish <= clock``, running if ``start <= clock < finish``.
        Data arrivals reflect the static-strategy rule that outputs are
        shipped to the successors' scheduled resources immediately on
        completion (§4.1 assumption 2); those transfers are recorded even if
        still in flight at ``clock``.
        """
        job_ids = list(jobs) if jobs is not None else schedule.jobs()
        state = cls(clock=float(clock))
        for job_id in job_ids:
            assignment = schedule.get(job_id)
            if assignment is None or assignment.start > clock + TIME_EPS:
                state.status[job_id] = JobStatus.NOT_STARTED
                continue
            state.executed_on[job_id] = assignment.resource_id
            state.actual_start[job_id] = assignment.start
            if assignment.finish <= clock + TIME_EPS:
                state.status[job_id] = JobStatus.FINISHED
                state.actual_finish[job_id] = assignment.finish
                state.data_arrivals[(job_id, assignment.resource_id)] = assignment.finish
            else:
                state.status[job_id] = JobStatus.RUNNING
        return state

    # ------------------------------------------------------------------
    def job_status(self, job_id: str) -> JobStatus:
        return self.status.get(job_id, JobStatus.NOT_STARTED)

    def is_finished(self, job_id: str) -> bool:
        return self.job_status(job_id) is JobStatus.FINISHED

    def is_running(self, job_id: str) -> bool:
        return self.job_status(job_id) is JobStatus.RUNNING

    def is_not_started(self, job_id: str) -> bool:
        return self.job_status(job_id) is JobStatus.NOT_STARTED

    def finished_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is JobStatus.FINISHED]

    def running_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is JobStatus.RUNNING]

    def unfinished_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is not JobStatus.FINISHED]

    def not_started_jobs(self) -> List[str]:
        return [j for j, s in self.status.items() if s is JobStatus.NOT_STARTED]

    def all_finished(self) -> bool:
        return bool(self.status) and all(
            s is JobStatus.FINISHED for s in self.status.values()
        )

    def record_start(self, job_id: str, resource_id: str, time: float) -> None:
        self.status[job_id] = JobStatus.RUNNING
        self.actual_start[job_id] = time
        self.executed_on[job_id] = resource_id

    def record_finish(self, job_id: str, time: float) -> None:
        if self.job_status(job_id) is not JobStatus.RUNNING:
            raise ValueError(f"job {job_id!r} cannot finish: it is not running")
        self.status[job_id] = JobStatus.FINISHED
        self.actual_finish[job_id] = time
        self.data_arrivals[(job_id, self.executed_on[job_id])] = time

    def record_data_arrival(self, producer: str, resource_id: str, time: float) -> None:
        key = (producer, resource_id)
        current = self.data_arrivals.get(key)
        if current is None or time < current:
            self.data_arrivals[key] = time

    def data_available_at(self, producer: str, resource_id: str) -> Optional[float]:
        """Time the producer's output is available on ``resource_id`` (or None)."""
        return self.data_arrivals.get((producer, resource_id))
