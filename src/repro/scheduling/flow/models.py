"""Pluggable arc-cost models for the min-cost flow scheduler.

A cost model prices the two kinds of task arcs in the assignment graph
(:mod:`repro.scheduling.flow.graph`): ``assignment_cost(job, rid)`` —
run the job on that resource this wave — and ``deferral_cost(job)`` —
send it to the unscheduled aggregator and retry next wave.  Models see
the live :class:`~repro.scheduling.frame.PartialScheduleFrame`, so costs
reflect everything already booked: pinned history, foreign ``busy``
spans and this pass's earlier waves.

Three models ship (Firmament's OCTOPUS as the exemplar, see
SNIPPETS.md):

``octopus``
    pure load balancing: ``cost = core_id + running_tasks(rid) *
    BUSY_PU_OFFSET``, with the busy-PU count read off the frame's
    timelines instead of Firmament's machine topology.
``locality``
    data-gravity: the summed average communication cost of every
    predecessor whose output is *not* already on the candidate resource
    (from ``CostModel.predecessor_communications``), so tasks flow
    toward their inputs.
``credit``
    OCTOPUS scaled by the multi-tenant credit weight: a violating
    tenant's placement arcs cost ``1/weight`` more while its deferral
    arc gets ``weight`` times cheaper, so eroded tenants bid weaker for
    contended slots and yield waves earlier.
"""

from __future__ import annotations

from typing import Dict

from repro.scheduling.base import TIME_EPS
from repro.scheduling.frame import PartialScheduleFrame

__all__ = [
    "FLOW_COST_MODELS",
    "BUSY_PU_OFFSET",
    "UNSCHEDULED_COST",
    "DEFERRAL_COST",
    "FlowCostModel",
    "OctopusCostModel",
    "LocalityCostModel",
    "CreditCostModel",
]

#: Firmament's OCTOPUS constants (octopus_cost_model.cc)
BUSY_PU_OFFSET = 100
UNSCHEDULED_COST = 1_000_000
#: the credit model's reachable deferral price (see :class:`CreditCostModel`)
DEFERRAL_COST = 64 * BUSY_PU_OFFSET


def _running_tasks(frame: PartialScheduleFrame, rid: str) -> int:
    """Bookings on ``rid`` still occupying it at or after the clock."""
    return sum(
        1
        for _, finish, _ in frame.timelines[rid].intervals()
        if finish > frame.clock + TIME_EPS
    )


class FlowCostModel:
    """Base: deterministic float costs per (job, resource) / deferral."""

    name = "base"

    def __init__(self, frame: PartialScheduleFrame, *, credit_weight: float = 1.0):
        self.frame = frame
        self.credit_weight = float(credit_weight)
        #: stable core ids, Firmament-style tie-break on equal load
        self.core_id: Dict[str, int] = {
            rid: index for index, rid in enumerate(frame.resources)
        }

    def assignment_cost(self, job: str, rid: str) -> float:
        raise NotImplementedError

    def deferral_cost(self, job: str) -> float:
        return float(UNSCHEDULED_COST)


class OctopusCostModel(FlowCostModel):
    """Load balancing only: cheapest resource = fewest busy PUs."""

    name = "octopus"

    def assignment_cost(self, job: str, rid: str) -> float:
        return self.core_id[rid] + _running_tasks(self.frame, rid) * BUSY_PU_OFFSET


class LocalityCostModel(FlowCostModel):
    """Data gravity: pay the average transfer for every remote input."""

    name = "locality"

    def __init__(self, frame: PartialScheduleFrame, *, credit_weight: float = 1.0):
        super().__init__(frame, credit_weight=credit_weight)
        structure = frame.workflow.structure()
        self._dense = {job: index for index, job in enumerate(structure.jobs)}
        self._jobs = structure.jobs
        self._pred_comm = frame.costs.predecessor_communications()

    def _data_location(self, pred: str) -> str:
        assignment = self.frame.schedule.get(pred)
        if assignment is None:
            raise RuntimeError(
                f"predecessor {pred!r} has no placement yet; the wave loop "
                "must only price ready tasks"
            )
        return assignment.resource_id

    def assignment_cost(self, job: str, rid: str) -> float:
        cost = 0.0
        for pred_id, mean_comm in self._pred_comm[self._dense[job]]:
            if self._data_location(self._jobs[pred_id]) != rid:
                cost += mean_comm
        # core id keeps ties deterministic-by-preference, as in OCTOPUS
        return cost + self.core_id[rid] * 1e-6


class CreditCostModel(OctopusCostModel):
    """OCTOPUS with credit-weighted bids (deviation from Firmament).

    Placement arcs scale by ``1/weight`` (``weight = 0.5 + 0.5·credit``,
    the :class:`~repro.core.credit.CreditLedger` damping) and the
    deferral arc by ``weight``, priced at :data:`DEFERRAL_COST` instead
    of the unreachable :data:`UNSCHEDULED_COST` so the trade-off is live:
    a fully trusted tenant defers a task only once every candidate
    resource holds ~64 outstanding bookings, while a tenant at the
    credit floor yields at ~16 — eroded credit converts contended waves
    into voluntary deferrals rather than ever-later bookings.
    """

    name = "credit"

    def assignment_cost(self, job: str, rid: str) -> float:
        base = 1.0 + super().assignment_cost(job, rid)
        return base / self.credit_weight

    def deferral_cost(self, job: str) -> float:
        return DEFERRAL_COST * self.credit_weight


FLOW_COST_MODELS = {
    model.name: model
    for model in (OctopusCostModel, LocalityCostModel, CreditCostModel)
}
