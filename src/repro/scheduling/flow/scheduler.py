"""The min-cost max-flow scheduling strategy (``mincost_flow``).

Firmament/Quincy recast task placement as a flow problem: tasks and
resources become graph nodes, arc costs encode the placement policy, and
one min-cost max-flow solve maps *every* ready task at once — placement
decisions trade off against each other globally instead of greedily, and
changing the policy means changing arc costs, not the algorithm.

This strategy brings that formulation into the repo's common scheduler
interface.  Because flow solves assignment (who runs where) but not
sequencing (when), the DAG is consumed in **waves**:

1. collect the ready set — unmapped jobs whose predecessors are all
   mapped (pinned or placed in an earlier wave),
2. price every (task, resource) arc with the configured cost model and
   solve one unit-capacity assignment
   (:func:`~repro.scheduling.flow.graph.solve_assignment`),
3. book the placed tasks onto the frame's timelines at their earliest
   feasible slot; tasks the solve routed to the unscheduled aggregator
   wait for a later wave,
4. if a wave places nothing (every deferral arc undercut every
   placement arc), force-place the first ready job by HEFT's minimum-EFT
   rule so the loop always terminates.

Unit resource capacity per wave mirrors Firmament's one-slot-per-PU
machine topology and doubles as the load-spreading mechanism: a wave of
``k`` ready tasks lands on ``k`` distinct resources when the pool allows.
Within a wave, placement order cannot change the outcome — each resource
receives at most one new task and FEA only reads already-mapped
predecessors — so the schedule is a pure function of the solve, which is
itself deterministic (integer costs, ordered arcs).

Built on :class:`~repro.scheduling.frame.PartialScheduleFrame`, the
strategy inherits partial rescheduling and shared-grid ``busy`` support,
so it serves as the replanner inside ``run_adaptive`` and the
multi-tenant planner like every other frame-built heuristic.  The
``credit`` cost model additionally understands per-tenant credit: the
planner rebinds the scheduler via :meth:`MinCostFlowScheduler.
bind_tenant_context` so an eroded tenant bids weaker for contended
slots (see :mod:`repro.scheduling.flow.models`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.scheduling.base import Schedule
from repro.scheduling.flow.graph import solve_assignment
from repro.scheduling.flow.models import FLOW_COST_MODELS
from repro.scheduling.frame import PartialScheduleFrame
from repro.scheduling.heft import BusyIntervals
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["mincost_flow_reschedule", "MinCostFlowScheduler"]


def mincost_flow_reschedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float = 0.0,
    previous_schedule: Optional[Schedule] = None,
    execution_state=None,
    cost_model: str = "octopus",
    credit_weight: float = 1.0,
    insertion: bool = True,
    respect_running: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    busy: Optional[BusyIntervals] = None,
    name: str = "mincost_flow",
) -> Schedule:
    """(Re)schedule a workflow via wave-by-wave min-cost flow solves.

    With ``clock == 0`` and no previous schedule this is the static
    plan; otherwise finished and running jobs stay pinned and only the
    remainder is re-mapped, exactly like the other frame-built
    replanners.
    """
    model_factory = FLOW_COST_MODELS.get(cost_model)
    if model_factory is None:
        raise ValueError(
            f"unknown flow cost model {cost_model!r}; "
            f"available: {sorted(FLOW_COST_MODELS)}"
        )
    frame = PartialScheduleFrame(
        workflow,
        costs,
        resources,
        clock=clock,
        previous_schedule=previous_schedule,
        execution_state=execution_state,
        respect_running=respect_running,
        resource_available_from=resource_available_from,
        busy=busy,
        name=name,
    )
    if not frame.to_schedule:
        return frame.schedule

    topo_index = {job: idx for idx, job in enumerate(workflow.topological_order())}
    unmapped = set(frame.to_schedule)
    while unmapped:
        ready: List[str] = sorted(
            (
                job
                for job in unmapped
                if not any(
                    pred in unmapped for pred in workflow.predecessors(job)
                )
            ),
            key=lambda job: topo_index[job],
        )
        model = model_factory(frame, credit_weight=credit_weight)
        placements = solve_assignment(
            ready, frame.resources, model.assignment_cost, model.deferral_cost
        )
        if not placements:
            # every placement arc lost to its deferral arc; force the
            # frontier job through min-EFT so the wave loop terminates
            job = ready[0]
            rid, start, finish = frame.min_eft_placement(job, insertion=insertion)
            frame.place(job, rid, start, finish)
            unmapped.discard(job)
            continue
        for job in ready:
            rid = placements.get(job)
            if rid is None:
                continue  # routed to the unscheduled aggregator
            start, finish = frame.earliest_finish(job, rid, insertion=insertion)
            frame.place(job, rid, start, finish)
            unmapped.discard(job)
    return frame.schedule


@dataclass(frozen=True)
class MinCostFlowScheduler:
    """Min-cost max-flow placement exposed through the common interface.

    ``cost_model`` selects the arc-pricing policy (``octopus``,
    ``locality`` or ``credit``); ``credit_weight`` is the tenant's
    fair-share weight, normally injected per-arrival by the multi-tenant
    planner through :meth:`bind_tenant_context`.
    """

    cost_model: str = "octopus"
    credit_weight: float = 1.0
    insertion: bool = True
    respect_running: bool = True
    name: str = "MinCostFlow"

    def __post_init__(self) -> None:
        if self.cost_model not in FLOW_COST_MODELS:
            raise ValueError(
                f"unknown flow cost model {self.cost_model!r}; "
                f"available: {sorted(FLOW_COST_MODELS)}"
            )
        if not self.credit_weight > 0:
            raise ValueError("credit_weight must be positive")

    def bind_tenant_context(self, *, credit_weight: float) -> "MinCostFlowScheduler":
        """A copy of this scheduler bidding with the tenant's weight."""
        return dataclasses.replace(self, credit_weight=float(credit_weight))

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return mincost_flow_reschedule(
            workflow,
            costs,
            resources,
            clock=0.0,
            cost_model=self.cost_model,
            credit_weight=self.credit_weight,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )

    def reschedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        previous_schedule: Optional[Schedule],
        execution_state=None,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return mincost_flow_reschedule(
            workflow,
            costs,
            resources,
            clock=clock,
            previous_schedule=previous_schedule,
            execution_state=execution_state,
            cost_model=self.cost_model,
            credit_weight=self.credit_weight,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )
