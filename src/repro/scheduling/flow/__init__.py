"""Min-cost max-flow scheduling (Firmament-style), as a registry strategy.

Layered bottom-up: :mod:`~repro.scheduling.flow.solver` is a generic
deterministic min-cost max-flow solver, :mod:`~repro.scheduling.flow.graph`
builds and solves the one-wave task-assignment graph,
:mod:`~repro.scheduling.flow.models` prices its arcs (pluggable cost
models), and :mod:`~repro.scheduling.flow.scheduler` drives waves of
solves over a :class:`~repro.scheduling.frame.PartialScheduleFrame` to
produce full schedules — registered as ``mincost_flow``.
"""

from repro.scheduling.flow.graph import COST_SCALE, solve_assignment
from repro.scheduling.flow.models import (
    BUSY_PU_OFFSET,
    DEFERRAL_COST,
    FLOW_COST_MODELS,
    UNSCHEDULED_COST,
    CreditCostModel,
    FlowCostModel,
    LocalityCostModel,
    OctopusCostModel,
)
from repro.scheduling.flow.scheduler import (
    MinCostFlowScheduler,
    mincost_flow_reschedule,
)
from repro.scheduling.flow.solver import FlowNetwork

__all__ = [
    "FlowNetwork",
    "COST_SCALE",
    "solve_assignment",
    "FLOW_COST_MODELS",
    "BUSY_PU_OFFSET",
    "UNSCHEDULED_COST",
    "DEFERRAL_COST",
    "FlowCostModel",
    "OctopusCostModel",
    "LocalityCostModel",
    "CreditCostModel",
    "mincost_flow_reschedule",
    "MinCostFlowScheduler",
]
