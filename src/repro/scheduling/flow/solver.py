"""A small deterministic min-cost max-flow solver (pure python).

Successive shortest paths with SPFA (queue-based Bellman–Ford) distance
labels: repeatedly find a cheapest residual source→sink path, augment by
the bottleneck capacity, stop when the sink is unreachable.  SPFA rather
than Dijkstra-with-potentials because residual reverse arcs carry
negative costs and the assignment graphs built by
:mod:`repro.scheduling.flow.graph` are tiny (tasks + resources + 3
nodes), so the simpler label-correcting algorithm wins on clarity.

Determinism is a contract, not an accident: arcs keep insertion order,
SPFA relaxes the adjacency lists in that order and re-parents only on a
*strict* distance improvement, and all costs are integers (the graph
layer scales float costs).  Identical graphs therefore produce
bit-identical flows — which is what lets the scheduler built on top
promise bit-identical schedules.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

__all__ = ["FlowNetwork"]

_INF = float("inf")


class FlowNetwork:
    """Directed graph with integer capacities/costs and residual arcs.

    Every :meth:`add_arc` call creates the forward arc at an even index
    and its zero-capacity reverse at the following odd index; the flow
    pushed over arc ``a`` is readable as the reverse arc's capacity
    (``flow_on``).
    """

    def __init__(self, node_count: int) -> None:
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        self.node_count = node_count
        self._adjacent: List[List[int]] = [[] for _ in range(node_count)]
        self._to: List[int] = []
        self._capacity: List[int] = []
        self._cost: List[int] = []

    def add_arc(self, src: int, dst: int, capacity: int, cost: int) -> int:
        """Add ``src -> dst`` with ``capacity`` at ``cost`` per unit."""
        if not (0 <= src < self.node_count and 0 <= dst < self.node_count):
            raise ValueError("arc endpoint out of range")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        index = len(self._to)
        self._to.append(dst)
        self._capacity.append(int(capacity))
        self._cost.append(int(cost))
        self._adjacent[src].append(index)
        self._to.append(src)
        self._capacity.append(0)
        self._cost.append(-int(cost))
        self._adjacent[dst].append(index + 1)
        return index

    def flow_on(self, arc: int) -> int:
        """Units pushed over the forward arc ``arc``."""
        return self._capacity[arc ^ 1]

    # ------------------------------------------------------------------
    def _cheapest_path(self, source: int, sink: int):
        """SPFA distance labels plus the arc that set each label."""
        distance = [_INF] * self.node_count
        parent_arc = [-1] * self.node_count
        in_queue = [False] * self.node_count
        distance[source] = 0
        queue = deque([source])
        in_queue[source] = True
        while queue:
            node = queue.popleft()
            in_queue[node] = False
            base = distance[node]
            for arc in self._adjacent[node]:
                if self._capacity[arc] <= 0:
                    continue
                to = self._to[arc]
                candidate = base + self._cost[arc]
                if candidate < distance[to]:  # strict: deterministic parents
                    distance[to] = candidate
                    parent_arc[to] = arc
                    if not in_queue[to]:
                        queue.append(to)
                        in_queue[to] = True
        if parent_arc[sink] < 0:
            return None
        return parent_arc

    def min_cost_max_flow(self, source: int, sink: int) -> Tuple[int, int]:
        """Push the maximum flow at minimum total cost; ``(flow, cost)``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total_flow = 0
        total_cost = 0
        while True:
            parent_arc = self._cheapest_path(source, sink)
            if parent_arc is None:
                return total_flow, total_cost
            bottleneck = None
            node = sink
            while node != source:
                arc = parent_arc[node]
                capacity = self._capacity[arc]
                if bottleneck is None or capacity < bottleneck:
                    bottleneck = capacity
                node = self._to[arc ^ 1]
            node = sink
            while node != source:
                arc = parent_arc[node]
                self._capacity[arc] -= bottleneck
                self._capacity[arc ^ 1] += bottleneck
                total_cost += bottleneck * self._cost[arc]
                node = self._to[arc ^ 1]
            total_flow += bottleneck
