"""The task-assignment flow graph (Firmament's shape, one ready wave).

One solve maps a *wave* of ready tasks onto the resource pool::

    source --1--> task_i --cost(i,r)--> resource_r --1--> sink
                     \\--defer(i)--> unscheduled aggregator --|T|--> sink

All task and resource arcs have unit capacity (a resource takes at most
one new task per wave, mirroring Firmament's one-slot-per-PU machine
topology); the unscheduled aggregator absorbs any task the solve prefers
to defer, so the program is *always* feasible — max flow equals the
number of tasks, and minimum cost decides who runs where and who waits
for the next wave.

Costs arrive as floats from the pluggable cost models and are scaled to
integers here (``COST_SCALE``), keeping the solver exact and the result
deterministic across platforms.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.scheduling.flow.solver import FlowNetwork

__all__ = ["COST_SCALE", "solve_assignment"]

#: float costs are fixed-point scaled by this factor before solving
COST_SCALE = 1024


def _scaled(cost: float) -> int:
    if cost != cost or cost == float("inf"):  # NaN / inf guard
        raise ValueError(f"flow arc cost must be finite, got {cost!r}")
    return max(0, int(round(cost * COST_SCALE)))


def solve_assignment(
    tasks: Sequence[str],
    resources: Sequence[str],
    assignment_cost: Callable[[str, str], float],
    deferral_cost: Callable[[str], float],
) -> Dict[str, str]:
    """Min-cost assignment of one wave; ``task -> resource`` for the
    tasks the solve placed (deferred tasks are simply absent).

    ``assignment_cost(task, resource)`` prices running the task there
    now; ``deferral_cost(task)`` prices sending it to the unscheduled
    aggregator instead.  Both in float cost units.
    """
    if not tasks:
        return {}
    if not resources:
        raise ValueError("cannot build an assignment graph without resources")
    task_count = len(tasks)
    source, sink, aggregator = 0, 1, 2
    task_base = 3
    resource_base = task_base + task_count
    network = FlowNetwork(resource_base + len(resources))

    placement_arcs: Dict[Tuple[str, str], int] = {}
    for i, task in enumerate(tasks):
        network.add_arc(source, task_base + i, 1, 0)
        for r, rid in enumerate(resources):
            placement_arcs[(task, rid)] = network.add_arc(
                task_base + i, resource_base + r, 1, _scaled(assignment_cost(task, rid))
            )
        network.add_arc(task_base + i, aggregator, 1, _scaled(deferral_cost(task)))
    for r in range(len(resources)):
        network.add_arc(resource_base + r, sink, 1, 0)
    network.add_arc(aggregator, sink, task_count, 0)

    flow, _ = network.min_cost_max_flow(source, sink)
    assert flow == task_count, "aggregator arc keeps the program feasible"
    return {
        task: rid
        for (task, rid), arc in placement_arcs.items()
        if network.flow_on(arc) > 0
    }
