"""Lookahead HEFT — child-aware earliest-finish-time placement.

Plain HEFT places each job greedily on the resource minimising its own
EFT; when a job's children are communication-heavy this can strand the
children behind an expensive transfer.  The lookahead variant
(Bittencourt, Sakellariou & Madeira, 2010) evaluates each candidate
resource by *one step of lookahead*: tentatively place the job there,
estimate the best achievable EFT of every child given that placement,
and choose the resource minimising the worst child EFT (ties broken by
the job's own EFT, then by resource order — deterministic).

Approximations, documented deviations from the cited formulation:

* a child's other predecessors that are neither pinned nor placed yet
  contribute nothing to its estimated ready time (the full algorithm
  recursively schedules the children; one-step lookahead does not);
* on the tentative resource itself, the child is appended after the
  tentative job rather than inserted into earlier gaps.

Both approximations only affect the *selection score*; the actual
placement uses the exact timelines, so feasibility is never at stake.

Like every frame-based strategy, lookahead HEFT doubles as a partial
replanner (pinning, FEA of Eq. 1–3, foreign ``busy`` bookings), so it
can drive the adaptive loop via ``run_adaptive(strategy="lookahead_heft")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.scheduling.base import JobStatus, Schedule, TIME_EPS
from repro.scheduling.frame import PartialScheduleFrame
from repro.scheduling.heft import BusyIntervals, heft_priority_order
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["lookahead_heft_reschedule", "LookaheadHEFTScheduler"]


def _child_best_eft(
    frame: PartialScheduleFrame,
    child: str,
    job: str,
    job_rid: str,
    job_finish: float,
    *,
    insertion: bool,
) -> float:
    """Best achievable EFT of ``child`` given ``job`` tentatively placed."""
    workflow = frame.workflow
    costs = frame.costs
    state = frame.state
    best = float("inf")
    for rid in frame.resources:
        ready = frame.clock
        for pred in workflow.predecessors(child):
            if pred == job:
                if rid == job_rid:
                    value = job_finish
                else:
                    value = job_finish + costs.communication_cost(
                        pred, child, job_rid, rid
                    )
            elif (
                state.job_status(pred) is JobStatus.FINISHED
                or frame.schedule.get(pred) is not None
            ):
                value = frame.fea(pred, child, rid)
            else:
                continue  # unscheduled sibling predecessor: no estimate yet
            if value > ready:
                ready = value
        duration = costs.computation_cost(child, rid)
        if rid == job_rid:
            # the tentative job occupies [start, finish) here: append after
            start = frame.timelines[rid].earliest_start(
                max(ready, job_finish), duration, insertion=insertion
            )
        else:
            start = frame.timelines[rid].earliest_start(
                ready, duration, insertion=insertion
            )
        finish = start + duration
        if finish < best:
            best = finish
    return best


def lookahead_heft_reschedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float = 0.0,
    previous_schedule: Optional[Schedule] = None,
    execution_state=None,
    insertion: bool = True,
    respect_running: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    busy: Optional[BusyIntervals] = None,
    name: str = "lookahead_heft",
) -> Schedule:
    """(Re)schedule with one-step child-aware EFT placement."""
    frame = PartialScheduleFrame(
        workflow,
        costs,
        resources,
        clock=clock,
        previous_schedule=previous_schedule,
        execution_state=execution_state,
        respect_running=respect_running,
        resource_available_from=resource_available_from,
        busy=busy,
        name=name,
    )
    order = [
        job
        for job in heft_priority_order(workflow, costs, resources)
        if job in frame.to_schedule_set
    ]
    for job in order:
        children = list(workflow.successors(job))
        best_rid: Optional[str] = None
        best_start = 0.0
        best_finish = float("inf")
        best_score = float("inf")
        for rid in frame.resources:
            start, finish = frame.earliest_finish(job, rid, insertion=insertion)
            score = finish
            for child in children:
                child_eft = _child_best_eft(
                    frame, child, job, rid, finish, insertion=insertion
                )
                if child_eft > score:
                    score = child_eft
            if (
                best_rid is None
                or score < best_score - TIME_EPS
                or (abs(score - best_score) <= TIME_EPS and finish < best_finish - TIME_EPS)
            ):
                best_rid = rid
                best_start = start
                best_finish = finish
                best_score = score
        assert best_rid is not None
        frame.place(job, best_rid, best_start, best_finish)
    return frame.schedule


@dataclass(frozen=True)
class LookaheadHEFTScheduler:
    """Lookahead HEFT exposed through the common scheduler interface."""

    insertion: bool = True
    respect_running: bool = True
    name: str = "LookaheadHEFT"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return lookahead_heft_reschedule(
            workflow,
            costs,
            resources,
            clock=0.0,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )

    def reschedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        previous_schedule: Optional[Schedule],
        execution_state=None,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return lookahead_heft_reschedule(
            workflow,
            costs,
            resources,
            clock=clock,
            previous_schedule=previous_schedule,
            execution_state=execution_state,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )
