"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

HEFT is the static heuristic the paper builds on: jobs are prioritised by
*upward rank* (Eq. 5/6) and, in non-increasing rank order, each job is
placed on the resource that minimises its Earliest Finish Time, optionally
using the insertion-based policy (a job may be placed in an idle gap between
already-scheduled jobs on a resource).

This module implements the *traditional* static HEFT used as the paper's
baseline: it is executed once, before the workflow starts, against the
resource pool known at time 0, and it never revisits its decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.scheduling.base import Assignment, ResourceTimeline, Schedule, TIME_EPS
from repro.workflow.analysis import upward_ranks
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["heft_schedule", "heft_priority_order", "HEFTScheduler"]


def heft_priority_order(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> List[str]:
    """Jobs sorted by non-increasing upward rank.

    Ties are broken by topological position (predecessors first) and then by
    job identifier, so the order is deterministic and always topologically
    consistent even when zero-cost jobs make ranks equal.
    """
    ranks = upward_ranks(workflow, costs, resources)
    topo_index = {job: idx for idx, job in enumerate(workflow.topological_order())}
    return sorted(
        workflow.jobs,
        key=lambda job: (-ranks[job], topo_index[job], job),
    )


def heft_schedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    insertion: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    name: str = "heft",
) -> Schedule:
    """Compute a static HEFT schedule.

    Parameters
    ----------
    workflow, costs:
        The DAG and its cost model (the estimation matrix ``P``).
    resources:
        The resource identifiers known to the Planner (set ``R``).
    insertion:
        Use the original HEFT insertion-based policy (default) or simple
        append-after-last placement.
    resource_available_from:
        Optional earliest usable time per resource (``avail[j]``); defaults
        to 0 for every resource.
    """
    if not resources:
        raise ValueError("cannot schedule on an empty resource set")
    workflow.validate()
    availability = resource_available_from or {}
    timelines: Dict[str, ResourceTimeline] = {
        rid: ResourceTimeline(rid, available_from=float(availability.get(rid, 0.0)))
        for rid in resources
    }
    schedule = Schedule(name=name)

    for job in heft_priority_order(workflow, costs, resources):
        best: Optional[Assignment] = None
        for rid in resources:
            duration = costs.computation_cost(job, rid)
            ready = 0.0
            for pred in workflow.predecessors(job):
                pred_assignment = schedule.get(pred)
                if pred_assignment is None:
                    raise RuntimeError(
                        f"predecessor {pred!r} of {job!r} not scheduled yet; "
                        "priority order is not topologically consistent"
                    )
                transfer = costs.communication_cost(
                    pred, job, pred_assignment.resource_id, rid
                )
                ready = max(ready, pred_assignment.finish + transfer)
            start = timelines[rid].earliest_start(ready, duration, insertion=insertion)
            candidate = Assignment(job, rid, start, start + duration)
            if best is None or candidate.finish < best.finish - TIME_EPS:
                best = candidate
        assert best is not None
        timelines[best.resource_id].occupy(best.start, best.finish, job)
        schedule.add(best)
    return schedule


@dataclass
class HEFTScheduler:
    """Object-style wrapper around :func:`heft_schedule`.

    Used by the Planner (which holds a scheduler instance per workflow,
    paper §3.2) and by the experiment harness where scheduler objects are
    swapped polymorphically.
    """

    insertion: bool = True
    name: str = "HEFT"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
    ) -> Schedule:
        return heft_schedule(
            workflow,
            costs,
            resources,
            insertion=self.insertion,
            resource_available_from=resource_available_from,
            name=self.name,
        )
