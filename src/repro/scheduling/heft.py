"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

HEFT is the static heuristic the paper builds on: jobs are prioritised by
*upward rank* (Eq. 5/6) and, in non-increasing rank order, each job is
placed on the resource that minimises its Earliest Finish Time, optionally
using the insertion-based policy (a job may be placed in an idle gap between
already-scheduled jobs on a resource).

This module implements the *traditional* static HEFT used as the paper's
baseline: it is executed once, before the workflow starts, against the
resource pool known at time 0, and it never revisits its decisions.

Performance
-----------
The placement loop is the hot path of every experiment sweep, so it runs on
the fast kernel:

* the priority order is memoized per ``(workflow.version, pool signature)``
  on the cost model, so the adaptive loop's per-event rescheduling reuses
  ranks whenever the DAG and the pool are unchanged,
* computation costs come from the memoized dense
  :meth:`~repro.workflow.costs.CostModel.computation_matrix`,
* for cost models with placement-independent transfer costs
  (:attr:`~repro.workflow.costs.CostModel.has_uniform_communication`) the
  per-resource ready time is computed in O(preds + |R|) per job via a
  per-resource max decomposition instead of O(preds × |R|) cost-model calls.

All fast paths are bit-identical to the seed implementation preserved in
:mod:`repro.scheduling._seed_reference` (same assignments, same makespans);
``tests/test_scheduling_base.py`` asserts this on seeded random and
application DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.scheduling.base import Assignment, ResourceTimeline, Schedule, TIME_EPS
from repro.workflow.analysis import upward_ranks
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["heft_schedule", "heft_priority_order", "occupy_busy_intervals", "HEFTScheduler"]

_NEG_INF = float("-inf")

#: type of the ``busy`` parameter: foreign (other-workflow) occupied spans
#: per resource, ``{resource_id: [(start, finish), ...]}``
BusyIntervals = Mapping[str, Sequence[tuple]]


def occupy_busy_intervals(
    timelines: Mapping[str, ResourceTimeline], busy: Optional[BusyIntervals]
) -> None:
    """Book foreign ``(start, finish)`` spans before placement.

    This is the shared-grid seam: when several workflows book slots on the
    same resources, each planning pass sees every *other* workflow's current
    bookings as opaque busy blocks.  Spans may overlap each other (plans
    repaired independently after a performance change can transiently
    contend), so they are merged per resource before occupying; spans that
    end at or before a timeline's ``available_from`` (or have no extent)
    cannot constrain placement and are skipped.  Resources absent from
    ``timelines`` are ignored — a departed resource's stale bookings are
    irrelevant to the surviving pool.
    """
    if not busy:
        return
    for rid, spans in busy.items():
        timeline = timelines.get(rid)
        if timeline is None:
            continue
        relevant = sorted(
            (float(span[0]), float(span[1]))
            for span in spans
            if span[1] > timeline.available_from and span[1] - span[0] > TIME_EPS
        )
        merged: List[List[float]] = []
        for start, finish in relevant:
            if merged and start < merged[-1][1] - TIME_EPS:
                merged[-1][1] = max(merged[-1][1], finish)
            else:
                merged.append([start, finish])
        for index, (start, finish) in enumerate(merged):
            timeline.occupy(start, finish, f"<busy:{index}>")


def _compute_priority_order(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]],
) -> List[str]:
    ranks = upward_ranks(workflow, costs, resources)
    topo_index = {job: idx for idx, job in enumerate(workflow.topological_order())}
    return sorted(
        workflow.jobs,
        key=lambda job: (-ranks[job], topo_index[job], job),
    )


def heft_priority_order(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> List[str]:
    """Jobs sorted by non-increasing upward rank.

    Ties are broken by topological position (predecessors first) and then by
    job identifier, so the order is deterministic and always topologically
    consistent even when zero-cost jobs make ranks equal.

    The order (and the upward ranks feeding it) is cached on the cost model,
    keyed by the workflow version and the pool signature, so repeated calls
    during adaptive rescheduling only pay for the sort once per distinct
    ``(DAG, pool)`` combination.
    """
    if workflow is costs.workflow:
        order = costs.memoize(
            ("priority", None if resources is None else tuple(resources)),
            lambda: _compute_priority_order(workflow, costs, resources),
        )
        return list(order)
    return _compute_priority_order(workflow, costs, resources)


def heft_schedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    insertion: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    busy: Optional[BusyIntervals] = None,
    name: str = "heft",
) -> Schedule:
    """Compute a static HEFT schedule.

    Parameters
    ----------
    workflow, costs:
        The DAG and its cost model (the estimation matrix ``P``).
    resources:
        The resource identifiers known to the Planner (set ``R``).
    insertion:
        Use the original HEFT insertion-based policy (default) or simple
        append-after-last placement.
    resource_available_from:
        Optional earliest usable time per resource (``avail[j]``); defaults
        to 0 for every resource.
    busy:
        Optional foreign occupied spans per resource (other tenants'
        bookings on a shared grid); placement treats them as unavailable —
        see :func:`occupy_busy_intervals`.  ``None`` (the default) is the
        dedicated-grid behaviour and is bit-identical to the seed kernel.
    """
    if not resources:
        raise ValueError("cannot schedule on an empty resource set")
    workflow.validate()
    availability = resource_available_from or {}
    timelines: Dict[str, ResourceTimeline] = {
        rid: ResourceTimeline(rid, available_from=float(availability.get(rid, 0.0)))
        for rid in resources
    }
    occupy_busy_intervals(timelines, busy)
    schedule = Schedule(name=name)
    order = heft_priority_order(workflow, costs, resources)

    if workflow is not costs.workflow or not costs.has_uniform_communication:
        _place_generic(workflow, costs, resources, order, timelines, schedule, insertion)
        return schedule

    structure = workflow.structure()
    index = structure.index
    w = costs.computation_matrix(resources).tolist()
    pred_comm = costs.predecessor_communications()
    finish_of: List[Optional[float]] = [None] * structure.num_jobs
    resource_of: List[Optional[str]] = [None] * structure.num_jobs

    for job in order:
        i = index[job]
        w_row = w[i]
        preds = pred_comm[i]
        # Ready time decomposition: a predecessor on resource ``r``
        # contributes ``finish`` when the job lands on ``r`` and ``finish +
        # c̄`` anywhere else, so ``ready(rid) = max(0, max_{r != rid} P[r],
        # L[rid])`` with P/L the per-resource maxima of the two forms.
        local_max: Dict[str, float] = {}
        remote_max: Dict[str, float] = {}
        top_value = _NEG_INF
        top_key: Optional[str] = None
        second_value = _NEG_INF
        for p, comm in preds:
            pred_finish = finish_of[p]
            if pred_finish is None:
                raise RuntimeError(
                    f"predecessor {structure.jobs[p]!r} of {job!r} not scheduled "
                    "yet; priority order is not topologically consistent"
                )
            pred_resource = resource_of[p]
            remote = pred_finish + comm
            if remote_max.get(pred_resource, _NEG_INF) < remote:
                remote_max[pred_resource] = remote
            if local_max.get(pred_resource, _NEG_INF) < pred_finish:
                local_max[pred_resource] = pred_finish
        for key, value in remote_max.items():
            if value > top_value:
                second_value = top_value
                top_value = value
                top_key = key
            elif value > second_value:
                second_value = value

        best_rid: Optional[str] = None
        best_start = 0.0
        best_finish = _NEG_INF
        for j, rid in enumerate(resources):
            ready = 0.0
            if preds:
                remote = second_value if rid == top_key else top_value
                if remote > ready:
                    ready = remote
                local = local_max.get(rid)
                if local is not None and local > ready:
                    ready = local
            duration = w_row[j]
            start = timelines[rid].earliest_start(ready, duration, insertion=insertion)
            finish = start + duration
            if best_rid is None or finish < best_finish - TIME_EPS:
                best_rid = rid
                best_start = start
                best_finish = finish
        assert best_rid is not None
        timelines[best_rid].occupy(best_start, best_finish, job)
        schedule.add(Assignment(job, best_rid, best_start, best_finish))
        finish_of[i] = best_finish
        resource_of[i] = best_rid
    return schedule


def _place_generic(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    order: Sequence[str],
    timelines: Dict[str, ResourceTimeline],
    schedule: Schedule,
    insertion: bool,
) -> None:
    """Placement loop for models with pair-dependent communication costs."""
    for job in order:
        best: Optional[Assignment] = None
        for rid in resources:
            duration = costs.computation_cost(job, rid)
            ready = 0.0
            for pred in workflow.predecessors(job):
                pred_assignment = schedule.get(pred)
                if pred_assignment is None:
                    raise RuntimeError(
                        f"predecessor {pred!r} of {job!r} not scheduled yet; "
                        "priority order is not topologically consistent"
                    )
                transfer = costs.communication_cost(
                    pred, job, pred_assignment.resource_id, rid
                )
                ready = max(ready, pred_assignment.finish + transfer)
            start = timelines[rid].earliest_start(ready, duration, insertion=insertion)
            candidate = Assignment(job, rid, start, start + duration)
            if best is None or candidate.finish < best.finish - TIME_EPS:
                best = candidate
        assert best is not None
        timelines[best.resource_id].occupy(best.start, best.finish, job)
        schedule.add(best)


@dataclass
class HEFTScheduler:
    """Object-style wrapper around :func:`heft_schedule`.

    Used by the Planner (which holds a scheduler instance per workflow,
    paper §3.2) and by the experiment harness where scheduler objects are
    swapped polymorphically.
    """

    insertion: bool = True
    name: str = "HEFT"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return heft_schedule(
            workflow,
            costs,
            resources,
            insertion=self.insertion,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )
