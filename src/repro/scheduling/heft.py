"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

HEFT is the static heuristic the paper builds on: jobs are prioritised by
*upward rank* (Eq. 5/6) and, in non-increasing rank order, each job is
placed on the resource that minimises its Earliest Finish Time, optionally
using the insertion-based policy (a job may be placed in an idle gap between
already-scheduled jobs on a resource).

This module implements the *traditional* static HEFT used as the paper's
baseline: it is executed once, before the workflow starts, against the
resource pool known at time 0, and it never revisits its decisions.

Performance
-----------
The placement loop is the hot path of every experiment sweep, so it runs on
the fast kernel:

* the priority order is memoized per ``(workflow.version, pool signature)``
  on the cost model, so the adaptive loop's per-event rescheduling reuses
  ranks whenever the DAG and the pool are unchanged,
* computation costs come from the memoized dense
  :meth:`~repro.workflow.costs.CostModel.computation_matrix`,
* for cost models with placement-independent transfer costs
  (:attr:`~repro.workflow.costs.CostModel.has_uniform_communication`) the
  per-resource ready time is computed in O(preds + |R|) per job via a
  per-resource max decomposition instead of O(preds × |R|) cost-model calls.

All fast paths are bit-identical to the seed implementation preserved in
:mod:`repro.scheduling._seed_reference` (same assignments, same makespans);
``tests/test_scheduling_base.py`` asserts this on seeded random and
application DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.scheduling.base import (
    _GAP_FILTER_SLACK,
    Assignment,
    ResourceTimeline,
    Schedule,
    TIME_EPS,
)
from repro.workflow.analysis import upward_ranks
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["heft_schedule", "heft_priority_order", "occupy_busy_intervals", "HEFTScheduler"]

_NEG_INF = float("-inf")
_POS_INF = float("inf")
#: pre-folded right-hand side of the epsilon-duration guard
#: ``duration - TIME_EPS > TIME_EPS + _GAP_FILTER_SLACK``
_EPS_SLACK = TIME_EPS + _GAP_FILTER_SLACK

#: type of the ``busy`` parameter: foreign (other-workflow) occupied spans
#: per resource, ``{resource_id: [(start, finish), ...]}``
BusyIntervals = Mapping[str, Sequence[tuple]]


def occupy_busy_intervals(
    timelines: Mapping[str, ResourceTimeline], busy: Optional[BusyIntervals]
) -> None:
    """Book foreign ``(start, finish)`` spans before placement.

    This is the shared-grid seam: when several workflows book slots on the
    same resources, each planning pass sees every *other* workflow's current
    bookings as opaque busy blocks.  Spans may overlap each other (plans
    repaired independently after a performance change can transiently
    contend), so they are merged per resource before occupying; spans that
    end at or before a timeline's ``available_from`` (or have no extent)
    cannot constrain placement and are skipped.  Resources absent from
    ``timelines`` are ignored — a departed resource's stale bookings are
    irrelevant to the surviving pool.
    """
    if not busy:
        return
    for rid, spans in busy.items():
        timeline = timelines.get(rid)
        if timeline is None:
            continue
        relevant = sorted(
            (float(span[0]), float(span[1]))
            for span in spans
            if span[1] > timeline.available_from and span[1] - span[0] > TIME_EPS
        )
        merged: List[List[float]] = []
        for start, finish in relevant:
            if merged and start < merged[-1][1] - TIME_EPS:
                merged[-1][1] = max(merged[-1][1], finish)
            else:
                merged.append([start, finish])
        for index, (start, finish) in enumerate(merged):
            timeline.occupy(start, finish, f"<busy:{index}>")


class _EftScanBuffers:
    """Reusable per-schedule scratch for :func:`_min_eft_scan`.

    Mirrors the timeline fields the scan reads (``available_from`` plus the
    interval list and the finish/gap bounds) into parallel per-resource
    lists, alongside the value/start/exact scratch arrays.  A placement loop
    allocates one instance per schedule call and, after occupying resource
    ``j``, refreshes only that resource's entries — replacing five attribute
    loads × |R| per job with plain list indexing and dropping the three
    per-job scratch allocations.  Every value is read from the same timeline
    fields the direct scan would read, so placement stays bit-identical.
    """

    __slots__ = (
        "timelines",
        "avail",
        "max_finish",
        "max_gap_slack",
        "gap_end",
        "first_start",
    )

    def __init__(self, timeline_list: Sequence[ResourceTimeline]) -> None:
        timelines = list(timeline_list)
        self.timelines = timelines
        self.avail = [t.available_from for t in timelines]
        self.max_finish = [t._max_finish for t in timelines]
        #: the max-gap guard's right-hand side, pre-folded: the scan
        #: compares against ``_max_gap_bound + _GAP_FILTER_SLACK``, whose
        #: operands change only when the timeline does
        self.max_gap_slack = [t._max_gap_bound + _GAP_FILTER_SLACK for t in timelines]
        self.gap_end = [t._gap_end_bound for t in timelines]
        #: start of the first interval (``+inf`` when empty), for the
        #: leading-region check without touching the interval list
        self.first_start = [
            t._intervals[0][0] if t._intervals else _POS_INF for t in timelines
        ]

    def refresh(self, j: int) -> None:
        """Re-read resource ``j``'s fields after its timeline was occupied."""
        timeline = self.timelines[j]
        intervals = timeline._intervals
        self.max_finish[j] = timeline._max_finish
        self.max_gap_slack[j] = timeline._max_gap_bound + _GAP_FILTER_SLACK
        self.gap_end[j] = timeline._gap_end_bound
        self.first_start[j] = intervals[0][0] if intervals else _POS_INF


def _min_eft_scan(
    buf: _EftScanBuffers,
    ready_list: Sequence[float],
    w_row: Sequence[float],
    insertion: bool,
) -> tuple:
    """Pick the min-EFT resource, provably matching the scalar scan.

    The scalar kernels scan resources in order, accepting resource ``j``
    when ``finish_j < best_finish - TIME_EPS``.  Each exact finish needs an
    ``earliest_start`` gap search — the dominant cost at scale (|R| searches
    per job).  This scan replays the scalar chain in resource order but
    replaces the gap search with cheaper, *provably equal or bounding*
    values per resource:

    * **inlined O(1) exact cases** — the same shortcuts
      :meth:`~repro.scheduling.base.ResourceTimeline.earliest_start` takes
      (empty timeline, ready at/past the last finish, append-only placement,
      task longer than the conservative max-gap bound), evaluated here
      through the *same float expressions* so they can never disagree.  On
      these resources the exact finish costs no gap search and no call.
    * **lower-bound pruning** elsewhere — ``lb_j = max(ready_j,
      available_from_j) + duration_j <= finish_j`` (every gap search returns
      a start at/after the clamped ready time), so once a best exists,
      ``lb_j >= best_finish - TIME_EPS`` proves resource ``j`` could never
      be accepted by the chain and its gap search is skipped.  Only
      resources that survive the prune pay a real ``earliest_start`` call.
    * **single-call fast path** over the mixed values: with ``v_j`` the
      exact finish or lower bound per resource, evaluate the exact finish
      ``F_m`` only at ``m = argmin v`` (first minimal index; free when ``m``
      is an O(1) case).  If ``F_m < second_min_v - TIME_EPS`` then every
      other ``j`` has ``finish_j >= v_j >= second_min_v > F_m + TIME_EPS``:
      the chain's best when it reaches ``m`` exceeds ``F_m + TIME_EPS`` (so
      ``m`` is accepted) and no later resource can displace it — ``m`` is
      the scalar winner from at most one gap search.  With duplicated
      minima ``second_min_v = min_v`` and the fast path cannot trigger, so
      near-ties always fall through to the ordered chain.

    Every value the chain actually compares is the true finish, and skipped
    resources are provably never accepted, so the winner (and its start) is
    bit-identical to the scalar chain.  Resources are *not* reordered:
    acceptance near ties is scan-order dependent, and any reordering could
    change the winner.

    Returns ``(index, start, finish)`` into the caller's resource order.
    """
    n = len(w_row)
    avail_l = buf.avail
    max_finish_l = buf.max_finish
    if not insertion:
        # append-only placement: every start is exactly max(base, finish)
        best_j = -1
        best_start = 0.0
        best_finish = _NEG_INF
        for j in range(n):
            ready = ready_list[j]
            avail = avail_l[j]
            base = ready if ready > avail else avail
            max_finish = max_finish_l[j]
            start = base if base > max_finish else max_finish
            finish = start + w_row[j]
            if best_j < 0 or finish < best_finish - TIME_EPS:
                best_j = j
                best_start = start
                best_finish = finish
        return best_j, best_start, best_finish
    max_gap_l = buf.max_gap_slack
    gap_end_l = buf.gap_end
    first_start_l = buf.first_start
    min_v = _POS_INF
    second_v = _POS_INF
    min_j = 0
    min_start = 0.0
    min_exact = True
    for j in range(n):
        ready = ready_list[j]
        avail = avail_l[j]
        base = ready if ready > avail else avail
        duration = w_row[j]
        max_finish = max_finish_l[j]
        # O(1) exact cases, mirroring ``earliest_start`` expression for
        # expression (see its body for the proofs); an empty timeline has
        # ``max_finish = -inf``, folding it into the first comparison
        if base >= max_finish:
            start = base
            is_exact = True
        else:
            deps = duration - TIME_EPS
            if deps > max_gap_l[j] or (deps > _EPS_SLACK and base >= gap_end_l[j]):
                if base + duration - TIME_EPS <= first_start_l[j]:
                    start = base
                else:
                    start = max_finish
                is_exact = True
            else:
                start = base  # lower bound: a gap search never starts earlier
                is_exact = False
        value = start + duration
        if value < min_v:
            second_v = min_v
            min_v = value
            min_j = j
            min_start = start
            min_exact = is_exact
        elif value < second_v:
            second_v = value
    if min_exact:
        m_start = min_start
        m_finish = min_v
    else:
        duration = w_row[min_j]
        m_start = buf.timelines[min_j].earliest_start(
            ready_list[min_j], duration, insertion=True
        )
        m_finish = m_start + duration
    if m_finish < second_v - TIME_EPS:
        return min_j, m_start, m_finish
    # near-tie fallback: replay the full ordered chain, re-deriving each
    # resource's exact-or-bound classification (identical expressions to
    # the first pass, so the values cannot differ)
    best_j = -1
    best_start = 0.0
    best_finish = _NEG_INF
    for j in range(n):
        if j == min_j:
            start = m_start
            finish = m_finish
        else:
            ready = ready_list[j]
            avail = avail_l[j]
            base = ready if ready > avail else avail
            duration = w_row[j]
            max_finish = max_finish_l[j]
            if base >= max_finish:
                start = base
                is_exact = True
            else:
                deps = duration - TIME_EPS
                if deps > max_gap_l[j] or (
                    deps > _EPS_SLACK and base >= gap_end_l[j]
                ):
                    if base + duration - TIME_EPS <= first_start_l[j]:
                        start = base
                    else:
                        start = max_finish
                    is_exact = True
                else:
                    start = base
                    is_exact = False
            if is_exact:
                finish = start + duration
            else:
                if best_j >= 0 and start + duration >= best_finish - TIME_EPS:
                    continue
                start = buf.timelines[j].earliest_start(
                    ready, duration, insertion=True
                )
                finish = start + duration
        if best_j < 0 or finish < best_finish - TIME_EPS:
            best_j = j
            best_start = start
            best_finish = finish
    return best_j, best_start, best_finish


def _compute_priority_order(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]],
) -> List[str]:
    ranks = upward_ranks(workflow, costs, resources)
    topo_index = {job: idx for idx, job in enumerate(workflow.topological_order())}
    return sorted(
        workflow.jobs,
        key=lambda job: (-ranks[job], topo_index[job], job),
    )


def heft_priority_order(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> List[str]:
    """Jobs sorted by non-increasing upward rank.

    Ties are broken by topological position (predecessors first) and then by
    job identifier, so the order is deterministic and always topologically
    consistent even when zero-cost jobs make ranks equal.

    The order (and the upward ranks feeding it) is cached on the cost model,
    keyed by the workflow version and the pool signature, so repeated calls
    during adaptive rescheduling only pay for the sort once per distinct
    ``(DAG, pool)`` combination.
    """
    if workflow is costs.workflow:
        order = costs.memoize(
            ("priority", None if resources is None else tuple(resources)),
            lambda: _compute_priority_order(workflow, costs, resources),
        )
        return list(order)
    return _compute_priority_order(workflow, costs, resources)


def heft_schedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    insertion: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    busy: Optional[BusyIntervals] = None,
    name: str = "heft",
) -> Schedule:
    """Compute a static HEFT schedule.

    Parameters
    ----------
    workflow, costs:
        The DAG and its cost model (the estimation matrix ``P``).
    resources:
        The resource identifiers known to the Planner (set ``R``).
    insertion:
        Use the original HEFT insertion-based policy (default) or simple
        append-after-last placement.
    resource_available_from:
        Optional earliest usable time per resource (``avail[j]``); defaults
        to 0 for every resource.
    busy:
        Optional foreign occupied spans per resource (other tenants'
        bookings on a shared grid); placement treats them as unavailable —
        see :func:`occupy_busy_intervals`.  ``None`` (the default) is the
        dedicated-grid behaviour and is bit-identical to the seed kernel.
    """
    if not resources:
        raise ValueError("cannot schedule on an empty resource set")
    workflow.validate()
    availability = resource_available_from or {}
    timelines: Dict[str, ResourceTimeline] = {
        rid: ResourceTimeline(rid, available_from=float(availability.get(rid, 0.0)))
        for rid in resources
    }
    occupy_busy_intervals(timelines, busy)
    schedule = Schedule(name=name)
    order = heft_priority_order(workflow, costs, resources)

    if workflow is not costs.workflow or not costs.has_uniform_communication:
        _place_generic(workflow, costs, resources, order, timelines, schedule, insertion)
        return schedule

    structure = workflow.structure()
    index = structure.index
    w = costs.computation_rows(resources)
    pred_comm = costs.predecessor_communications()
    finish_of: List[Optional[float]] = [None] * structure.num_jobs
    resource_of: List[Optional[str]] = [None] * structure.num_jobs
    timeline_list = [timelines[rid] for rid in resources]
    scan_buf = _EftScanBuffers(timeline_list)
    n_resources = len(resources)
    ready_buf = [0.0] * n_resources

    for job in order:
        i = index[job]
        w_row = w[i]
        preds = pred_comm[i]
        # Ready time decomposition: a predecessor on resource ``r``
        # contributes ``finish`` when the job lands on ``r`` and ``finish +
        # c̄`` anywhere else, so ``ready(rid) = max(0, max_{r != rid} P[r],
        # L[rid])`` with P/L the per-resource maxima of the two forms.
        local_max: Dict[str, float] = {}
        remote_max: Dict[str, float] = {}
        top_value = _NEG_INF
        top_key: Optional[str] = None
        second_value = _NEG_INF
        for p, comm in preds:
            pred_finish = finish_of[p]
            if pred_finish is None:
                raise RuntimeError(
                    f"predecessor {structure.jobs[p]!r} of {job!r} not scheduled "
                    "yet; priority order is not topologically consistent"
                )
            pred_resource = resource_of[p]
            remote = pred_finish + comm
            if remote_max.get(pred_resource, _NEG_INF) < remote:
                remote_max[pred_resource] = remote
            if local_max.get(pred_resource, _NEG_INF) < pred_finish:
                local_max[pred_resource] = pred_finish
        for key, value in remote_max.items():
            if value > top_value:
                second_value = top_value
                top_value = value
                top_key = key
            elif value > second_value:
                second_value = value

        if preds:
            for j, rid in enumerate(resources):
                ready = 0.0
                remote = second_value if rid == top_key else top_value
                if remote > ready:
                    ready = remote
                local = local_max.get(rid)
                if local is not None and local > ready:
                    ready = local
                ready_buf[j] = ready
        else:
            for j in range(n_resources):
                ready_buf[j] = 0.0
        best_j, best_start, best_finish = _min_eft_scan(
            scan_buf, ready_buf, w_row, insertion
        )
        best_rid = resources[best_j]
        timelines[best_rid].occupy(best_start, best_finish, job)
        scan_buf.refresh(best_j)
        schedule.add(Assignment(job, best_rid, best_start, best_finish))
        finish_of[i] = best_finish
        resource_of[i] = best_rid
    return schedule


def _place_generic(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    order: Sequence[str],
    timelines: Dict[str, ResourceTimeline],
    schedule: Schedule,
    insertion: bool,
) -> None:
    """Placement loop for models with pair-dependent communication costs."""
    for job in order:
        best: Optional[Assignment] = None
        for rid in resources:
            duration = costs.computation_cost(job, rid)
            ready = 0.0
            for pred in workflow.predecessors(job):
                pred_assignment = schedule.get(pred)
                if pred_assignment is None:
                    raise RuntimeError(
                        f"predecessor {pred!r} of {job!r} not scheduled yet; "
                        "priority order is not topologically consistent"
                    )
                transfer = costs.communication_cost(
                    pred, job, pred_assignment.resource_id, rid
                )
                ready = max(ready, pred_assignment.finish + transfer)
            start = timelines[rid].earliest_start(ready, duration, insertion=insertion)
            candidate = Assignment(job, rid, start, start + duration)
            if best is None or candidate.finish < best.finish - TIME_EPS:
                best = candidate
        assert best is not None
        timelines[best.resource_id].occupy(best.start, best.finish, job)
        schedule.add(best)


@dataclass
class HEFTScheduler:
    """Object-style wrapper around :func:`heft_schedule`.

    Used by the Planner (which holds a scheduler instance per workflow,
    paper §3.2) and by the experiment harness where scheduler objects are
    swapped polymorphically.
    """

    insertion: bool = True
    name: str = "HEFT"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return heft_schedule(
            workflow,
            costs,
            resources,
            insertion=self.insertion,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )
