"""Schedule feasibility validation.

A schedule produced by any heuristic must satisfy three invariants, which
the test-suite also checks property-style on randomly generated DAGs:

1. **Precedence** — a job starts no earlier than each predecessor's finish
   plus the communication cost between their resources (zero when
   co-located).
2. **Exclusive resources** — assignments on one resource never overlap.
3. **Resource availability** — a job only uses a resource after it joined
   the grid (and before it left).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.resources.pool import ResourcePool
from repro.scheduling.base import Schedule, TIME_EPS
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "ScheduleValidationError",
    "check_precedence",
    "check_no_overlap",
    "check_resource_availability",
    "validate_schedule",
]


class ScheduleValidationError(AssertionError):
    """Raised when a schedule violates a feasibility invariant."""


def _earliest_data_at(
    costs: CostModel, src: str, dst: str, schedule: Schedule, dst_rid: str
) -> float:
    """Earliest time ``src``'s output is available on ``dst_rid``.

    Every execution of ``src`` — the primary copy and any duplicates placed
    by duplication-based heuristics — is a valid data source; the cheapest
    one (local copies at zero transfer cost) wins.
    """
    return min(
        copy.finish + costs.communication_cost(src, dst, copy.resource_id, dst_rid)
        for copy in schedule.copies_of(src)
    )


def check_precedence(
    workflow: Workflow,
    costs: CostModel,
    schedule: Schedule,
    *,
    tolerance: float = 1e-6,
) -> List[str]:
    """Return a list of precedence violations (empty when feasible).

    A consumer may read its input from *any* copy of the producer (primary
    or duplicate), and duplicate executions must themselves respect the
    precedence of the job they re-run.
    """
    problems: List[str] = []
    for src, dst, _data in workflow.edges():
        src_assignment = schedule.get(src)
        if src_assignment is None:
            continue
        for dst_assignment in schedule.copies_of(dst):
            earliest = _earliest_data_at(costs, src, dst, schedule, dst_assignment.resource_id)
            if dst_assignment.start < earliest - tolerance:
                problems.append(
                    f"{dst} starts at {dst_assignment.start:.3f} before data from "
                    f"{src} is available at {earliest:.3f}"
                )
    return problems


def check_no_overlap(schedule: Schedule, *, tolerance: float = 1e-6) -> List[str]:
    """Return overlapping-assignment violations (duplicates included)."""
    problems: List[str] = []
    by_resource: dict = {}
    for assignment in schedule.all_assignments():
        by_resource.setdefault(assignment.resource_id, []).append(assignment)
    for rid in sorted(by_resource):
        assignments = sorted(
            by_resource[rid], key=lambda a: (a.start, a.finish, a.job_id)
        )
        for first, second in zip(assignments, assignments[1:]):
            if second.start < first.finish - tolerance:
                problems.append(
                    f"{first.job_id} and {second.job_id} overlap on {rid}: "
                    f"[{first.start:.3f}, {first.finish:.3f}) vs "
                    f"[{second.start:.3f}, {second.finish:.3f})"
                )
    return problems


def check_resource_availability(
    schedule: Schedule,
    pool: ResourcePool,
    *,
    tolerance: float = 1e-6,
) -> List[str]:
    """Return assignments using resources outside their availability window."""
    problems: List[str] = []
    for assignment in schedule.all_assignments():
        if assignment.resource_id not in pool:
            problems.append(
                f"{assignment.job_id} uses unknown resource {assignment.resource_id}"
            )
            continue
        resource = pool.resource(assignment.resource_id)
        if assignment.start < resource.available_from - tolerance:
            problems.append(
                f"{assignment.job_id} starts at {assignment.start:.3f} before "
                f"{assignment.resource_id} joins at {resource.available_from:.3f}"
            )
        if (
            resource.available_until is not None
            and assignment.finish > resource.available_until + tolerance
        ):
            problems.append(
                f"{assignment.job_id} finishes at {assignment.finish:.3f} after "
                f"{assignment.resource_id} leaves at {resource.available_until:.3f}"
            )
    return problems


def check_completeness(workflow: Workflow, schedule: Schedule) -> List[str]:
    """Return the jobs missing from the schedule."""
    return [f"job {job} is not scheduled" for job in workflow.jobs if job not in schedule]


def validate_schedule(
    workflow: Workflow,
    costs: CostModel,
    schedule: Schedule,
    *,
    pool: Optional[ResourcePool] = None,
    require_complete: bool = True,
    tolerance: float = 1e-6,
    raise_on_error: bool = True,
) -> List[str]:
    """Run every feasibility check and collect the violations.

    With ``raise_on_error`` (default) a non-empty violation list raises
    :class:`ScheduleValidationError`; otherwise the list is returned for the
    caller to inspect.
    """
    problems: List[str] = []
    if require_complete:
        problems.extend(check_completeness(workflow, schedule))
    problems.extend(check_precedence(workflow, costs, schedule, tolerance=tolerance))
    problems.extend(check_no_overlap(schedule, tolerance=tolerance))
    if pool is not None:
        problems.extend(check_resource_availability(schedule, pool, tolerance=tolerance))
    if problems and raise_on_error:
        raise ScheduleValidationError(
            "schedule is infeasible:\n  " + "\n  ".join(problems)
        )
    return problems
