"""Scheduling heuristics: static HEFT, adaptive AHEFT and dynamic baselines.

The package exposes:

* :class:`~repro.scheduling.base.Schedule` / :class:`~repro.scheduling.base.Assignment`
  — the mapping produced by the Planner,
* :class:`~repro.scheduling.base.ExecutionState` — the run-time snapshot
  (actual start/finish times, statuses) the adaptive Planner reasons about,
* :func:`~repro.scheduling.heft.heft_schedule` — the HEFT heuristic of
  Topcuoglu et al. (the paper's static baseline and the heuristic H plugged
  into AHEFT),
* :func:`~repro.scheduling.aheft.aheft_reschedule` — the paper's
  contribution: HEFT-based rescheduling of the unfinished part of a
  partially executed workflow (Equations 1–3),
* dynamic baselines (Min-Min, Max-Min, Sufferage) in
  :mod:`~repro.scheduling.minmin` and :mod:`~repro.scheduling.baselines`,
* the wider strategy zoo — :func:`~repro.scheduling.cpop.cpop_reschedule`
  (critical-path-on-a-processor),
  :func:`~repro.scheduling.lookahead.lookahead_heft_reschedule`
  (child-aware EFT placement) and
  :func:`~repro.scheduling.duplication.heft_dup_reschedule` (HEFT with
  task duplication), all built on the shared partial-rescheduling frame
  of :mod:`~repro.scheduling.frame`,
* the **strategy registry** (:data:`~repro.scheduling.registry.SCHEDULERS`
  + :func:`~repro.scheduling.registry.make_scheduler`) naming every
  strategy for the sweeps, the CLI and the universal invariant tests,
* schedule feasibility validation in :mod:`~repro.scheduling.validation`.
"""

from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    ResourceTimeline,
    Schedule,
)
from repro.scheduling.heft import HEFTScheduler, heft_schedule
from repro.scheduling.aheft import AHEFTScheduler, aheft_reschedule
from repro.scheduling.minmin import MinMinScheduler, minmin_batch
from repro.scheduling.baselines import (
    MaxMinScheduler,
    SufferageScheduler,
    RandomStaticScheduler,
    OpportunisticLoadBalancer,
)
from repro.scheduling.frame import PartialScheduleFrame
from repro.scheduling.cpop import CPOPScheduler, cpop_reschedule
from repro.scheduling.lookahead import (
    LookaheadHEFTScheduler,
    lookahead_heft_reschedule,
)
from repro.scheduling.duplication import HEFTDupScheduler, heft_dup_reschedule
from repro.scheduling.registry import (
    SCHEDULERS,
    StrategyInfo,
    available_schedulers,
    make_scheduler,
    register_scheduler,
    scheduler_kind,
    scheduler_parameters,
    scheduler_summary,
)
from repro.scheduling.validation import (
    ScheduleValidationError,
    validate_schedule,
    check_precedence,
    check_no_overlap,
    check_resource_availability,
)

__all__ = [
    "Assignment",
    "ExecutionState",
    "JobStatus",
    "ResourceTimeline",
    "Schedule",
    "HEFTScheduler",
    "heft_schedule",
    "AHEFTScheduler",
    "aheft_reschedule",
    "MinMinScheduler",
    "minmin_batch",
    "MaxMinScheduler",
    "SufferageScheduler",
    "RandomStaticScheduler",
    "OpportunisticLoadBalancer",
    "PartialScheduleFrame",
    "CPOPScheduler",
    "cpop_reschedule",
    "LookaheadHEFTScheduler",
    "lookahead_heft_reschedule",
    "HEFTDupScheduler",
    "heft_dup_reschedule",
    "SCHEDULERS",
    "StrategyInfo",
    "available_schedulers",
    "make_scheduler",
    "register_scheduler",
    "scheduler_kind",
    "scheduler_parameters",
    "scheduler_summary",
    "ScheduleValidationError",
    "validate_schedule",
    "check_precedence",
    "check_no_overlap",
    "check_resource_availability",
]
