"""CPOP — Critical-Path-on-a-Processor (Topcuoglu et al., 2002).

CPOP is HEFT's sibling heuristic from the same paper: jobs are prioritised
by ``rank_u + rank_d`` (the length of the longest path *through* each
job), the critical path is the chain whose members attain the maximal
priority, and a single **critical-path processor** — the resource
minimising the summed computation cost of the critical-path jobs — runs
the whole chain.  Off-path jobs are placed with HEFT's minimum-EFT rule.
Scheduling proceeds over a ready queue ordered by priority, so the
placement order is always topologically consistent.

Here CPOP is additionally a *replanner*: built on
:class:`~repro.scheduling.frame.PartialScheduleFrame`, it can reschedule
the unfinished part of a partially executed workflow at an arbitrary
``clock`` (finished/running work pinned, FEA semantics of paper
Eq. 1–3) and plan around foreign ``busy`` bookings on a shared grid —
which is what lets ``run_adaptive(strategy="cpop")`` ablate the paper's
AHEFT against a CPOP-based adaptive loop.

At replan time the critical-path processor is re-chosen to minimise the
summed cost of the *remaining* (not yet pinned) critical-path jobs, so a
chain half-executed elsewhere does not anchor the rest to a stale choice.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.scheduling.base import Schedule
from repro.scheduling.frame import PartialScheduleFrame
from repro.scheduling.heft import BusyIntervals
from repro.workflow.analysis import downward_ranks, upward_ranks
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["cpop_reschedule", "CPOPScheduler"]


def _critical_path(workflow: Workflow, priority: Dict[str, float]) -> List[str]:
    """The entry-to-exit chain of maximal ``rank_u + rank_d`` priority."""
    entries = [job for job in workflow.jobs if not workflow.predecessors(job)]
    cp_value = max(priority[job] for job in entries)
    eps = 1e-9 * max(1.0, abs(cp_value))
    path: List[str] = []
    cursor: Optional[str] = min(
        (job for job in entries if priority[job] >= cp_value - eps), key=str
    )
    while cursor is not None:
        path.append(cursor)
        on_path = [
            succ
            for succ in workflow.successors(cursor)
            if priority[succ] >= cp_value - eps
        ]
        cursor = min(on_path, key=str) if on_path else None
    return path


def cpop_reschedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float = 0.0,
    previous_schedule: Optional[Schedule] = None,
    execution_state=None,
    insertion: bool = True,
    respect_running: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    busy: Optional[BusyIntervals] = None,
    name: str = "cpop",
) -> Schedule:
    """(Re)schedule a workflow with CPOP at time ``clock``.

    With ``clock == 0`` and no previous schedule this is the classic
    static CPOP; otherwise finished and running jobs stay pinned and only
    the remainder is re-mapped, exactly like AHEFT's partial rescheduling.
    """
    frame = PartialScheduleFrame(
        workflow,
        costs,
        resources,
        clock=clock,
        previous_schedule=previous_schedule,
        execution_state=execution_state,
        respect_running=respect_running,
        resource_available_from=resource_available_from,
        busy=busy,
        name=name,
    )
    if not frame.to_schedule:
        return frame.schedule

    up = upward_ranks(workflow, costs, resources)
    down = downward_ranks(workflow, costs, resources)
    priority = {job: up[job] + down[job] for job in workflow.jobs}
    cp_jobs = set(_critical_path(workflow, priority))

    remaining_cp = sorted(cp_jobs & frame.to_schedule_set)
    anchor = remaining_cp if remaining_cp else sorted(cp_jobs)
    cp_rid = min(
        frame.resources,
        key=lambda rid: (
            sum(costs.computation_cost(job, rid) for job in anchor),
            rid,
        ),
    )

    # ready-queue scheduling: highest priority first, topologically safe
    topo_index = {job: idx for idx, job in enumerate(workflow.topological_order())}
    pending: Dict[str, int] = {}
    heap: List[tuple] = []
    for job in frame.to_schedule:
        open_preds = sum(
            1 for pred in workflow.predecessors(job) if pred in frame.to_schedule_set
        )
        pending[job] = open_preds
        if open_preds == 0:
            heapq.heappush(heap, (-priority[job], topo_index[job], job))
    while heap:
        _, _, job = heapq.heappop(heap)
        if job in cp_jobs:
            duration = costs.computation_cost(job, cp_rid)
            start = frame.timelines[cp_rid].earliest_start(
                frame.ready_time(job, cp_rid), duration, insertion=insertion
            )
            frame.place(job, cp_rid, start, start + duration)
        else:
            rid, start, finish = frame.min_eft_placement(job, insertion=insertion)
            frame.place(job, rid, start, finish)
        for succ in workflow.successors(job):
            if succ not in pending:
                continue
            pending[succ] -= 1
            if pending[succ] == 0:
                heapq.heappush(heap, (-priority[succ], topo_index[succ], succ))
    return frame.schedule


@dataclass(frozen=True)
class CPOPScheduler:
    """CPOP exposed through the common scheduler interface."""

    insertion: bool = True
    respect_running: bool = True
    name: str = "CPOP"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return cpop_reschedule(
            workflow,
            costs,
            resources,
            clock=0.0,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )

    def reschedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        previous_schedule: Optional[Schedule],
        execution_state=None,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return cpop_reschedule(
            workflow,
            costs,
            resources,
            clock=clock,
            previous_schedule=previous_schedule,
            execution_state=execution_state,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )
