"""Dynamic (just-in-time) Min-Min mapping.

The paper's dynamic baseline schedules a job only when it becomes *ready*
(all predecessors finished).  At each decision point the Executor holds a
batch of ready jobs and maps them with the Min-Min heuristic: repeatedly
pick the (job, resource) pair with the smallest earliest completion time
among the jobs' individual best resources, assign it, update the resource's
availability, and continue until the batch is empty.

Two properties distinguish the dynamic strategy from the static ones in the
paper's experiment design (§4.1):

* output files are transmitted only once the consumer's resource is known,
  i.e. the transfer starts at the mapping decision time, not at the
  producer's completion time;
* the mapper sees the resource pool *as it is now*, so — unlike static
  HEFT — it can use resources that joined after the workflow started.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scheduling.base import Assignment, TIME_EPS
from repro.scheduling.batch import BatchPlanMixin
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["minmin_batch", "batch_map", "MinMinScheduler"]

#: ``selector(best_completion_by_job) -> job`` — which ready job to fix next.
Selector = Callable[[Dict[str, Tuple[float, Assignment]]], str]


def _completion_candidates(
    job: str,
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    clock: float,
    resource_free: Mapping[str, float],
    data_location: Mapping[str, str],
) -> List[Assignment]:
    """All (resource, EST, ECT) candidates for one ready job."""
    candidates: List[Assignment] = []
    for rid in resources:
        data_ready = clock
        for pred in workflow.predecessors(job):
            pred_resource = data_location.get(pred)
            if pred_resource is None:
                raise ValueError(
                    f"job {job!r} is not ready: predecessor {pred!r} has no output yet"
                )
            transfer = costs.communication_cost(pred, job, pred_resource, rid)
            # The transfer starts at the decision time (dynamic strategy),
            # so the data is ready `transfer` after `clock` unless local.
            data_ready = max(data_ready, clock + transfer)
        start = max(float(resource_free.get(rid, 0.0)), data_ready, clock)
        duration = costs.computation_cost(job, rid)
        candidates.append(Assignment(job, rid, start, start + duration))
    return candidates


def batch_map(
    ready_jobs: Sequence[str],
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float,
    resource_free: Mapping[str, float],
    data_location: Mapping[str, str],
    selector: Selector,
) -> List[Assignment]:
    """Map a batch of ready jobs with a Min-Min-family heuristic.

    ``selector`` decides which job of the batch is fixed next given each
    job's current best candidate (Min-Min picks the smallest completion
    time, Max-Min the largest, Sufferage the one that would suffer most if
    denied its best resource — the latter receives the full candidate lists
    via the ``Assignment`` objects it needs).
    """
    if not resources:
        raise ValueError("cannot map jobs on an empty resource set")
    free: Dict[str, float] = {rid: float(resource_free.get(rid, 0.0)) for rid in resources}
    remaining = list(dict.fromkeys(ready_jobs))
    assignments: List[Assignment] = []
    while remaining:
        best_by_job: Dict[str, Tuple[float, Assignment]] = {}
        for job in remaining:
            candidates = _completion_candidates(
                job, workflow, costs, resources, clock, free, data_location
            )
            candidates.sort(key=lambda a: (a.finish, a.resource_id))
            best = candidates[0]
            second = candidates[1] if len(candidates) > 1 else candidates[0]
            sufferage = second.finish - best.finish
            best_by_job[job] = (sufferage, best)
        chosen_job = selector({job: value for job, value in best_by_job.items()})
        chosen = best_by_job[chosen_job][1]
        assignments.append(chosen)
        free[chosen.resource_id] = chosen.finish
        remaining.remove(chosen_job)
    return assignments


def _select_min_completion(best_by_job: Dict[str, Tuple[float, Assignment]]) -> str:
    return min(
        best_by_job, key=lambda job: (best_by_job[job][1].finish, job)
    )


def minmin_batch(
    ready_jobs: Sequence[str],
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float,
    resource_free: Mapping[str, float],
    data_location: Mapping[str, str],
) -> List[Assignment]:
    """Min-Min mapping of one ready batch (see :func:`batch_map`)."""
    return batch_map(
        ready_jobs,
        workflow,
        costs,
        resources,
        clock=clock,
        resource_free=resource_free,
        data_location=data_location,
        selector=_select_min_completion,
    )


@dataclass
class MinMinScheduler(BatchPlanMixin):
    """Dynamic Min-Min policy object used by the just-in-time executor.

    Through :class:`~repro.scheduling.batch.BatchPlanMixin` it also acts
    as a full-schedule planner and partial replanner (analytic
    just-in-time replay with ``busy`` support), which is how the strategy
    registry exposes it to the invariant suite and the adaptive loop.
    """

    name: str = "MinMin"
    selector = staticmethod(_select_min_completion)

    def map_ready_jobs(
        self,
        ready_jobs: Sequence[str],
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        resource_free: Mapping[str, float],
        data_location: Mapping[str, str],
    ) -> List[Assignment]:
        return minmin_batch(
            ready_jobs,
            workflow,
            costs,
            resources,
            clock=clock,
            resource_free=resource_free,
            data_location=data_location,
        )
