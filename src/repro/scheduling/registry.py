"""The strategy registry: every scheduling heuristic, addressable by name.

Mirrors the scenario registry (:mod:`repro.scenarios.library`) and the
error-model registry (:data:`repro.workflow.costs.ERROR_MODELS`): a flat
mapping from a stable lowercase name to a factory plus metadata, consumed
by the experiment sweeps (``strategies=("heft", "cpop", ...)``), the CLI
(``repro sweep/mc/multi --strategies`` and ``repro strategies``), the
tournament benchmark and the universal scheduler-invariant test suite —
a strategy registered here is automatically swept, enumerated in
``--help`` and property-tested.

Every factory returns a scheduler object with ``schedule(workflow,
costs, resources, *, resource_available_from=None, busy=None)``; each
``kind`` describes the strategy's *default* execution mode:

``static``
    plan once at t=0 (executed via :func:`repro.core.adaptive.run_static`);
``adaptive``
    replan at every grid event (via :func:`~repro.core.adaptive.run_adaptive`);
``dynamic``
    just-in-time batch mapping (via :func:`~repro.core.adaptive.run_dynamic`).

Independently of its kind, any scheduler that also exposes the
``reschedule`` interface can be injected into the adaptive loop and the
multi-tenant planner (``run_adaptive(strategy="cpop")``, the
``adaptive:<name>`` sweep prefix), which is how every list heuristic can
be ablated against the paper's AHEFT.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.baselines import (
    MaxMinScheduler,
    OpportunisticLoadBalancer,
    RandomStaticScheduler,
    SufferageScheduler,
)
from repro.scheduling.cpop import CPOPScheduler
from repro.scheduling.duplication import HEFTDupScheduler
from repro.scheduling.flow.scheduler import MinCostFlowScheduler
from repro.scheduling.heft import HEFTScheduler
from repro.scheduling.lookahead import LookaheadHEFTScheduler
from repro.scheduling.minmin import MinMinScheduler

__all__ = [
    "SCHEDULERS",
    "StrategyInfo",
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
    "scheduler_kind",
    "scheduler_summary",
    "scheduler_parameters",
    "validate_scheduler_params",
]

_KINDS = ("static", "adaptive", "dynamic")


@dataclass(frozen=True)
class StrategyInfo:
    """One registry entry: factory plus the metadata the CLI prints."""

    name: str
    kind: str
    summary: str
    factory: Callable[..., object]

    def parameters(self) -> Dict[str, object]:
        """Constructor parameters and their defaults (for ``repro strategies``)."""
        params: Dict[str, object] = {}
        for parameter in inspect.signature(self.factory).parameters.values():
            if parameter.name in ("self", "name"):
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            params[parameter.name] = (
                None
                if parameter.default is inspect.Parameter.empty
                else parameter.default
            )
        return params


#: name -> :class:`StrategyInfo`; mutate only via :func:`register_scheduler`.
SCHEDULERS: Dict[str, StrategyInfo] = {}


def validate_scheduler_params(
    name: str, factory: Callable[..., object], params: Dict[str, object]
) -> None:
    """Reject keyword ``params`` the strategy's factory does not accept.

    Every registry entry gets the same :class:`TypeError` — naming the
    strategy and listing its valid parameters — instead of whatever the
    underlying constructor happens to raise (dataclass ``__init__``
    messages name neither), and regardless of whether a future factory
    would have silently swallowed the keyword.  A factory declaring
    ``**kwargs`` opts out: it explicitly accepts arbitrary keywords.
    """
    accepted = set()
    for parameter in inspect.signature(factory).parameters.values():
        if parameter.name == "self":
            continue
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            accepted.add(parameter.name)
    unknown = sorted(set(params) - accepted)
    if unknown:
        raise TypeError(
            f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
            f"scheduler {name!r}; valid parameters: "
            f"{sorted(accepted) if accepted else 'none'}"
        )


def register_scheduler(name: str, *, kind: str, summary: str = ""):
    """Register ``factory`` under ``name`` for sweeps, the CLI and the tests."""
    if kind not in _KINDS:
        raise ValueError(f"unknown strategy kind {kind!r}; choose from {_KINDS}")

    def decorator(factory: Callable[..., object]):
        if name in SCHEDULERS:
            raise ValueError(f"scheduler {name!r} already registered")
        SCHEDULERS[name] = StrategyInfo(
            name=name, kind=kind, summary=summary, factory=factory
        )
        return factory

    return decorator


# The helpers below are thin wrappers over the uniform registry facade
# (:mod:`repro.registry`), kept for compatibility with existing callers.


def make_scheduler(name: str, **params):
    """Instantiate a registered strategy, passing ``params`` to its factory."""
    from repro import registry

    return registry.make("scheduler", name, **params)


def available_schedulers() -> List[str]:
    """Registered strategy names, sorted."""
    from repro import registry

    return registry.available("scheduler")


def scheduler_kind(name: str) -> str:
    """The default execution mode of a registered strategy."""
    from repro import registry

    return registry.describe("scheduler", name)["kind"]


def scheduler_summary(name: str) -> str:
    """One-line description of a registered strategy."""
    from repro import registry

    return registry.describe("scheduler", name)["summary"]


def scheduler_parameters(name: str) -> Dict[str, object]:
    """Constructor parameters (name -> default) of a registered strategy."""
    from repro import registry

    return registry.describe("scheduler", name)["params"]


# ----------------------------------------------------------------------
# built-in strategies
# ----------------------------------------------------------------------
_BUILTINS: Tuple[Tuple[str, str, str, Callable[..., object]], ...] = (
    (
        "heft",
        "static",
        "HEFT: upward-rank order, minimum-EFT placement (paper baseline)",
        HEFTScheduler,
    ),
    (
        "aheft",
        "adaptive",
        "AHEFT: HEFT-based rescheduling of the unfinished part (the paper)",
        AHEFTScheduler,
    ),
    (
        "minmin",
        "dynamic",
        "Min-Min: fix the ready job with the smallest best completion",
        MinMinScheduler,
    ),
    (
        "maxmin",
        "dynamic",
        "Max-Min: fix the ready job with the largest best completion",
        MaxMinScheduler,
    ),
    (
        "sufferage",
        "dynamic",
        "Sufferage: fix the job that loses most without its best resource",
        SufferageScheduler,
    ),
    (
        "cpop",
        "static",
        "CPOP: critical path pinned to one processor, min-EFT elsewhere",
        CPOPScheduler,
    ),
    (
        "lookahead_heft",
        "static",
        "Lookahead HEFT: placement minimises the worst child EFT",
        LookaheadHEFTScheduler,
    ),
    (
        "heft_dup",
        "static",
        "HEFT + task duplication: re-run the binding predecessor locally",
        HEFTDupScheduler,
    ),
    (
        "olb",
        "static",
        "Opportunistic Load Balancer: earliest-free resource, cost-blind",
        OpportunisticLoadBalancer,
    ),
    (
        "random_static",
        "static",
        "random resource per job (seeded sanity lower bound)",
        RandomStaticScheduler,
    ),
    (
        "mincost_flow",
        "adaptive",
        "min-cost max-flow placement per ready wave (Firmament-style)",
        MinCostFlowScheduler,
    ),
)

for _name, _kind, _summary, _factory in _BUILTINS:
    register_scheduler(_name, kind=_kind, summary=_summary)(_factory)
