"""AHEFT — the paper's HEFT-based adaptive rescheduling algorithm (§3.4).

AHEFT recomputes an HEFT-style mapping for the *unfinished* part of a
workflow at an arbitrary time ``clock`` during its execution, taking into
account

* which jobs already finished (their actual finish times AFT and the
  resources holding their outputs),
* which jobs are currently running,
* which output transfers the Executor has already initiated under the
  previous schedule ``S0``,
* the resource pool *currently* available — including resources that joined
  after the previous schedule was made (the event that motivates the paper).

The placement rule is HEFT's minimum-EFT rule; the difference is how the
earliest start time is computed for a partially executed workflow, which is
exactly Equations (1)–(3) of the paper:

``FEA(n_m, n_i, r_j, S0, clock)`` — earliest time the output of predecessor
``n_m`` is available on candidate resource ``r_j``:

* **Case 1** — ``n_m`` finished on ``r_j``: the data is already local,
  ``FEA = AFT(n_m)``.
* **Case 2** — ``n_m`` finished elsewhere and its output is *not* (being)
  transferred to ``r_j``: the transfer can only start now,
  ``FEA = clock + c_{m,i}``.
* **Case 3** — ``n_m`` is unfinished and mapped to ``r_j`` (either pinned
  there because it is running, or placed there earlier in this very
  rescheduling pass): ``FEA = SFT(n_m)``.
* **otherwise** — ``n_m`` is unfinished and mapped to a different resource:
  ``FEA = SFT(n_m) + c_{m,i}``.

When ``clock == 0`` and no job has executed, every predecessor falls into
Case 3 / otherwise and AHEFT reduces to plain HEFT — the identity the paper
notes in §3.4 and that the test-suite asserts.

Performance
-----------
Rescheduling happens at *every* resource-pool event, so the placement loop
runs on the same fast kernel as :mod:`repro.scheduling.heft`: memoized
priority orders (reused whenever the DAG and pool are unchanged between
events), dense computation-cost matrices, and — for cost models with
placement-independent transfer costs — per-predecessor FEA values hoisted
out of the resource loop.  Each predecessor's FEA is a constant default
(``clock + c̄`` or ``SFT + c̄``) plus a handful of per-resource overrides
(data already local / transfer under way), so the candidate loop touches
the cost model zero times.  Bit-identical to the seed implementation in
:mod:`repro.scheduling._seed_reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    ResourceTimeline,
    Schedule,
    TimelineArena,
    TIME_EPS,
)
from repro.scheduling.heft import (
    BusyIntervals,
    _EftScanBuffers,
    _min_eft_scan,
    heft_priority_order,
    occupy_busy_intervals,
)

#: recycled timelines for the per-trigger replan rebuilds; the timelines of
#: a rescheduling pass never escape :func:`aheft_reschedule`, so the objects
#: (and their interval lists) can be reused across triggers
_ARENA = TimelineArena()
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["aheft_reschedule", "AHEFTScheduler"]


def _scheduled_transfer_arrival(
    pred: str,
    job: str,
    candidate_resource: str,
    costs: CostModel,
    previous_schedule: Optional[Schedule],
    state: ExecutionState,
) -> Optional[float]:
    """Arrival time of the ``pred -> job`` data on ``candidate_resource`` if
    its transfer was already initiated under the previous schedule.

    Under the static-strategy file-transfer rule (paper §4.1 assumption 2)
    the Executor ships the edge's data immediately on ``pred``'s completion
    to the resource where ``job`` was scheduled in ``S0``.  If that resource
    is the candidate resource, the transfer started at ``AFT(pred)`` and
    arrives ``c_{pred,job}`` later.  Explicit arrivals recorded by the
    Executor in the execution state take precedence.
    """
    recorded = state.data_available_at(pred, candidate_resource)
    if recorded is not None:
        return recorded
    if previous_schedule is None:
        return None
    finish = state.actual_finish.get(pred)
    if finish is None:
        return None
    old = previous_schedule.get(job)
    if old is not None and old.resource_id == candidate_resource:
        transfer = costs.communication_cost(
            pred, job, state.executed_on[pred], candidate_resource
        )
        return finish + transfer
    return None


def aheft_reschedule(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    *,
    clock: float = 0.0,
    previous_schedule: Optional[Schedule] = None,
    execution_state: Optional[ExecutionState] = None,
    insertion: bool = True,
    respect_running: bool = True,
    resource_available_from: Optional[Mapping[str, float]] = None,
    busy: Optional[BusyIntervals] = None,
    name: str = "aheft",
) -> Schedule:
    """(Re)schedule a workflow at time ``clock`` with AHEFT.

    Parameters
    ----------
    workflow, costs:
        The DAG and the estimation matrix ``P`` (refreshed by the Predictor
        before each call, paper Fig. 2 line 5).
    resources:
        The resources available **now** (set ``R`` after the pool update of
        Fig. 2 line 3).
    clock:
        The logical time of the rescheduling decision.
    previous_schedule:
        The schedule ``S0`` currently being executed (None for the initial
        scheduling, in which case AHEFT is identical to HEFT).
    execution_state:
        Snapshot of what has executed so far.  When omitted it is derived
        from ``previous_schedule`` under the accurate-estimate assumption.
    respect_running:
        If True (default), jobs that already started keep their resource and
        scheduled finish time; only not-started jobs are re-mapped.  If
        False, running jobs are also re-mapped (they restart from ``clock``,
        losing the work done so far).
    resource_available_from:
        Optional per-resource earliest usable time; defaults to ``clock``
        for every resource.
    busy:
        Optional foreign occupied spans per resource — the residual-capacity
        view of a shared grid where other workflows (other tenants) already
        booked slots on the same timelines.  Placement plans around them;
        they never appear in the returned schedule.  ``None`` (default) is
        the dedicated-grid behaviour, bit-identical to the seed kernel.

    Returns
    -------
    Schedule
        A complete schedule containing the (actual) assignments of finished
        and pinned jobs plus new assignments for every re-mapped job.  Its
        :meth:`~repro.scheduling.base.Schedule.makespan` is the predicted
        makespan used by the Planner's accept-if-better rule.
    """
    if not resources:
        raise ValueError("cannot schedule on an empty resource set")
    workflow.validate()
    if clock < 0:
        raise ValueError("clock must be non-negative")

    if execution_state is None:
        if previous_schedule is not None:
            execution_state = ExecutionState.from_schedule(
                previous_schedule, clock, jobs=workflow.jobs
            )
        else:
            execution_state = ExecutionState.initial(workflow.jobs)
    state = execution_state

    # ------------------------------------------------------------------
    # split jobs into pinned (finished / running-kept) and re-mappable
    # ------------------------------------------------------------------
    pinned: Dict[str, Assignment] = {}
    for job in workflow.jobs:
        status = state.job_status(job)
        if status is JobStatus.FINISHED:
            pinned[job] = Assignment(
                job,
                state.executed_on[job],
                state.actual_start[job],
                state.actual_finish[job],
            )
        elif status is JobStatus.RUNNING and respect_running:
            if previous_schedule is not None and previous_schedule.get(job) is not None:
                sft = previous_schedule.scheduled_finish_time(job)
            else:
                # Without S0 information fall back to the estimate from now.
                sft = state.actual_start[job] + costs.computation_cost(
                    job, state.executed_on[job]
                )
            pinned[job] = Assignment(
                job, state.executed_on[job], state.actual_start[job], sft
            )
    to_schedule = [job for job in workflow.jobs if job not in pinned]

    # ------------------------------------------------------------------
    # resource timelines: pinned work occupies its interval; new work can
    # only be placed at or after `clock` (and after the resource joined)
    # ------------------------------------------------------------------
    availability = resource_available_from or {}
    timelines: Dict[str, ResourceTimeline] = {}
    for rid in resources:
        start = max(clock, float(availability.get(rid, clock)))
        timelines[rid] = _ARENA.acquire(rid, available_from=start)
    if busy is None:
        batches: Dict[str, List[tuple]] = {}
        for assignment in pinned.values():
            timeline = timelines.get(assignment.resource_id)
            if timeline is not None and assignment.finish > timeline.available_from:
                batches.setdefault(assignment.resource_id, []).append(
                    (assignment.start, assignment.finish, assignment.job_id)
                )
        for rid, batch in batches.items():
            timelines[rid].bulk_load(batch)
    else:
        # Shared grid: pinned work and foreign bookings go through the same
        # merge-tolerant booking path, because independently repaired plans
        # can transiently overlap after a performance change.
        combined: Dict[str, List[tuple]] = {
            rid: list(spans) for rid, spans in busy.items()
        }
        for assignment in pinned.values():
            combined.setdefault(assignment.resource_id, []).append(
                (assignment.start, assignment.finish)
            )
        occupy_busy_intervals(timelines, combined)

    schedule = Schedule(name=name)
    schedule.extend(pinned.values())

    # ------------------------------------------------------------------
    # HEFT placement of the re-mappable jobs in upward-rank order
    # ------------------------------------------------------------------
    to_schedule_set: Set[str] = set(to_schedule)
    order = [
        job
        for job in heft_priority_order(workflow, costs, resources)
        if job in to_schedule_set
    ]

    if workflow is costs.workflow and costs.has_uniform_communication:
        _place_fast(
            workflow,
            costs,
            resources,
            order,
            timelines,
            schedule,
            state,
            previous_schedule,
            clock,
            insertion,
        )
        _ARENA.release(timelines.values())
        return schedule

    # ------------------------------------------------------------------
    # generic path (pair-dependent communication): FEA of Eq. (1) per
    # (job, resource, predecessor)
    # ------------------------------------------------------------------
    def fea(pred: str, job: str, rid: str) -> float:
        if state.job_status(pred) is JobStatus.FINISHED:
            executed_on = state.executed_on[pred]
            finish = state.actual_finish[pred]
            if executed_on == rid:
                return finish  # Case 1
            arrival = _scheduled_transfer_arrival(
                pred, job, rid, costs, previous_schedule, state
            )
            if arrival is not None:
                return arrival  # transfer already under way (or done)
            comm = costs.communication_cost(pred, job, executed_on, rid)
            return clock + comm  # Case 2
        # Unfinished predecessor: it is either pinned (running) or already
        # placed earlier in this pass (rank order guarantees this).
        pred_assignment = schedule.get(pred)
        if pred_assignment is None:
            raise RuntimeError(
                f"predecessor {pred!r} of {job!r} is neither executed nor "
                "scheduled; the priority order is not topologically consistent"
            )
        if pred_assignment.resource_id == rid:
            return pred_assignment.finish  # Case 3
        comm = costs.communication_cost(pred, job, pred_assignment.resource_id, rid)
        return pred_assignment.finish + comm  # otherwise

    for job in order:
        best: Optional[Assignment] = None
        for rid in resources:
            duration = costs.computation_cost(job, rid)
            ready = clock
            for pred in workflow.predecessors(job):
                ready = max(ready, fea(pred, job, rid))
            start = timelines[rid].earliest_start(ready, duration, insertion=insertion)
            candidate = Assignment(job, rid, start, start + duration)
            if best is None or candidate.finish < best.finish - TIME_EPS:
                best = candidate
        assert best is not None
        timelines[best.resource_id].occupy(best.start, best.finish, job)
        schedule.add(best)
    _ARENA.release(timelines.values())
    return schedule


def _place_fast(
    workflow: Workflow,
    costs: CostModel,
    resources: Sequence[str],
    order: Sequence[str],
    timelines: Dict[str, ResourceTimeline],
    schedule: Schedule,
    state: ExecutionState,
    previous_schedule: Optional[Schedule],
    clock: float,
    insertion: bool,
) -> None:
    """Placement loop with per-predecessor FEA hoisted out of the resource loop.

    With placement-uniform communication every predecessor's FEA collapses
    to a *default* value valid on almost every resource plus a few
    per-resource overrides:

    * finished predecessor — default ``clock + c̄`` (Case 2), overridden on
      the resource it ran on (``AFT``, Case 1), on resources with a
      recorded/implied transfer (arrival time), and on the job's previous
      target (``AFT + c̄``),
    * unfinished predecessor — default ``SFT + c̄`` (otherwise-case),
      overridden on its own resource (``SFT``, Case 3).

    ``ready(rid)`` is then the max of the defaults for every resource
    without overrides (one number, computed once) and a short per-pred scan
    for the handful of override resources.
    """
    structure = workflow.structure()
    index = structure.index
    jobs = structure.jobs
    w = costs.computation_rows(resources)
    pred_comm = costs.predecessor_communications()
    timeline_list = [timelines[rid] for rid in resources]
    scan_buf = _EftScanBuffers(timeline_list)
    rid_index = {rid: j for j, rid in enumerate(resources)}
    n_resources = len(resources)

    finish_of: List[Optional[float]] = [None] * structure.num_jobs
    resource_of: List[Optional[str]] = [None] * structure.num_jobs
    for assignment in schedule:  # pinned finished/running jobs
        i = index[assignment.job_id]
        finish_of[i] = assignment.finish
        resource_of[i] = assignment.resource_id

    # hoist the per-predecessor state lookups (status, AFT, resource,
    # recorded arrivals) into index-addressed arrays: the placement loop
    # touches them once per edge, which at 100k-job scale dwarfs the one
    # pass over the state dicts below
    num_jobs = structure.num_jobs
    finished_arr = bytearray(num_jobs)
    aft_arr: List[float] = [0.0] * num_jobs
    ex_arr: List[Optional[str]] = [None] * num_jobs
    finished_status = JobStatus.FINISHED
    for job_name, job_status in state.status.items():
        if job_status is finished_status:
            p = index.get(job_name)
            if p is None:
                continue
            finished_arr[p] = 1
            aft_arr[p] = state.actual_finish[job_name]
            ex_arr[p] = state.executed_on[job_name]
    arrivals_of: List[tuple] = [()] * num_jobs
    for (producer, rid), time in state.data_arrivals.items():
        p = index.get(producer)
        if p is not None:
            arrivals_of[p] = arrivals_of[p] + ((rid, time),)

    # bound dict lookup for the previous assignment (bypasses the per-call
    # method wrapper; ``Schedule.get`` is exactly this dict access)
    prev_get = (
        previous_schedule._assignments.get if previous_schedule is not None else None
    )

    for job in order:
        i = index[job]
        w_row = w[i]
        old = prev_get(job) if prev_get is not None else None
        old_rid = old.resource_id if old is not None else None
        preds = pred_comm[i]
        # Ready-time decomposition.  Every per-resource FEA override of a
        # predecessor *lowers* its value relative to that predecessor's
        # default: data already local or in flight arrives no later than a
        # transfer started at ``clock`` (Cases 1/recorded/implied vs Case 2,
        # up to the epsilon by which a "finished" AFT may exceed ``clock``),
        # and a co-located successor skips the transfer (Case 3 vs the
        # otherwise-case).  Hence ``ready(rid)`` equals the max default
        # ``d1`` on every resource, except the override resources of one
        # fixed argmax-default predecessor ``p1`` — plus the rare epsilon
        # violators — which get the exact per-predecessor max below.
        d1 = clock
        p1 = -1
        must: List[str] = []  # override resources needing the exact recompute
        for p, comm in preds:
            if finished_arr[p]:
                default = clock + comm  # Case 2
                aft = aft_arr[p]
                if aft > default:
                    must.append(ex_arr[p])
                arrivals = arrivals_of[p]
                if arrivals:
                    for rid, time in arrivals:
                        if time > default:
                            must.append(rid)
                if old_rid is not None and aft + comm > default:
                    must.append(old_rid)
            else:
                pred_finish = finish_of[p]
                if pred_finish is None:
                    raise RuntimeError(
                        f"predecessor {jobs[p]!r} of {job!r} is neither "
                        "executed nor scheduled; the priority order is not "
                        "topologically consistent"
                    )
                default = pred_finish + comm  # otherwise
                if pred_finish > default:  # negative comm (defensive)
                    must.append(resource_of[p])
            if default > d1:
                d1 = default
                p1 = p
        if p1 >= 0:
            if finished_arr[p1]:
                must.append(ex_arr[p1])
                for rid, _time in arrivals_of[p1]:
                    must.append(rid)
                if old_rid is not None:
                    must.append(old_rid)
            else:
                must.append(resource_of[p1])

        ready_buf = [d1] * n_resources
        for rid in set(must):
            j = rid_index.get(rid)
            if j is None:
                continue  # override on a resource that left the pool
            ready = clock
            for p, comm in preds:
                if finished_arr[p]:
                    if ex_arr[p] == rid:
                        value = aft_arr[p]  # Case 1
                    else:
                        recorded = None
                        for arid, time in arrivals_of[p]:
                            if arid == rid:
                                recorded = time
                                break
                        if recorded is not None:
                            value = recorded  # recorded transfer
                        elif rid == old_rid:
                            # static-strategy rule: the transfer to the
                            # job's previous target started at AFT
                            value = aft_arr[p] + comm
                        else:
                            value = clock + comm  # Case 2
                else:
                    pred_finish = finish_of[p]
                    if resource_of[p] == rid:
                        value = pred_finish  # Case 3
                    else:
                        value = pred_finish + comm  # otherwise
                if value > ready:
                    ready = value
            ready_buf[j] = ready
        best_j, best_start, best_finish = _min_eft_scan(
            scan_buf, ready_buf, w_row, insertion
        )
        best_rid = resources[best_j]
        timeline_list[best_j].occupy(best_start, best_finish, job)
        scan_buf.refresh(best_j)
        schedule.add(Assignment(job, best_rid, best_start, best_finish))
        finish_of[i] = best_finish
        resource_of[i] = best_rid


@dataclass
class AHEFTScheduler:
    """Object wrapper exposing AHEFT through the common scheduler interface.

    ``schedule()`` performs the initial scheduling (identical to HEFT);
    ``reschedule()`` performs the adaptive step at a later clock value.
    """

    insertion: bool = True
    respect_running: bool = True
    name: str = "AHEFT"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return aheft_reschedule(
            workflow,
            costs,
            resources,
            clock=0.0,
            previous_schedule=None,
            execution_state=None,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )

    def reschedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        previous_schedule: Optional[Schedule],
        execution_state: Optional[ExecutionState] = None,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        return aheft_reschedule(
            workflow,
            costs,
            resources,
            clock=clock,
            previous_schedule=previous_schedule,
            execution_state=execution_state,
            insertion=self.insertion,
            respect_running=self.respect_running,
            resource_available_from=resource_available_from,
            busy=busy,
            name=self.name,
        )
