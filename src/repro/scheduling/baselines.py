"""Additional scheduling baselines.

Besides the three strategies the paper evaluates head-to-head (static HEFT,
adaptive AHEFT, dynamic Min-Min) this module provides common comparison
points used by the broader DAG-scheduling literature the paper cites
(Braun et al. heuristics, the Höing/Schiffmann test bench):

* :class:`MaxMinScheduler` and :class:`SufferageScheduler` — dynamic batch
  heuristics sharing the Min-Min machinery,
* :class:`RandomStaticScheduler` — static mapping with random resource
  choice (a sanity lower bound),
* :class:`OpportunisticLoadBalancer` — static mapping to the earliest-ready
  resource ignoring execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.scheduling.base import Assignment, ResourceTimeline, Schedule
from repro.scheduling.batch import BatchPlanMixin
from repro.scheduling.heft import BusyIntervals, occupy_busy_intervals
from repro.scheduling.minmin import batch_map
from repro.utils.rng import spawn_rng
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "MaxMinScheduler",
    "SufferageScheduler",
    "RandomStaticScheduler",
    "OpportunisticLoadBalancer",
]


def _select_max_completion(best_by_job: Dict[str, Tuple[float, Assignment]]) -> str:
    return max(
        best_by_job, key=lambda job: (best_by_job[job][1].finish, job)
    )


def _select_max_sufferage(best_by_job: Dict[str, Tuple[float, Assignment]]) -> str:
    return max(best_by_job, key=lambda job: (best_by_job[job][0], job))


@dataclass
class MaxMinScheduler(BatchPlanMixin):
    """Dynamic Max-Min: fix the ready job with the *largest* best completion."""

    name: str = "MaxMin"
    selector = staticmethod(_select_max_completion)

    def map_ready_jobs(
        self,
        ready_jobs: Sequence[str],
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        resource_free: Mapping[str, float],
        data_location: Mapping[str, str],
    ) -> List[Assignment]:
        return batch_map(
            ready_jobs,
            workflow,
            costs,
            resources,
            clock=clock,
            resource_free=resource_free,
            data_location=data_location,
            selector=_select_max_completion,
        )


@dataclass
class SufferageScheduler(BatchPlanMixin):
    """Dynamic Sufferage: fix the job that loses most if denied its best resource."""

    name: str = "Sufferage"
    selector = staticmethod(_select_max_sufferage)

    def map_ready_jobs(
        self,
        ready_jobs: Sequence[str],
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float,
        resource_free: Mapping[str, float],
        data_location: Mapping[str, str],
    ) -> List[Assignment]:
        return batch_map(
            ready_jobs,
            workflow,
            costs,
            resources,
            clock=clock,
            resource_free=resource_free,
            data_location=data_location,
            selector=_select_max_sufferage,
        )


@dataclass
class RandomStaticScheduler:
    """Static schedule with a uniformly random resource per job.

    Jobs are placed in topological order at their earliest feasible start on
    the randomly chosen resource.  Deterministic for a fixed ``seed``.
    """

    seed: int = 0
    insertion: bool = True
    name: str = "RandomStatic"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        if not resources:
            raise ValueError("cannot schedule on an empty resource set")
        rng = spawn_rng(self.seed, "random-static", workflow.name)
        availability = resource_available_from or {}
        timelines = {
            rid: ResourceTimeline(rid, available_from=float(availability.get(rid, 0.0)))
            for rid in resources
        }
        occupy_busy_intervals(timelines, busy)
        schedule = Schedule(name=self.name)
        for job in workflow.topological_order():
            rid = resources[int(rng.integers(0, len(resources)))]
            duration = costs.computation_cost(job, rid)
            ready = 0.0
            for pred in workflow.predecessors(job):
                pred_assignment = schedule.assignment(pred)
                ready = max(
                    ready,
                    pred_assignment.finish
                    + costs.communication_cost(pred, job, pred_assignment.resource_id, rid),
                )
            start = timelines[rid].earliest_start(ready, duration, insertion=self.insertion)
            assignment = Assignment(job, rid, start, start + duration)
            timelines[rid].occupy(assignment.start, assignment.finish, job)
            schedule.add(assignment)
        return schedule


@dataclass
class OpportunisticLoadBalancer:
    """Static OLB: place each job on the resource that becomes free first.

    Ignores execution-time heterogeneity entirely — a classic weak baseline
    that bounds how much of HEFT's advantage comes from cost awareness.
    """

    insertion: bool = False
    name: str = "OLB"

    def schedule(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        resource_available_from: Optional[Mapping[str, float]] = None,
        busy: Optional[BusyIntervals] = None,
    ) -> Schedule:
        if not resources:
            raise ValueError("cannot schedule on an empty resource set")
        availability = resource_available_from or {}
        timelines = {
            rid: ResourceTimeline(rid, available_from=float(availability.get(rid, 0.0)))
            for rid in resources
        }
        occupy_busy_intervals(timelines, busy)
        schedule = Schedule(name=self.name)
        for job in workflow.topological_order():
            # Earliest-ready resource, ties broken by identifier.
            rid = min(resources, key=lambda r: (timelines[r].ready_time(), r))
            duration = costs.computation_cost(job, rid)
            ready = 0.0
            for pred in workflow.predecessors(job):
                pred_assignment = schedule.assignment(pred)
                ready = max(
                    ready,
                    pred_assignment.finish
                    + costs.communication_cost(pred, job, pred_assignment.resource_id, rid),
                )
            start = timelines[rid].earliest_start(ready, duration, insertion=self.insertion)
            assignment = Assignment(job, rid, start, start + duration)
            timelines[rid].occupy(assignment.start, assignment.finish, job)
            schedule.add(assignment)
        return schedule
