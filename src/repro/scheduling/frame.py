"""Shared partial-rescheduling frame for list-scheduling heuristics.

Every static list heuristic in the strategy registry (CPOP, lookahead
HEFT, HEFT with task duplication, and the batch adapters of the Min-Min
family) must work not only as a plan-once scheduler but also as the
replanner ``H`` inside the adaptive loop of paper Fig. 2: given a
partially executed workflow at time ``clock``, keep the finished and
running work where it is and re-map only the remainder — around any
foreign (other-tenant) bookings on a shared grid.

:class:`PartialScheduleFrame` packages exactly that boilerplate with the
same semantics as :func:`repro.scheduling.aheft.aheft_reschedule`:

* finished jobs are pinned at their actual start/finish, running jobs
  (``respect_running``) at their scheduled finish time,
* per-resource timelines start at ``max(clock, join time)`` and carry the
  pinned intervals plus the merged foreign ``busy`` spans,
* :meth:`fea` computes the file-earliest-availability of Eq. (1)–(3)
  (Cases 1–3 plus the otherwise-case), extended with duplicate copies:
  a duplicate execution of a predecessor placed on the candidate
  resource is a local data source from its finish onwards.

The frame is deliberately the *generic* (pair-dependent communication)
code path — correctness first; AHEFT keeps its own fast kernel.  New
registry strategies build on the frame and inherit partial-rescheduling
and shared-grid support for free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.scheduling.aheft import _scheduled_transfer_arrival
from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    ResourceTimeline,
    Schedule,
    TIME_EPS,
)
from repro.scheduling.heft import (
    BusyIntervals,
    _EftScanBuffers,
    _min_eft_scan,
    occupy_busy_intervals,
)
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["PartialScheduleFrame", "clone_timeline"]


def clone_timeline(timeline: ResourceTimeline) -> ResourceTimeline:
    """An independent copy of a timeline (for tentative what-if placement)."""
    clone = ResourceTimeline(
        timeline.resource_id, available_from=timeline.available_from
    )
    for start, finish, job_id in timeline.intervals():
        clone.occupy(start, finish, job_id)
    return clone


class PartialScheduleFrame:
    """Pinning, timelines and FEA queries for one (re)scheduling pass."""

    def __init__(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float = 0.0,
        previous_schedule: Optional[Schedule] = None,
        execution_state: Optional[ExecutionState] = None,
        respect_running: bool = True,
        resource_available_from=None,
        busy: Optional[BusyIntervals] = None,
        name: str = "schedule",
    ) -> None:
        if not resources:
            raise ValueError("cannot schedule on an empty resource set")
        workflow.validate()
        if clock < 0:
            raise ValueError("clock must be non-negative")
        self.workflow = workflow
        self.costs = costs
        self.resources = list(resources)
        self.clock = float(clock)
        self.previous_schedule = previous_schedule

        if execution_state is None:
            if previous_schedule is not None:
                execution_state = ExecutionState.from_schedule(
                    previous_schedule, clock, jobs=workflow.jobs
                )
            else:
                execution_state = ExecutionState.initial(workflow.jobs)
        self.state = execution_state

        # ------------------------------------------------------------------
        # pinned (finished / running-kept) vs re-mappable jobs
        # ------------------------------------------------------------------
        pinned: Dict[str, Assignment] = {}
        for job in workflow.jobs:
            status = self.state.job_status(job)
            if status is JobStatus.FINISHED:
                pinned[job] = Assignment(
                    job,
                    self.state.executed_on[job],
                    self.state.actual_start[job],
                    self.state.actual_finish[job],
                )
            elif status is JobStatus.RUNNING and respect_running:
                if (
                    previous_schedule is not None
                    and previous_schedule.get(job) is not None
                ):
                    sft = previous_schedule.scheduled_finish_time(job)
                else:
                    sft = self.state.actual_start[job] + costs.computation_cost(
                        job, self.state.executed_on[job]
                    )
                pinned[job] = Assignment(
                    job, self.state.executed_on[job], self.state.actual_start[job], sft
                )
        self.pinned = pinned
        self.to_schedule: List[str] = [j for j in workflow.jobs if j not in pinned]
        self.to_schedule_set: Set[str] = set(self.to_schedule)

        # ------------------------------------------------------------------
        # historical duplicates: copies from the previous plan that already
        # began executing by ``clock`` are facts — pinned consumers may have
        # started from their local data, so dropping them would make the
        # pinned history look precedence-infeasible.  Future duplicates are
        # dropped and re-derived by the placement pass; a running duplicate
        # on a departed resource is dropped (its work is lost).
        # ------------------------------------------------------------------
        resource_set = set(self.resources)
        historical_dups: List[Assignment] = []
        if previous_schedule is not None:
            for dup in previous_schedule.duplicates:
                if dup.start > self.clock + TIME_EPS:
                    continue
                if dup.resource_id not in resource_set and dup.finish > self.clock + TIME_EPS:
                    continue
                historical_dups.append(dup)

        # ------------------------------------------------------------------
        # timelines: pinned work + historical duplicates + merged busy spans
        # ------------------------------------------------------------------
        availability = resource_available_from or {}
        self.timelines: Dict[str, ResourceTimeline] = {}
        for rid in self.resources:
            start = max(clock, float(availability.get(rid, clock)))
            self.timelines[rid] = ResourceTimeline(rid, available_from=start)
        occupying = list(pinned.values()) + historical_dups
        if busy is None:
            for assignment in occupying:
                timeline = self.timelines.get(assignment.resource_id)
                if timeline is not None and assignment.finish > timeline.available_from:
                    timeline.occupy(
                        assignment.start, assignment.finish, assignment.job_id
                    )
        else:
            combined: Dict[str, List[tuple]] = {
                rid: list(spans) for rid, spans in busy.items()
            }
            for assignment in occupying:
                combined.setdefault(assignment.resource_id, []).append(
                    (assignment.start, assignment.finish)
                )
            occupy_busy_intervals(self.timelines, combined)

        self.schedule = Schedule(name=name)
        self.schedule.extend(pinned.values())
        #: duplicate copies placed so far: (job, resource) -> earliest finish
        self._dup_finish: Dict[Tuple[str, str], float] = {}
        #: resources carrying a duplicate copy, per job (for the fast path's
        #: override enumeration)
        self._dup_rids: Dict[str, List[str]] = {}
        for dup in historical_dups:
            self.schedule.add_duplicate(dup)
            key = (dup.job_id, dup.resource_id)
            current = self._dup_finish.get(key)
            if current is None or dup.finish < current:
                self._dup_finish[key] = dup.finish
            self._dup_rids.setdefault(dup.job_id, []).append(dup.resource_id)

        # ------------------------------------------------------------------
        # fast-path state: with placement-uniform communication and the
        # model's own workflow, :meth:`min_eft_placement` can run AHEFT's
        # vectorised min-EFT kernel (default + per-resource overrides, then
        # ``_min_eft_scan``) instead of |R| scalar FEA sweeps per job.
        # ------------------------------------------------------------------
        self._fast = workflow is costs.workflow and costs.has_uniform_communication
        if self._fast:
            structure = workflow.structure()
            self._job_index = structure.index
            self._job_names = structure.jobs
            self._w_rows = costs.computation_rows(self.resources)
            self._pred_comm = costs.predecessor_communications()
            self._rid_index = {rid: j for j, rid in enumerate(self.resources)}
            self._scan_buf = _EftScanBuffers(
                [self.timelines[rid] for rid in self.resources]
            )
            arrivals_by_pred: Dict[str, List[Tuple[str, float]]] = {}
            for (producer, rid), time in self.state.data_arrivals.items():
                arrivals_by_pred.setdefault(producer, []).append((rid, time))
            self._arrivals_by_pred = arrivals_by_pred
        else:
            self._scan_buf = None
            self._rid_index = {}
            self._arrivals_by_pred = {}

    # ------------------------------------------------------------------
    # FEA queries (paper Eq. 1–3, duplicate-aware)
    # ------------------------------------------------------------------
    def fea(self, pred: str, job: str, rid: str) -> float:
        """Earliest availability of ``pred``'s output on ``rid``."""
        state = self.state
        if state.job_status(pred) is JobStatus.FINISHED:
            executed_on = state.executed_on[pred]
            finish = state.actual_finish[pred]
            if executed_on == rid:
                base = finish  # Case 1
            else:
                arrival = _scheduled_transfer_arrival(
                    pred, job, rid, self.costs, self.previous_schedule, state
                )
                if arrival is not None:
                    base = arrival  # transfer already under way (or done)
                else:
                    comm = self.costs.communication_cost(pred, job, executed_on, rid)
                    base = self.clock + comm  # Case 2
        else:
            pred_assignment = self.schedule.get(pred)
            if pred_assignment is None:
                raise RuntimeError(
                    f"predecessor {pred!r} of {job!r} is neither executed nor "
                    "scheduled; the placement order is not topologically "
                    "consistent"
                )
            if pred_assignment.resource_id == rid:
                base = pred_assignment.finish  # Case 3
            else:
                comm = self.costs.communication_cost(
                    pred, job, pred_assignment.resource_id, rid
                )
                base = pred_assignment.finish + comm  # otherwise
        dup = self._dup_finish.get((pred, rid))
        if dup is not None and dup < base:
            return dup
        return base

    def ready_time(self, job: str, rid: str) -> float:
        """Earliest time every input of ``job`` is available on ``rid``."""
        ready = self.clock
        for pred in self.workflow.predecessors(job):
            value = self.fea(pred, job, rid)
            if value > ready:
                ready = value
        return ready

    def earliest_finish(
        self, job: str, rid: str, *, insertion: bool = True
    ) -> Tuple[float, float]:
        """``(start, finish)`` of the best slot for ``job`` on ``rid``."""
        duration = self.costs.computation_cost(job, rid)
        start = self.timelines[rid].earliest_start(
            self.ready_time(job, rid), duration, insertion=insertion
        )
        return start, start + duration

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, job: str, rid: str, start: float, finish: float) -> Assignment:
        assignment = Assignment(job, rid, start, finish)
        self.timelines[rid].occupy(start, finish, job)
        self.schedule.add(assignment)
        self._refresh_scan(rid)
        return assignment

    def place_duplicate(
        self, job: str, rid: str, start: float, finish: float
    ) -> Assignment:
        """Book a redundant copy of an already-known job on ``rid``."""
        assignment = Assignment(job, rid, start, finish)
        self.timelines[rid].occupy(start, finish, f"<dup:{job}>")
        self.schedule.add_duplicate(assignment)
        current = self._dup_finish.get((job, rid))
        if current is None or finish < current:
            self._dup_finish[(job, rid)] = finish
        self._dup_rids.setdefault(job, []).append(rid)
        self._refresh_scan(rid)
        return assignment

    def _refresh_scan(self, rid: str) -> None:
        if self._scan_buf is not None:
            j = self._rid_index.get(rid)
            if j is not None:
                self._scan_buf.refresh(j)

    # ------------------------------------------------------------------
    def min_eft_placement(
        self, job: str, *, insertion: bool = True
    ) -> Tuple[str, float, float]:
        """HEFT's minimum-EFT rule over all resources (deterministic ties).

        On the fast path (model's own workflow, placement-uniform
        communication) this runs the same default/override ready-time
        decomposition as :func:`repro.scheduling.aheft.aheft_reschedule`
        followed by the shared min-EFT scan — every per-resource FEA
        override *lowers* a predecessor's value relative to its default
        (data local or in flight arrives no later than a transfer started
        now; a co-located successor skips the transfer; a duplicate copy
        is a ``min``), so only the override resources of the argmax-default
        predecessor, plus any epsilon violators, need the exact per-pred
        sweep.  The scalar loop below remains the reference semantics.
        """
        if self._fast:
            return self._min_eft_fast(job, insertion)
        best_rid: Optional[str] = None
        best_start = 0.0
        best_finish = float("inf")
        for rid in self.resources:
            start, finish = self.earliest_finish(job, rid, insertion=insertion)
            if best_rid is None or finish < best_finish - TIME_EPS:
                best_rid = rid
                best_start = start
                best_finish = finish
        assert best_rid is not None
        return best_rid, best_start, best_finish

    def _min_eft_fast(self, job: str, insertion: bool) -> Tuple[str, float, float]:
        state = self.state
        clock = self.clock
        sched_get = self.schedule._assignments.get
        job_names = self._job_names
        finished = JobStatus.FINISHED
        prev = self.previous_schedule
        old = prev.get(job) if prev is not None else None
        old_rid = old.resource_id if old is not None else None
        d1 = clock
        p1_name: Optional[str] = None
        p1_finished = False
        must: List[str] = []
        for p, comm in self._pred_comm[self._job_index[job]]:
            pname = job_names[p]
            if state.job_status(pname) is finished:
                default = clock + comm  # Case 2
                aft = state.actual_finish[pname]
                if aft > default:
                    must.append(state.executed_on[pname])
                arrivals = self._arrivals_by_pred.get(pname)
                if arrivals:
                    for rid, time in arrivals:
                        if time > default:
                            must.append(rid)
                if old_rid is not None and aft + comm > default:
                    must.append(old_rid)
                is_finished = True
            else:
                assignment = sched_get(pname)
                if assignment is None:
                    raise RuntimeError(
                        f"predecessor {pname!r} of {job!r} is neither "
                        "executed nor scheduled; the placement order is not "
                        "topologically consistent"
                    )
                pred_finish = assignment.finish
                default = pred_finish + comm  # otherwise
                if pred_finish > default:  # negative comm (defensive)
                    must.append(assignment.resource_id)
                is_finished = False
            if default > d1:
                d1 = default
                p1_name = pname
                p1_finished = is_finished
        if p1_name is not None:
            if p1_finished:
                must.append(state.executed_on[p1_name])
                for rid, _time in self._arrivals_by_pred.get(p1_name, ()):
                    must.append(rid)
                if old_rid is not None:
                    must.append(old_rid)
            else:
                must.append(sched_get(p1_name).resource_id)
            # a duplicate copy of the argmax predecessor is a local data
            # source that can lower its FEA below the shared default
            must.extend(self._dup_rids.get(p1_name, ()))

        ready_buf = [d1] * len(self.resources)
        for rid in set(must):
            j = self._rid_index.get(rid)
            if j is not None:  # override on a resource outside the pool
                ready_buf[j] = self.ready_time(job, rid)
        i = self._job_index[job]
        best_j, best_start, best_finish = _min_eft_scan(
            self._scan_buf, ready_buf, self._w_rows[i], insertion
        )
        return self.resources[best_j], best_start, best_finish
