"""Shared partial-rescheduling frame for list-scheduling heuristics.

Every static list heuristic in the strategy registry (CPOP, lookahead
HEFT, HEFT with task duplication, and the batch adapters of the Min-Min
family) must work not only as a plan-once scheduler but also as the
replanner ``H`` inside the adaptive loop of paper Fig. 2: given a
partially executed workflow at time ``clock``, keep the finished and
running work where it is and re-map only the remainder — around any
foreign (other-tenant) bookings on a shared grid.

:class:`PartialScheduleFrame` packages exactly that boilerplate with the
same semantics as :func:`repro.scheduling.aheft.aheft_reschedule`:

* finished jobs are pinned at their actual start/finish, running jobs
  (``respect_running``) at their scheduled finish time,
* per-resource timelines start at ``max(clock, join time)`` and carry the
  pinned intervals plus the merged foreign ``busy`` spans,
* :meth:`fea` computes the file-earliest-availability of Eq. (1)–(3)
  (Cases 1–3 plus the otherwise-case), extended with duplicate copies:
  a duplicate execution of a predecessor placed on the candidate
  resource is a local data source from its finish onwards.

The frame is deliberately the *generic* (pair-dependent communication)
code path — correctness first; AHEFT keeps its own fast kernel.  New
registry strategies build on the frame and inherit partial-rescheduling
and shared-grid support for free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.scheduling.aheft import _scheduled_transfer_arrival
from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    ResourceTimeline,
    Schedule,
    TIME_EPS,
)
from repro.scheduling.heft import BusyIntervals, occupy_busy_intervals
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["PartialScheduleFrame", "clone_timeline"]


def clone_timeline(timeline: ResourceTimeline) -> ResourceTimeline:
    """An independent copy of a timeline (for tentative what-if placement)."""
    clone = ResourceTimeline(
        timeline.resource_id, available_from=timeline.available_from
    )
    for start, finish, job_id in timeline.intervals():
        clone.occupy(start, finish, job_id)
    return clone


class PartialScheduleFrame:
    """Pinning, timelines and FEA queries for one (re)scheduling pass."""

    def __init__(
        self,
        workflow: Workflow,
        costs: CostModel,
        resources: Sequence[str],
        *,
        clock: float = 0.0,
        previous_schedule: Optional[Schedule] = None,
        execution_state: Optional[ExecutionState] = None,
        respect_running: bool = True,
        resource_available_from=None,
        busy: Optional[BusyIntervals] = None,
        name: str = "schedule",
    ) -> None:
        if not resources:
            raise ValueError("cannot schedule on an empty resource set")
        workflow.validate()
        if clock < 0:
            raise ValueError("clock must be non-negative")
        self.workflow = workflow
        self.costs = costs
        self.resources = list(resources)
        self.clock = float(clock)
        self.previous_schedule = previous_schedule

        if execution_state is None:
            if previous_schedule is not None:
                execution_state = ExecutionState.from_schedule(
                    previous_schedule, clock, jobs=workflow.jobs
                )
            else:
                execution_state = ExecutionState.initial(workflow.jobs)
        self.state = execution_state

        # ------------------------------------------------------------------
        # pinned (finished / running-kept) vs re-mappable jobs
        # ------------------------------------------------------------------
        pinned: Dict[str, Assignment] = {}
        for job in workflow.jobs:
            status = self.state.job_status(job)
            if status is JobStatus.FINISHED:
                pinned[job] = Assignment(
                    job,
                    self.state.executed_on[job],
                    self.state.actual_start[job],
                    self.state.actual_finish[job],
                )
            elif status is JobStatus.RUNNING and respect_running:
                if (
                    previous_schedule is not None
                    and previous_schedule.get(job) is not None
                ):
                    sft = previous_schedule.scheduled_finish_time(job)
                else:
                    sft = self.state.actual_start[job] + costs.computation_cost(
                        job, self.state.executed_on[job]
                    )
                pinned[job] = Assignment(
                    job, self.state.executed_on[job], self.state.actual_start[job], sft
                )
        self.pinned = pinned
        self.to_schedule: List[str] = [j for j in workflow.jobs if j not in pinned]
        self.to_schedule_set: Set[str] = set(self.to_schedule)

        # ------------------------------------------------------------------
        # historical duplicates: copies from the previous plan that already
        # began executing by ``clock`` are facts — pinned consumers may have
        # started from their local data, so dropping them would make the
        # pinned history look precedence-infeasible.  Future duplicates are
        # dropped and re-derived by the placement pass; a running duplicate
        # on a departed resource is dropped (its work is lost).
        # ------------------------------------------------------------------
        resource_set = set(self.resources)
        historical_dups: List[Assignment] = []
        if previous_schedule is not None:
            for dup in previous_schedule.duplicates:
                if dup.start > self.clock + TIME_EPS:
                    continue
                if dup.resource_id not in resource_set and dup.finish > self.clock + TIME_EPS:
                    continue
                historical_dups.append(dup)

        # ------------------------------------------------------------------
        # timelines: pinned work + historical duplicates + merged busy spans
        # ------------------------------------------------------------------
        availability = resource_available_from or {}
        self.timelines: Dict[str, ResourceTimeline] = {}
        for rid in self.resources:
            start = max(clock, float(availability.get(rid, clock)))
            self.timelines[rid] = ResourceTimeline(rid, available_from=start)
        occupying = list(pinned.values()) + historical_dups
        if busy is None:
            for assignment in occupying:
                timeline = self.timelines.get(assignment.resource_id)
                if timeline is not None and assignment.finish > timeline.available_from:
                    timeline.occupy(
                        assignment.start, assignment.finish, assignment.job_id
                    )
        else:
            combined: Dict[str, List[tuple]] = {
                rid: list(spans) for rid, spans in busy.items()
            }
            for assignment in occupying:
                combined.setdefault(assignment.resource_id, []).append(
                    (assignment.start, assignment.finish)
                )
            occupy_busy_intervals(self.timelines, combined)

        self.schedule = Schedule(name=name)
        self.schedule.extend(pinned.values())
        #: duplicate copies placed so far: (job, resource) -> earliest finish
        self._dup_finish: Dict[Tuple[str, str], float] = {}
        for dup in historical_dups:
            self.schedule.add_duplicate(dup)
            key = (dup.job_id, dup.resource_id)
            current = self._dup_finish.get(key)
            if current is None or dup.finish < current:
                self._dup_finish[key] = dup.finish

    # ------------------------------------------------------------------
    # FEA queries (paper Eq. 1–3, duplicate-aware)
    # ------------------------------------------------------------------
    def fea(self, pred: str, job: str, rid: str) -> float:
        """Earliest availability of ``pred``'s output on ``rid``."""
        state = self.state
        if state.job_status(pred) is JobStatus.FINISHED:
            executed_on = state.executed_on[pred]
            finish = state.actual_finish[pred]
            if executed_on == rid:
                base = finish  # Case 1
            else:
                arrival = _scheduled_transfer_arrival(
                    pred, job, rid, self.costs, self.previous_schedule, state
                )
                if arrival is not None:
                    base = arrival  # transfer already under way (or done)
                else:
                    comm = self.costs.communication_cost(pred, job, executed_on, rid)
                    base = self.clock + comm  # Case 2
        else:
            pred_assignment = self.schedule.get(pred)
            if pred_assignment is None:
                raise RuntimeError(
                    f"predecessor {pred!r} of {job!r} is neither executed nor "
                    "scheduled; the placement order is not topologically "
                    "consistent"
                )
            if pred_assignment.resource_id == rid:
                base = pred_assignment.finish  # Case 3
            else:
                comm = self.costs.communication_cost(
                    pred, job, pred_assignment.resource_id, rid
                )
                base = pred_assignment.finish + comm  # otherwise
        dup = self._dup_finish.get((pred, rid))
        if dup is not None and dup < base:
            return dup
        return base

    def ready_time(self, job: str, rid: str) -> float:
        """Earliest time every input of ``job`` is available on ``rid``."""
        ready = self.clock
        for pred in self.workflow.predecessors(job):
            value = self.fea(pred, job, rid)
            if value > ready:
                ready = value
        return ready

    def earliest_finish(
        self, job: str, rid: str, *, insertion: bool = True
    ) -> Tuple[float, float]:
        """``(start, finish)`` of the best slot for ``job`` on ``rid``."""
        duration = self.costs.computation_cost(job, rid)
        start = self.timelines[rid].earliest_start(
            self.ready_time(job, rid), duration, insertion=insertion
        )
        return start, start + duration

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, job: str, rid: str, start: float, finish: float) -> Assignment:
        assignment = Assignment(job, rid, start, finish)
        self.timelines[rid].occupy(start, finish, job)
        self.schedule.add(assignment)
        return assignment

    def place_duplicate(
        self, job: str, rid: str, start: float, finish: float
    ) -> Assignment:
        """Book a redundant copy of an already-known job on ``rid``."""
        assignment = Assignment(job, rid, start, finish)
        self.timelines[rid].occupy(start, finish, f"<dup:{job}>")
        self.schedule.add_duplicate(assignment)
        current = self._dup_finish.get((job, rid))
        if current is None or finish < current:
            self._dup_finish[(job, rid)] = finish
        return assignment

    # ------------------------------------------------------------------
    def min_eft_placement(
        self, job: str, *, insertion: bool = True
    ) -> Tuple[str, float, float]:
        """HEFT's minimum-EFT rule over all resources (deterministic ties)."""
        best_rid: Optional[str] = None
        best_start = 0.0
        best_finish = float("inf")
        for rid in self.resources:
            start, finish = self.earliest_finish(job, rid, insertion=insertion)
            if best_rid is None or finish < best_finish - TIME_EPS:
                best_rid = rid
                best_start = start
                best_finish = finish
        assert best_rid is not None
        return best_rid, best_start, best_finish
