"""``python -m repro`` — the reproduction's command-line interface.

Seven subcommands make the benchmark matrix scriptable from CI and from a
shell alike:

* ``repro scenarios`` — list the registered grid-dynamics scenarios;
* ``repro strategies`` — list the registered scheduling strategies
  (name, kind, constructor parameters);
* ``repro run <bench>`` — run a benchmark script from ``benchmarks/`` by
  (fuzzy) name, forwarding extra arguments (e.g. ``repro run kernel --
  --quick``);
* ``repro sweep --scenario churn ...`` — run the strategy comparison under
  one or more named scenarios and write a JSON ledger;
* ``repro multi --tenants 4 --arrival-rate 0.01 --scenario departures`` —
  run the multi-tenant shared-grid matrix (concurrent workflow streams
  competing for the same resources) and write a JSON ledger;
* ``repro mc --error-model resource_bias --magnitude 0 --magnitude 0.4``
  — the Monte Carlo uncertainty matrix: replicated runs under sampled
  ground-truth runtimes, reporting mean/CI95 makespans and the AHEFT
  improvement trend over estimate-error magnitudes;
* ``repro compare <ledger-A> <ledger-B>`` — compare two JSON ledgers
  within a tolerance.

Exit-code contract (relied on by shell pipelines and the CI regression
gate): **0** on success, **1** when ``repro compare`` finds a deviation
beyond tolerance, **2** on usage or I/O errors.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["main"]

EXIT_OK = 0
EXIT_DEVIATION = 1
EXIT_ERROR = 2

_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?")


class CliError(Exception):
    """A usage/environment error; maps to exit code 2."""


# ----------------------------------------------------------------------
# repro scenarios
# ----------------------------------------------------------------------
def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro import registry

    names = registry.available("scenario")
    if args.json:
        payload = {
            name: {
                "summary": registry.describe("scenario", name)["summary"],
                "defaults": registry.describe("scenario", name)["defaults"],
            }
            for name in names
        }
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return EXIT_OK
    width = max(len(name) for name in names)
    for name in names:
        print(f"{name:<{width}}  {registry.describe('scenario', name)['summary']}")
    return EXIT_OK


# ----------------------------------------------------------------------
# repro strategies
# ----------------------------------------------------------------------
def _cmd_strategies(args: argparse.Namespace) -> int:
    from repro import registry

    names = registry.available("scheduler")
    infos = {name: registry.describe("scheduler", name) for name in names}
    if args.json:
        payload = {
            name: {
                "kind": info["kind"],
                "summary": info["summary"],
                "params": info["params"],
            }
            for name, info in infos.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return EXIT_OK
    width = max(len(name) for name in names)
    kind_width = max(len(info["kind"]) for info in infos.values())
    for name in names:
        info = infos[name]
        params = ", ".join(
            f"{key}={value}" for key, value in info["params"].items()
        )
        line = (
            f"{name:<{width}}  {info['kind']:<{kind_width}}  {info['summary']}"
        )
        if params:
            line += f"  [{params}]"
        print(line)
    return EXIT_OK


def _parse_strategies(raw: str) -> List[str]:
    """Split and validate a comma-separated strategy list."""
    from repro.experiments.runner import resolve_strategy_runner

    strategies = [s.strip() for s in raw.split(",") if s.strip()]
    if not strategies:
        raise CliError("--strategies must name at least one strategy")
    for name in strategies:
        try:
            resolve_strategy_runner(name)
        except (KeyError, ValueError) as error:
            raise CliError(str(error).strip('"')) from None
    return strategies


# ----------------------------------------------------------------------
# repro run
# ----------------------------------------------------------------------
def _bench_dir(explicit: Optional[str]) -> Path:
    if explicit:
        path = Path(explicit)
        if not path.is_dir():
            raise CliError(f"benchmark directory not found: {path}")
        return path
    candidates = [
        Path.cwd() / "benchmarks",
        Path(__file__).resolve().parents[2] / "benchmarks",
    ]
    for path in candidates:
        if path.is_dir():
            return path
    raise CliError(
        "no benchmarks/ directory found (looked in "
        + ", ".join(str(c) for c in candidates)
        + "); pass --bench-dir"
    )


def _resolve_bench(directory: Path, name: str) -> Path:
    scripts = sorted(directory.glob("bench_*.py"))
    exact = [s for s in scripts if s.name in (name, f"bench_{name}.py")]
    if exact:
        return exact[0]
    matches = [s for s in scripts if name in s.stem]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise CliError(
            f"no benchmark matches {name!r}; available: "
            + ", ".join(s.stem.removeprefix("bench_") for s in scripts)
        )
    raise CliError(
        f"benchmark name {name!r} is ambiguous: "
        + ", ".join(s.stem.removeprefix("bench_") for s in matches)
    )


def _cmd_run(args: argparse.Namespace) -> int:
    import runpy

    directory = _bench_dir(args.bench_dir)
    if args.list or args.bench is None:
        for script in sorted(directory.glob("bench_*.py")):
            print(script.stem.removeprefix("bench_"))
        return EXIT_OK
    script = _resolve_bench(directory, args.bench)
    forwarded = list(args.bench_args)
    if forwarded:
        # argparse.REMAINDER swallows everything after the benchmark name,
        # including repro's own options; insist on the explicit separator
        # so a mistyped `repro run bench --bench-dir X` fails loudly
        # instead of silently forwarding the flag to the script.  Recent
        # argparse versions consume the first `--` themselves, so the check
        # runs on the raw argv: the forwarded tokens must be exactly what
        # follows the first literal `--` (older argparse keeps the
        # separator itself at the front of the REMAINDER).
        raw = list(getattr(args, "raw_argv", []))
        sep = raw.index("--") if "--" in raw else -1
        if sep == -1 or (forwarded != raw[sep + 1 :] and forwarded != raw[sep:]):
            raise CliError(
                "place repro options before the benchmark name; script "
                f"arguments go after a literal '--' (got {forwarded[0]!r})"
            )
        if forwarded[0] == "--":  # older argparse kept the separator
            forwarded = forwarded[1:]
    print(f"running {script} {' '.join(forwarded)}".rstrip())
    old_argv = sys.argv
    old_path = list(sys.path)
    try:
        # benchmarks import their shared helpers as ``from _common import …``
        sys.path.insert(0, str(directory))
        sys.argv = [str(script), *forwarded]
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
        sys.path[:] = old_path
    return EXIT_OK


# ----------------------------------------------------------------------
# repro sweep
# ----------------------------------------------------------------------
def _parse_value(raw: str) -> object:
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    if raw.lower() in ("none", "null"):
        return None
    return raw


def _parse_kv(pairs: Sequence[str], option: str) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise CliError(f"{option} expects key=value, got {pair!r}")
        out[key] = _parse_value(value)
    return out


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.config import RandomExperimentConfig
    from repro.experiments.reporting import render_scenario_matrix
    from repro.experiments.sweep import sweep_scenarios
    from repro.scenarios import make_scenario

    scenario_params = _parse_kv(args.scenario_param, "--scenario-param")
    scenarios = []
    for name in args.scenario:
        try:
            scenarios.append(make_scenario(name, **scenario_params))
        except TypeError as error:
            # e.g. --scenario-param interval=... applied to a scenario
            # without an `interval` parameter
            raise CliError(f"scenario {name!r} rejected parameters: {error}") from None

    v = args.v if args.v is not None else (30 if args.quick else 60)
    resources = args.resources if args.resources is not None else (8 if args.quick else 10)
    instances = args.instances if args.instances is not None else (1 if args.quick else 3)
    base = RandomExperimentConfig(
        v=v,
        ccr=args.ccr,
        out_degree=args.out_degree,
        beta=args.beta,
        resources=resources,
        seed=args.seed,
    )
    strategies = tuple(_parse_strategies(args.strategies))
    points = sweep_scenarios(
        scenarios,
        base_config=base,
        instances=instances,
        strategies=strategies,
        seed=args.seed,
        workers=args.workers,
    )
    table = render_scenario_matrix(
        points, strategies=strategies, title=f"Scenario sweep ({args.name})"
    )
    print(table)

    ledger = {
        "name": args.name,
        "kind": "scenario_sweep",
        "base_config": base.as_params(),
        "instances": instances,
        "seed": args.seed,
        "strategies": list(strategies),
        "scenario_params": scenario_params,
        "scenarios": [point.as_dict() for point in points],
        "lines": table.splitlines(),
    }
    out = Path(args.out) if args.out else _bench_dir(None) / "results" / f"{args.name}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(ledger, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    print(f"ledger written to {out}")
    return EXIT_OK


# ----------------------------------------------------------------------
# repro multi
# ----------------------------------------------------------------------
def _cmd_multi(args: argparse.Namespace) -> int:
    from repro.core.multi_tenant import POLICIES
    from repro.experiments.multi_tenant import MultiTenantConfig
    from repro.experiments.reporting import render_multi_tenant_matrix
    from repro.experiments.sweep import sweep_multi_workflow
    from repro.scenarios import make_scenario

    scenario_params = _parse_kv(args.scenario_param, "--scenario-param")
    scenarios = list(args.scenario) if args.scenario else ["static"]
    for name in scenarios:
        try:
            make_scenario(name, **scenario_params)
        except TypeError as error:
            raise CliError(f"scenario {name!r} rejected parameters: {error}") from None

    v = args.v if args.v is not None else (16 if args.quick else 24)
    resources = args.resources if args.resources is not None else (8 if args.quick else 10)
    max_arrivals = args.max_arrivals if args.max_arrivals is not None else (
        3 if args.quick else 6
    )
    if args.tenants <= 0:
        raise CliError("--tenants must be positive")
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown_policies = [p for p in policies if p not in POLICIES]
    if not policies or unknown_policies:
        raise CliError(
            f"unknown policies {unknown_policies or args.policies!r}; "
            f"choose from {', '.join(POLICIES)}"
        )
    from repro.core.adaptive import resolve_strategy

    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    if not strategies:
        raise CliError("--strategies must name at least one strategy")
    for name in strategies:
        try:
            resolve_strategy(name, None, require="reschedule")
        except (KeyError, ValueError) as error:
            raise CliError(str(error).strip('"')) from None
    if args.stretch_limit < 1.0:
        raise CliError("--stretch-limit must be at least 1.0")
    if not 0.0 < args.saturation_threshold <= 1.0:
        raise CliError("--saturation-threshold must be in (0, 1]")
    if args.max_deferrals < 0:
        raise CliError("--max-deferrals must be non-negative")
    base = MultiTenantConfig(
        resources=resources,
        scenario_params=tuple(sorted(scenario_params.items())),
        v=v,
        parallelism=args.parallelism,
        ccr=args.ccr,
        beta=args.beta,
        max_arrivals=max_arrivals,
        horizon=args.horizon,
        seed=args.seed,
        admission=args.admission,
        saturation_threshold=args.saturation_threshold,
        stretch_limit=args.stretch_limit,
        max_deferrals=args.max_deferrals,
        deadline_factor=args.deadline_factor,
        slo_stretch=args.slo_stretch,
    )
    points = sweep_multi_workflow(
        arrival_rates=[args.arrival_rate],
        tenant_counts=[args.tenants],
        scenarios=scenarios,
        policies=policies,
        strategies=strategies,
        base_config=base,
        seed=args.seed,
    )
    table = render_multi_tenant_matrix(
        points, title=f"Multi-tenant shared grid ({args.name})"
    )
    print(table)

    ledger = {
        "name": args.name,
        "kind": "multi_workflow_sweep",
        "base_config": base.as_params(),
        "seed": args.seed,
        "tenants": args.tenants,
        "arrival_rate": args.arrival_rate,
        "policies": policies,
        "strategies": strategies,
        "scenario_params": scenario_params,
        "admission": args.admission,
        "points": [point.as_dict() for point in points],
        "lines": table.splitlines(),
    }
    out = Path(args.out) if args.out else _bench_dir(None) / "results" / f"{args.name}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(ledger, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    print(f"ledger written to {out}")
    return EXIT_OK


# ----------------------------------------------------------------------
# repro mc
# ----------------------------------------------------------------------
def _cmd_mc(args: argparse.Namespace) -> int:
    from repro.experiments.config import RandomExperimentConfig
    from repro.experiments.reporting import render_uncertainty_matrix
    from repro.experiments.uncertainty import sweep_uncertainty
    from repro.scenarios import make_scenario
    from repro.workflow.costs import available_error_models, make_error_model

    if args.error_model not in available_error_models():
        raise CliError(
            f"unknown error model {args.error_model!r}; "
            f"registered: {', '.join(available_error_models())}"
        )
    magnitudes = args.magnitude if args.magnitude else [0.0, 0.2, 0.4, 0.6]
    if any(m < 0 for m in magnitudes):
        raise CliError("error magnitudes must be non-negative")
    for magnitude in magnitudes:
        try:
            make_error_model(args.error_model, magnitude, seed=args.seed)
        except ValueError as error:
            raise CliError(
                f"error model {args.error_model!r} rejected magnitude "
                f"{magnitude!r}: {error}"
            ) from None
    scenarios = list(args.scenario) if args.scenario else ["paper"]
    for name in scenarios:
        make_scenario(name)  # raises ScenarioError on unknown names

    v = args.v if args.v is not None else (24 if args.quick else 40)
    resources = args.resources if args.resources is not None else (8 if args.quick else 10)
    instances = args.instances if args.instances is not None else (1 if args.quick else 2)
    replications = args.replications if args.replications is not None else (
        3 if args.quick else 5
    )
    strategies = tuple(_parse_strategies(args.strategies))
    base = RandomExperimentConfig(
        v=v,
        ccr=args.ccr,
        out_degree=args.out_degree,
        beta=args.beta,
        resources=resources,
        seed=args.seed,
    )
    points = sweep_uncertainty(
        magnitudes,
        error_model=args.error_model,
        scenarios=scenarios,
        strategies=strategies,
        base_config=base,
        instances=instances,
        replications=replications,
        seed=args.seed,
        workers=args.workers,
    )
    table = render_uncertainty_matrix(
        points,
        strategies=strategies,
        title=f"Monte Carlo uncertainty sweep ({args.name})",
    )
    print(table)

    ledger = {
        "name": args.name,
        "kind": "uncertainty_sweep",
        "base_config": base.as_params(),
        "error_model": args.error_model,
        "magnitudes": [float(m) for m in magnitudes],
        "scenarios": scenarios,
        "instances": instances,
        "replications": replications,
        "seed": args.seed,
        "strategies": list(strategies),
        "points": [point.as_dict() for point in points],
        "lines": table.splitlines(),
    }
    out = Path(args.out) if args.out else _bench_dir(None) / "results" / f"{args.name}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(ledger, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    print(f"ledger written to {out}")
    return EXIT_OK


# ----------------------------------------------------------------------
# repro compare
# ----------------------------------------------------------------------
def _flatten(value: object, prefix: str = "") -> Iterator[Tuple[str, object]]:
    if isinstance(value, dict):
        for key in sorted(value):
            yield from _flatten(value[key], f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from _flatten(item, f"{prefix}[{index}]")
    else:
        yield prefix, value


def _relative_deviation(a: float, b: float) -> float:
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    if scale == 0:
        return 0.0
    return abs(a - b) / scale


def _tolerance_for(
    path: str, default: float, per_key: Sequence[Tuple[str, float]]
) -> Optional[float]:
    """Tolerance for ``path`` — ``None`` means the key is ignored."""
    for pattern, tolerance in per_key:
        if fnmatch.fnmatch(path, pattern):
            return tolerance
    return default


def _load_json(path: str) -> object:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as error:
        raise CliError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise CliError(f"{path} is not valid JSON: {error}") from error


def _cmd_compare(args: argparse.Namespace) -> int:
    left = dict(_flatten(_load_json(args.baseline)))
    right = dict(_flatten(_load_json(args.candidate)))
    per_key: List[Tuple[str, float]] = []
    for pair in args.key_tolerance:
        pattern, sep, raw = pair.rpartition("=")
        if not sep or not pattern:
            raise CliError(f"--key-tolerance expects GLOB=FLOAT, got {pair!r}")
        try:
            per_key.append((pattern, float(raw)))
        except ValueError:
            raise CliError(f"--key-tolerance expects GLOB=FLOAT, got {pair!r}") from None

    def ignored(path: str) -> bool:
        if args.only and not any(fnmatch.fnmatch(path, glob) for glob in args.only):
            return True
        return any(fnmatch.fnmatch(path, glob) for glob in args.ignore)

    deviations: List[str] = []
    compared = 0

    for path in sorted(set(left) | set(right)):
        if ignored(path):
            continue
        if path not in left or path not in right:
            if not args.missing_ok:
                side = args.candidate if path not in right else args.baseline
                deviations.append(f"{path}: missing from {side}")
            continue
        a, b = left[path], right[path]
        tolerance = _tolerance_for(path, args.tolerance, per_key)
        a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
        b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
        if a_num and b_num:
            compared += 1
            deviation = _relative_deviation(float(a), float(b))
            if deviation > tolerance:
                deviations.append(
                    f"{path}: {a} vs {b} (rel. dev {deviation:.3g} > {tolerance:g})"
                )
        elif isinstance(a, str) and isinstance(b, str):
            # Embedded numbers (e.g. the human-readable ``lines`` of a
            # ledger) are compared within tolerance; the text around them
            # must match exactly.
            a_nums = [float(m) for m in _NUMBER_RE.findall(a)]
            b_nums = [float(m) for m in _NUMBER_RE.findall(b)]
            a_text = _NUMBER_RE.sub("#", a)
            b_text = _NUMBER_RE.sub("#", b)
            if a_text != b_text or len(a_nums) != len(b_nums):
                deviations.append(f"{path}: text differs: {a!r} vs {b!r}")
                continue
            for index, (x, y) in enumerate(zip(a_nums, b_nums)):
                compared += 1
                deviation = _relative_deviation(x, y)
                if deviation > tolerance:
                    deviations.append(
                        f"{path} (number {index}): {x} vs {y} "
                        f"(rel. dev {deviation:.3g} > {tolerance:g})"
                    )
        elif a != b:
            deviations.append(f"{path}: {a!r} != {b!r}")

    for line in deviations:
        print(f"DEVIATION  {line}")
    status = "FAIL" if deviations else "OK"
    print(
        f"{status}: {compared} numeric value(s) compared, "
        f"{len(deviations)} deviation(s) beyond tolerance {args.tolerance:g} "
        f"({args.baseline} vs {args.candidate})"
    )
    return EXIT_DEVIATION if deviations else EXIT_OK


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _scenario_help() -> str:
    """Enumerate the registered scenarios so help text can never drift.

    New scenarios register themselves in :mod:`repro.scenarios.library`;
    building the string dynamically keeps ``--help`` (and the CLI contract
    tests asserting on it) in sync with the registry automatically.
    """
    from repro.scenarios import available_scenarios

    return (
        "scenario name (repeatable); registered: "
        + ", ".join(available_scenarios())
    )


def _strategy_help(*, adaptive_only: bool = False) -> str:
    """Enumerate the registered strategies so help text can never drift.

    New strategies register themselves in
    :data:`repro.scheduling.registry.SCHEDULERS`; building the string
    dynamically keeps ``--help`` (and the CLI contract tests asserting on
    it) in sync with the registry automatically.
    """
    from repro.scheduling.registry import (
        available_schedulers,
        make_scheduler,
        scheduler_kind,
    )

    names = available_schedulers()
    if adaptive_only:
        names = [n for n in names if hasattr(make_scheduler(n), "reschedule")]
        return (
            "comma-separated replanning strategies; registered: "
            + ", ".join(names)
        )
    from repro.experiments.runner import STRATEGY_RUNNERS

    parts = [f"{name} ({scheduler_kind(name)})" for name in names]
    return (
        "comma-separated strategy names; registered: "
        + ", ".join(parts)
        + "; legacy runners: "
        + ", ".join(sorted(STRATEGY_RUNNERS))
        + "; prefix adaptive:<name> runs any replanning strategy adaptively"
    )


def _error_model_help() -> str:
    """Enumerate the registered error families so help text cannot drift.

    New error models register themselves in
    :data:`repro.workflow.costs.ERROR_MODELS`; building the string
    dynamically keeps ``repro mc --help`` (and the CLI contract tests
    asserting on it) in sync with the registry automatically.
    """
    from repro.workflow.costs import available_error_models, error_model_summary

    parts = [
        f"{name} ({error_model_summary(name)})" for name in available_error_models()
    ]
    return "error-model family; registered: " + "; ".join(parts)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__.split("\n\n")[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scn = sub.add_parser("scenarios", help="list registered grid-dynamics scenarios")
    p_scn.add_argument("--json", action="store_true", help="machine-readable output")
    p_scn.set_defaults(func=_cmd_scenarios)

    p_str = sub.add_parser(
        "strategies", help="list registered scheduling strategies (name, kind, params)"
    )
    p_str.add_argument("--json", action="store_true", help="machine-readable output")
    p_str.set_defaults(func=_cmd_strategies)

    p_run = sub.add_parser("run", help="run a benchmark from benchmarks/ by name")
    p_run.add_argument("bench", nargs="?", help="benchmark name (fuzzy match)")
    p_run.add_argument("--bench-dir", help="benchmarks directory (default: auto)")
    p_run.add_argument("--list", action="store_true", help="list benchmark names")
    p_run.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="script arguments after a literal -- (e.g. repro run kernel -- --quick)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="compare strategies under named scenarios, write a JSON ledger"
    )
    p_sweep.add_argument(
        "--scenario",
        action="append",
        required=True,
        help=_scenario_help(),
    )
    p_sweep.add_argument(
        "--scenario-param",
        action="append",
        default=[],
        metavar="K=V",
        help="override a scenario parameter (applies to every --scenario)",
    )
    p_sweep.add_argument("--name", default="scenario_sweep", help="ledger name")
    p_sweep.add_argument("--out", help="ledger path (default benchmarks/results/<name>.json)")
    p_sweep.add_argument("--v", type=int, default=None, help="jobs per random DAG")
    p_sweep.add_argument("--resources", type=int, default=None, help="initial pool size R")
    p_sweep.add_argument("--ccr", type=float, default=1.0)
    p_sweep.add_argument("--out-degree", type=float, default=0.2)
    p_sweep.add_argument("--beta", type=float, default=0.5)
    p_sweep.add_argument("--instances", type=int, default=None, help="instances averaged")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--strategies", default="HEFT,AHEFT,MinMin", help=_strategy_help()
    )
    p_sweep.add_argument("--workers", type=int, default=None, help="parallel case workers")
    p_sweep.add_argument(
        "--quick", action="store_true", help="CI smoke defaults (v=30, R=8, 1 instance)"
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_multi = sub.add_parser(
        "multi",
        help="run concurrent tenant workflow streams on one shared grid",
    )
    p_multi.add_argument("--tenants", type=int, default=4, help="number of tenants")
    p_multi.add_argument(
        "--arrival-rate",
        type=float,
        default=0.005,
        help="Poisson arrival rate per tenant (workflows per time unit)",
    )
    p_multi.add_argument(
        "--scenario",
        action="append",
        default=[],
        help=_scenario_help() + " (default: static)",
    )
    p_multi.add_argument(
        "--scenario-param",
        action="append",
        default=[],
        metavar="K=V",
        help="override a scenario parameter (applies to every --scenario)",
    )
    p_multi.add_argument(
        "--policies",
        default="fifo",
        help="comma-separated interleave policies "
        "(fifo, fair_share, rank_priority, credit_drf)",
    )
    p_multi.add_argument(
        "--strategies",
        default="aheft",
        help=_strategy_help(adaptive_only=True),
    )
    p_multi.add_argument(
        "--admission",
        action="store_true",
        help="put the admission controller in front of the planner "
        "(defer/reject arrivals once the grid saturates)",
    )
    p_multi.add_argument(
        "--stretch-limit",
        type=float,
        default=4.0,
        help="maximum acceptable predicted stretch before deferral",
    )
    p_multi.add_argument(
        "--saturation-threshold",
        type=float,
        default=0.85,
        help="booked fraction of the lookahead window before deferral",
    )
    p_multi.add_argument(
        "--max-deferrals",
        type=int,
        default=4,
        help="failed admission offers before an arrival is rejected",
    )
    p_multi.add_argument(
        "--deadline-factor",
        type=float,
        default=None,
        help="per-workflow deadline = arrival + factor * dedicated span",
    )
    p_multi.add_argument(
        "--slo-stretch",
        type=float,
        default=None,
        help="per-workflow stretch SLO target (violations feed credit scores)",
    )
    p_multi.add_argument("--name", default="multi_tenant", help="ledger name")
    p_multi.add_argument("--out", help="ledger path (default benchmarks/results/<name>.json)")
    p_multi.add_argument("--v", type=int, default=None, help="jobs per random DAG")
    p_multi.add_argument("--resources", type=int, default=None, help="initial pool size R")
    p_multi.add_argument("--parallelism", type=int, default=12, help="application width")
    p_multi.add_argument("--ccr", type=float, default=1.0)
    p_multi.add_argument("--beta", type=float, default=0.5)
    p_multi.add_argument(
        "--max-arrivals", type=int, default=None, help="arrival cap per tenant"
    )
    p_multi.add_argument("--horizon", type=float, default=8000.0)
    p_multi.add_argument("--seed", type=int, default=0)
    p_multi.add_argument(
        "--quick", action="store_true", help="CI smoke defaults (v=16, R=8, 3 arrivals)"
    )
    p_multi.set_defaults(func=_cmd_multi)

    p_mc = sub.add_parser(
        "mc",
        help="Monte Carlo uncertainty sweep: replicated runs under sampled "
        "ground-truth runtimes, write a JSON ledger",
    )
    p_mc.add_argument(
        "--error-model",
        default="resource_bias",
        help=_error_model_help(),
    )
    p_mc.add_argument(
        "--magnitude",
        action="append",
        type=float,
        default=[],
        help="error magnitude (repeatable; default 0.0 0.2 0.4 0.6)",
    )
    p_mc.add_argument(
        "--scenario",
        action="append",
        default=[],
        help=_scenario_help() + " (default: paper)",
    )
    p_mc.add_argument(
        "--strategies", default="HEFT,AHEFT", help=_strategy_help()
    )
    p_mc.add_argument("--name", default="uncertainty", help="ledger name")
    p_mc.add_argument("--out", help="ledger path (default benchmarks/results/<name>.json)")
    p_mc.add_argument("--v", type=int, default=None, help="jobs per random DAG")
    p_mc.add_argument("--resources", type=int, default=None, help="initial pool size R")
    p_mc.add_argument("--ccr", type=float, default=1.0)
    p_mc.add_argument("--out-degree", type=float, default=0.2)
    p_mc.add_argument("--beta", type=float, default=0.5)
    p_mc.add_argument(
        "--instances", type=int, default=None, help="workflow instances per cell"
    )
    p_mc.add_argument(
        "--replications",
        type=int,
        default=None,
        help="independent truth samples per instance",
    )
    p_mc.add_argument("--seed", type=int, default=0)
    p_mc.add_argument("--workers", type=int, default=None, help="parallel case workers")
    p_mc.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke defaults (v=24, R=8, 1 instance, 3 replications)",
    )
    p_mc.set_defaults(func=_cmd_mc)

    p_cmp = sub.add_parser(
        "compare",
        help="compare two JSON ledgers; exit 1 when a metric deviates beyond tolerance",
    )
    p_cmp.add_argument("baseline", help="baseline ledger (committed)")
    p_cmp.add_argument("candidate", help="candidate ledger (freshly generated)")
    p_cmp.add_argument(
        "--tolerance",
        type=float,
        default=1e-6,
        help="default max relative deviation (default 1e-6)",
    )
    p_cmp.add_argument(
        "--key-tolerance",
        action="append",
        default=[],
        metavar="GLOB=FLOAT",
        help="per-key tolerance override (first matching glob wins)",
    )
    p_cmp.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="GLOB",
        help="ignore keys matching this glob (repeatable)",
    )
    p_cmp.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="GLOB",
        help="compare only keys matching one of these globs",
    )
    p_cmp.add_argument(
        "--missing-ok",
        action="store_true",
        help="do not treat keys present in only one ledger as deviations",
    )
    p_cmp.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    parser = _build_parser()
    args = parser.parse_args(raw)
    args.raw_argv = raw
    from repro.scenarios import ScenarioError

    try:
        return args.func(args)
    except (CliError, ScenarioError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
