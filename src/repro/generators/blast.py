"""BLAST workflow generator (paper Fig. 6).

The six-step BLAST workflow from GNARE splits an input genome file into N
blocks, processes every block through two sequential comparative-analysis
steps, and merges the per-block results:

::

    FileBreaker (split)
      ├── block_1:  Blast ──► Parse ──┐
      ├── block_2:  Blast ──► Parse ──┤
      │        ...                    ├──► Assembler (merge)
      └── block_N:  Blast ──► Parse ──┘

With two-way parallelism this is the six-job workflow of the paper's
Fig. 6; the evaluation scales the parallelism N to 200…1000 (Table 5).  The
shape is wide and well balanced, which is why BLAST benefits most from
adaptive rescheduling (§4.3).
"""

from __future__ import annotations

from typing import Optional

from repro.generators.costs import WorkflowCase, build_case
from repro.workflow.dag import Workflow

__all__ = ["generate_blast_workflow", "generate_blast_case"]

#: Operation names of the four unique BLAST executables.
SPLIT_OP = "FileBreaker"
BLAST_OP = "Blast"
PARSE_OP = "Parse"
MERGE_OP = "Assembler"


def generate_blast_workflow(parallelism: int, *, name: Optional[str] = None) -> Workflow:
    """Build the BLAST DAG with ``parallelism`` independent block branches.

    The workflow has ``2·parallelism + 2`` jobs: one splitter, a
    Blast + Parse pair per block and one final assembler.
    """
    if parallelism < 1:
        raise ValueError("parallelism must be at least 1")
    workflow = Workflow(name or f"blast-{parallelism}")
    workflow.add_job("split", operation=SPLIT_OP)
    workflow.add_job("merge", operation=MERGE_OP)
    for branch in range(1, parallelism + 1):
        blast = f"blast_{branch}"
        parse = f"parse_{branch}"
        workflow.add_job(blast, operation=BLAST_OP, branch=branch)
        workflow.add_job(parse, operation=PARSE_OP, branch=branch)
        workflow.add_edge("split", blast, data=0.0)
        workflow.add_edge(blast, parse, data=0.0)
        workflow.add_edge(parse, "merge", data=0.0)
    workflow.validate()
    return workflow


def generate_blast_case(
    parallelism: int,
    *,
    ccr: float = 1.0,
    beta: float = 0.5,
    omega_dag: float = 50.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> WorkflowCase:
    """Generate a priced BLAST case.

    Base computation costs are drawn *per operation* — all Blast jobs share
    one average cost, all Parse jobs another — reflecting that a scientific
    workflow reuses a handful of executables over many data blocks (§4.3).
    """
    workflow = generate_blast_workflow(parallelism, name=name)
    return build_case(
        workflow,
        ccr=ccr,
        beta=beta,
        omega_dag=omega_dag,
        seed=seed,
        per_operation=True,
        params={"generator": "blast", "parallelism": parallelism},
    )
