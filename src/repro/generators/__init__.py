"""Workflow generators used by the paper's evaluation.

* :mod:`~repro.generators.random_dag` — the Topcuoglu-style parametric
  random DAG generator (ν, out_degree, CCR, β) of §4.2,
* :mod:`~repro.generators.blast` — the six-step BLAST workflow shape with
  N-way parallelism (Fig. 6),
* :mod:`~repro.generators.wien2k` — the full-balanced WIEN2K workflow with
  its two parallel LAPW sections joined by ``LAPW2_FERMI`` (Fig. 7),
* :mod:`~repro.generators.montage` — a Montage-shaped workflow (named in
  §4.3 as another well-balanced application; extension),
* :mod:`~repro.generators.sample` — the worked 10-job example of Fig. 4
  (the classic HEFT example plus a fourth resource joining at t=15),
* :mod:`~repro.generators.costs` — cost assignment shared by all
  generators (ω_DAG, β heterogeneity, CCR-calibrated edge data).
"""

from repro.generators.costs import WorkflowCase, assign_edge_data, build_case, draw_base_costs
from repro.generators.random_dag import RandomDAGParameters, generate_random_dag, generate_random_case
from repro.generators.blast import generate_blast_workflow, generate_blast_case
from repro.generators.wien2k import generate_wien2k_workflow, generate_wien2k_case
from repro.generators.montage import generate_montage_workflow, generate_montage_case
from repro.generators.sample import (
    sample_dag_workflow,
    sample_dag_cost_model,
    sample_dag_pool,
    sample_dag_case,
)

__all__ = [
    "WorkflowCase",
    "assign_edge_data",
    "build_case",
    "draw_base_costs",
    "RandomDAGParameters",
    "generate_random_dag",
    "generate_random_case",
    "generate_blast_workflow",
    "generate_blast_case",
    "generate_wien2k_workflow",
    "generate_wien2k_case",
    "generate_montage_workflow",
    "generate_montage_case",
    "sample_dag_workflow",
    "sample_dag_cost_model",
    "sample_dag_pool",
    "sample_dag_case",
]
