"""The worked example of paper Fig. 4/5.

The sample DAG is the classic 10-job HEFT example (Topcuoglu et al., Fig. 2
of the HEFT paper) extended with a fourth resource column, exactly as the
paper's Fig. 4 tabulates it.  Resources ``r1``–``r3`` are available from the
start; ``r4`` joins the grid at time 15.

The paper reports: traditional HEFT produces a schedule with makespan 80 on
``r1``–``r3``; AHEFT, rescheduling when ``r4`` appears at t=15, reduces the
makespan to 76 (Fig. 5).  The regression tests and the
``bench_fig5_sample_dag`` benchmark reproduce both numbers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.generators.costs import WorkflowCase
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.workflow.costs import TabularCostModel
from repro.workflow.dag import Workflow

__all__ = [
    "sample_dag_workflow",
    "sample_dag_cost_model",
    "sample_dag_pool",
    "sample_dag_case",
    "SAMPLE_COMPUTATION_COSTS",
    "SAMPLE_EDGES",
    "R4_JOIN_TIME",
]

#: Time at which the fourth resource appears (paper Fig. 5(b)).
R4_JOIN_TIME = 15.0

#: Computation cost of each job on each resource (paper Fig. 4, right table).
SAMPLE_COMPUTATION_COSTS: Dict[str, Dict[str, float]] = {
    "n1": {"r1": 14, "r2": 16, "r3": 9, "r4": 14},
    "n2": {"r1": 13, "r2": 19, "r3": 18, "r4": 17},
    "n3": {"r1": 11, "r2": 13, "r3": 19, "r4": 14},
    "n4": {"r1": 13, "r2": 8, "r3": 17, "r4": 15},
    "n5": {"r1": 12, "r2": 13, "r3": 10, "r4": 14},
    "n6": {"r1": 13, "r2": 16, "r3": 9, "r4": 16},
    "n7": {"r1": 7, "r2": 15, "r3": 11, "r4": 15},
    "n8": {"r1": 5, "r2": 11, "r3": 14, "r4": 20},
    "n9": {"r1": 18, "r2": 12, "r3": 20, "r4": 13},
    "n10": {"r1": 21, "r2": 7, "r3": 16, "r4": 15},
}

#: Edges of the sample DAG with their communication costs (paper Fig. 4, left).
SAMPLE_EDGES: Tuple[Tuple[str, str, float], ...] = (
    ("n1", "n2", 18),
    ("n1", "n3", 12),
    ("n1", "n4", 9),
    ("n1", "n5", 11),
    ("n1", "n6", 14),
    ("n2", "n8", 19),
    ("n2", "n9", 16),
    ("n3", "n7", 23),
    ("n4", "n8", 27),
    ("n4", "n9", 23),
    ("n5", "n9", 13),
    ("n6", "n8", 15),
    ("n7", "n10", 17),
    ("n8", "n10", 11),
    ("n9", "n10", 13),
)


def sample_dag_workflow() -> Workflow:
    """The 10-job sample DAG of paper Fig. 4."""
    workflow = Workflow("sample-fig4")
    for job_id in SAMPLE_COMPUTATION_COSTS:
        workflow.add_job(job_id)
    for src, dst, cost in SAMPLE_EDGES:
        workflow.add_edge(src, dst, data=float(cost))
    workflow.validate()
    return workflow


def sample_dag_cost_model(workflow: Workflow | None = None) -> TabularCostModel:
    """The tabulated cost model of paper Fig. 4 (all four resources)."""
    workflow = workflow or sample_dag_workflow()
    return TabularCostModel(workflow, SAMPLE_COMPUTATION_COSTS)


def sample_dag_pool(*, r4_join_time: float = R4_JOIN_TIME) -> ResourcePool:
    """Three initial resources plus ``r4`` joining at ``r4_join_time``."""
    pool = ResourcePool()
    pool.add(Resource("r1"))
    pool.add(Resource("r2"))
    pool.add(Resource("r3"))
    pool.add(Resource("r4", available_from=r4_join_time))
    return pool


def sample_dag_case() -> WorkflowCase:
    """The sample DAG bundled as a :class:`WorkflowCase`."""
    workflow = sample_dag_workflow()
    return WorkflowCase(
        workflow=workflow,
        costs=sample_dag_cost_model(workflow),
        params={"generator": "sample-fig4", "r4_join_time": R4_JOIN_TIME},
    )
