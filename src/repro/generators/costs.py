"""Cost assignment shared by every workflow generator.

The paper's heterogeneous computation model (§4.2, following Topcuoglu et
al.):

* the DAG has an average computation cost ``ω_DAG``;
* each job's average cost ``ω_i`` is drawn from ``U[0, 2·ω_DAG]``;
* the cost of job *i* on resource *j* is drawn from
  ``U[ω_i(1-β/2), ω_i(1+β/2)]`` — handled by
  :class:`~repro.workflow.costs.HeterogeneousCostModel`;
* edge data volumes are drawn so the workflow's average communication cost
  equals ``CCR · ω_DAG`` (data-intensive workflows have a high CCR).

Scientific applications are built from a handful of unique operations
(§4.3), so generators may request *per-operation* base costs: every job of
one operation shares the same ``ω``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.utils.rng import spawn_rng
from repro.workflow.costs import CostModel, HeterogeneousCostModel
from repro.workflow.dag import Workflow

__all__ = ["WorkflowCase", "draw_base_costs", "assign_edge_data", "build_case"]


@dataclass
class WorkflowCase:
    """A generated experiment case: a DAG plus its cost model.

    ``params`` records the generator parameters so experiment reports can
    group cases by (ν, CCR, β, …).
    """

    workflow: Workflow
    costs: CostModel
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def num_jobs(self) -> int:
        return self.workflow.num_jobs

    def describe(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.workflow.name}({rendered})"


def draw_base_costs(
    workflow: Workflow,
    *,
    omega_dag: float,
    seed: int,
    per_operation: bool = False,
    minimum: float = 1.0,
) -> Dict[str, float]:
    """Draw ``ω_i`` for every job from ``U[0, 2·ω_DAG]``.

    A small floor (``minimum``) keeps zero-cost jobs out of the generated
    cases — a zero-duration job makes ranks degenerate and never occurs in
    real workloads.  With ``per_operation=True`` all jobs sharing an
    operation name share one draw.
    """
    if omega_dag <= 0:
        raise ValueError("omega_dag must be positive")
    base: Dict[str, float] = {}
    if per_operation:
        per_op: Dict[str, float] = {}
        for operation in workflow.operations():
            rng = spawn_rng(seed, "op-cost", operation)
            per_op[operation] = max(minimum, float(rng.uniform(0.0, 2.0 * omega_dag)))
        for job in workflow.jobs:
            base[job] = per_op[workflow.job(job).operation]
    else:
        for job in workflow.jobs:
            rng = spawn_rng(seed, "job-cost", job)
            base[job] = max(minimum, float(rng.uniform(0.0, 2.0 * omega_dag)))
    return base


def assign_edge_data(
    workflow: Workflow,
    *,
    ccr: float,
    omega_dag: float,
    seed: int,
    bandwidth: float = 1.0,
    per_operation: bool = False,
) -> None:
    """Set edge data volumes so the average communication cost is ``CCR·ω_DAG``.

    Individual volumes are drawn from ``U[0, 2·CCR·ω_DAG·bandwidth]`` (mean
    ``CCR·ω_DAG·bandwidth``), or shared per (producer-operation,
    consumer-operation) pair when ``per_operation`` is set.
    """
    if ccr < 0:
        raise ValueError("ccr must be non-negative")
    mean_data = ccr * omega_dag * bandwidth
    if per_operation:
        pair_data: Dict[tuple, float] = {}
        for src, dst, _ in workflow.edges():
            pair = (workflow.job(src).operation, workflow.job(dst).operation)
            if pair not in pair_data:
                rng = spawn_rng(seed, "op-data", *pair)
                pair_data[pair] = float(rng.uniform(0.0, 2.0 * mean_data))
            workflow.set_data(src, dst, pair_data[pair])
    else:
        for src, dst, _ in workflow.edges():
            rng = spawn_rng(seed, "edge-data", src, dst)
            workflow.set_data(src, dst, float(rng.uniform(0.0, 2.0 * mean_data)))


def build_case(
    workflow: Workflow,
    *,
    ccr: float,
    beta: float,
    omega_dag: float = 50.0,
    seed: int = 0,
    bandwidth: float = 1.0,
    latency: float = 0.0,
    per_operation: bool = False,
    params: Optional[Mapping[str, object]] = None,
) -> WorkflowCase:
    """Price a generated DAG: draw base costs, calibrate data to the CCR.

    Returns a :class:`WorkflowCase` bundling the workflow, its
    :class:`~repro.workflow.costs.HeterogeneousCostModel` and the generator
    parameters.
    """
    base = draw_base_costs(
        workflow, omega_dag=omega_dag, seed=seed, per_operation=per_operation
    )
    assign_edge_data(
        workflow,
        ccr=ccr,
        omega_dag=omega_dag,
        seed=seed,
        bandwidth=bandwidth,
        per_operation=per_operation,
    )
    costs = HeterogeneousCostModel(
        workflow,
        base,
        beta=beta,
        bandwidth=bandwidth,
        latency=latency,
        seed=seed,
    )
    case_params: Dict[str, object] = {
        "v": workflow.num_jobs,
        "ccr": ccr,
        "beta": beta,
        "omega_dag": omega_dag,
        "seed": seed,
    }
    if params:
        case_params.update(params)
    return WorkflowCase(workflow=workflow, costs=costs, params=case_params)
