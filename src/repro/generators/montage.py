"""Montage workflow generator.

Montage (astronomical image mosaicking) is named by the paper (§4.3)
alongside BLAST and WIEN2K as a well-balanced, highly parallel scientific
workflow built from a small set of unique executables (11 in the real
system).  It is included as an extension workload for the harness; the
shape follows the standard Montage structure:

::

    { mProject_i }  (N parallel re-projections)
        → { mDiffFit_j }  (overlap fits, ~N parallel)
            → mConcatFit → mBgModel
                → { mBackground_i }  (N parallel corrections)
                    → mImgtbl → mAdd → mShrink → mJPEG
"""

from __future__ import annotations

from typing import Optional

from repro.generators.costs import WorkflowCase, build_case
from repro.workflow.dag import Workflow

__all__ = ["generate_montage_workflow", "generate_montage_case"]


def generate_montage_workflow(parallelism: int, *, name: Optional[str] = None) -> Workflow:
    """Build a Montage-shaped DAG with ``parallelism`` input images."""
    if parallelism < 2:
        raise ValueError("parallelism must be at least 2")
    workflow = Workflow(name or f"montage-{parallelism}")

    projects = []
    for i in range(1, parallelism + 1):
        job_id = f"mproject_{i}"
        workflow.add_job(job_id, operation="mProject", image=i)
        projects.append(job_id)

    # overlap fits: neighbouring projections pairwise (ring of N overlaps)
    difffits = []
    for i in range(1, parallelism + 1):
        job_id = f"mdifffit_{i}"
        workflow.add_job(job_id, operation="mDiffFit", overlap=i)
        difffits.append(job_id)
        left = projects[i - 1]
        right = projects[i % parallelism]
        workflow.add_edge(left, job_id, data=0.0)
        if right != left:
            workflow.add_edge(right, job_id, data=0.0)

    workflow.add_job("mconcatfit", operation="mConcatFit")
    for job_id in difffits:
        workflow.add_edge(job_id, "mconcatfit", data=0.0)

    workflow.add_job("mbgmodel", operation="mBgModel")
    workflow.add_edge("mconcatfit", "mbgmodel", data=0.0)

    backgrounds = []
    for i in range(1, parallelism + 1):
        job_id = f"mbackground_{i}"
        workflow.add_job(job_id, operation="mBackground", image=i)
        backgrounds.append(job_id)
        workflow.add_edge("mbgmodel", job_id, data=0.0)
        workflow.add_edge(projects[i - 1], job_id, data=0.0)

    tail = ["mimgtbl", "madd", "mshrink", "mjpeg"]
    operations = ["mImgtbl", "mAdd", "mShrink", "mJPEG"]
    for job_id, op in zip(tail, operations):
        workflow.add_job(job_id, operation=op)
    for job_id in backgrounds:
        workflow.add_edge(job_id, tail[0], data=0.0)
    for first, second in zip(tail, tail[1:]):
        workflow.add_edge(first, second, data=0.0)

    workflow.validate()
    return workflow


def generate_montage_case(
    parallelism: int,
    *,
    ccr: float = 1.0,
    beta: float = 0.5,
    omega_dag: float = 50.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> WorkflowCase:
    """Generate a priced Montage case (per-operation base costs)."""
    workflow = generate_montage_workflow(parallelism, name=name)
    return build_case(
        workflow,
        ccr=ccr,
        beta=beta,
        omega_dag=omega_dag,
        seed=seed,
        per_operation=True,
        params={"generator": "montage", "parallelism": parallelism},
    )
