"""WIEN2K workflow generator (paper Fig. 7).

WIEN2k is a quantum-chemistry application whose workflow contains two
parallel sections, ``LAPW1`` and ``LAPW2``, each with N parallel k-point
tasks.  Crucially, the single job ``LAPW2_FERMI`` sits between the two
sections: no ``LAPW2`` task can start before it finishes, which throttles
the DAG's effective parallelism — the reason the paper finds WIEN2K gains
much less from adaptive rescheduling than BLAST (§4.3).

The full-balanced DAG used in the paper (equal parallelism in both
sections) is::

    StageIn → LAPW0 → { LAPW1_K1 … LAPW1_KN } → LAPW2_FERMI
            → { LAPW2_K1 … LAPW2_KN } → SumPara → LCore → Mixer
            → Converged → StageOut

giving ``2·N + 8`` jobs.
"""

from __future__ import annotations

from typing import Optional

from repro.generators.costs import WorkflowCase, build_case
from repro.workflow.dag import Workflow

__all__ = ["generate_wien2k_workflow", "generate_wien2k_case"]

#: The tail of sequential jobs after the second parallel section.
_TAIL_OPS = ["SumPara", "LCore", "Mixer", "Converged", "StageOut"]


def generate_wien2k_workflow(parallelism: int, *, name: Optional[str] = None) -> Workflow:
    """Build the full-balanced WIEN2K DAG with ``parallelism`` k-points."""
    if parallelism < 1:
        raise ValueError("parallelism must be at least 1")
    workflow = Workflow(name or f"wien2k-{parallelism}")
    workflow.add_job("stagein", operation="StageIn")
    workflow.add_job("lapw0", operation="LAPW0")
    workflow.add_edge("stagein", "lapw0", data=0.0)

    workflow.add_job("lapw2_fermi", operation="LAPW2_FERMI")
    for k in range(1, parallelism + 1):
        lapw1 = f"lapw1_k{k}"
        workflow.add_job(lapw1, operation="LAPW1", k=k)
        workflow.add_edge("lapw0", lapw1, data=0.0)
        workflow.add_edge(lapw1, "lapw2_fermi", data=0.0)

    tail_ids = []
    for op in _TAIL_OPS:
        job_id = op.lower()
        workflow.add_job(job_id, operation=op)
        tail_ids.append(job_id)

    for k in range(1, parallelism + 1):
        lapw2 = f"lapw2_k{k}"
        workflow.add_job(lapw2, operation="LAPW2", k=k)
        workflow.add_edge("lapw2_fermi", lapw2, data=0.0)
        workflow.add_edge(lapw2, tail_ids[0], data=0.0)

    for first, second in zip(tail_ids, tail_ids[1:]):
        workflow.add_edge(first, second, data=0.0)

    workflow.validate()
    return workflow


def generate_wien2k_case(
    parallelism: int,
    *,
    ccr: float = 1.0,
    beta: float = 0.5,
    omega_dag: float = 50.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> WorkflowCase:
    """Generate a priced WIEN2K case (per-operation base costs)."""
    workflow = generate_wien2k_workflow(parallelism, name=name)
    return build_case(
        workflow,
        ccr=ccr,
        beta=beta,
        omega_dag=omega_dag,
        seed=seed,
        per_operation=True,
        params={"generator": "wien2k", "parallelism": parallelism},
    )
