"""Parametric random DAG generator (paper §4.2, following Topcuoglu et al.).

The generator is driven by the four structural parameters the paper lists:

* ``v`` — number of jobs,
* ``out_degree`` — maximum out-edges of a node, expressed as a fraction of
  the total number of nodes,
* ``ccr`` — communication-to-computation ratio,
* ``beta`` — resource heterogeneity factor,

plus a shape factor ``alpha`` (as in the original HEFT test-bench): the DAG
has roughly ``sqrt(v)/alpha`` levels of roughly ``sqrt(v)*alpha`` jobs each,
so ``alpha > 1`` yields short/wide (highly parallel) DAGs and ``alpha < 1``
tall/narrow ones.

Every non-entry job receives at least one predecessor from an earlier level
and every non-exit job at least one successor, so the generated graph is a
connected DAG exercising both fan-out and join structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.generators.costs import WorkflowCase, build_case
from repro.utils.rng import spawn_rng
from repro.workflow.dag import Workflow

__all__ = ["RandomDAGParameters", "generate_random_dag", "generate_random_case"]


@dataclass(frozen=True)
class RandomDAGParameters:
    """Parameter bundle for one random DAG type (one cell of Table 2)."""

    v: int = 40
    out_degree: float = 0.2
    ccr: float = 1.0
    beta: float = 0.5
    alpha: float = 1.0
    omega_dag: float = 50.0

    def __post_init__(self) -> None:
        if self.v < 2:
            raise ValueError("v must be at least 2")
        if not 0 < self.out_degree <= 1:
            raise ValueError("out_degree must be in (0, 1]")
        if self.ccr < 0:
            raise ValueError("ccr must be non-negative")
        if not 0 <= self.beta <= 2:
            raise ValueError("beta must be in [0, 2]")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.omega_dag <= 0:
            raise ValueError("omega_dag must be positive")


def _level_sizes(v: int, alpha: float, rng: np.random.Generator) -> List[int]:
    """Split ``v`` jobs into levels of mean width ``sqrt(v)*alpha``."""
    mean_width = max(1.0, math.sqrt(v) * alpha)
    sizes: List[int] = []
    remaining = v
    while remaining > 0:
        width = int(rng.integers(1, int(2 * mean_width) + 1))
        width = max(1, min(width, remaining))
        sizes.append(width)
        remaining -= width
    if len(sizes) == 1 and v > 1:
        # make sure there is at least one precedence level
        first = max(1, sizes[0] // 2)
        sizes = [first, sizes[0] - first]
    return sizes


def generate_random_dag(
    params: RandomDAGParameters,
    *,
    seed: int = 0,
    name: Optional[str] = None,
) -> Workflow:
    """Generate the DAG structure (no costs) for one random case."""
    rng = spawn_rng(seed, "random-dag", params.v, params.out_degree, params.alpha)
    workflow = Workflow(name or f"random-v{params.v}")
    sizes = _level_sizes(params.v, params.alpha, rng)

    levels: List[List[str]] = []
    counter = 0
    for level_index, size in enumerate(sizes):
        level_jobs = []
        for _ in range(size):
            counter += 1
            job_id = f"n{counter}"
            workflow.add_job(job_id, operation=f"op{level_index % 7}")
            level_jobs.append(job_id)
        levels.append(level_jobs)

    max_out = max(1, int(round(params.out_degree * params.v)))
    out_count: Dict[str, int] = {job: 0 for job in workflow.jobs}

    # every non-entry job gets at least one predecessor from the previous level
    for level_index in range(1, len(levels)):
        previous = levels[level_index - 1]
        for job in levels[level_index]:
            candidates = [p for p in previous if out_count[p] < max_out]
            pick_from = candidates or previous
            pred = pick_from[int(rng.integers(0, len(pick_from)))]
            workflow.add_edge(pred, job, data=0.0)
            out_count[pred] += 1

    # extra forward edges up to the out-degree budget
    for level_index, level_jobs in enumerate(levels[:-1]):
        later = [job for lvl in levels[level_index + 1 :] for job in lvl]
        for job in level_jobs:
            budget = max_out - out_count[job]
            if budget <= 0 or not later:
                continue
            extra = int(rng.integers(0, budget + 1))
            if extra == 0:
                continue
            targets = rng.choice(len(later), size=min(extra, len(later)), replace=False)
            for target_index in np.atleast_1d(targets):
                target = later[int(target_index)]
                if target in workflow.successors(job):
                    continue
                workflow.add_edge(job, target, data=0.0)
                out_count[job] += 1

    # every non-exit job needs at least one successor
    last_level = set(levels[-1])
    for level_index, level_jobs in enumerate(levels[:-1]):
        next_level = levels[level_index + 1]
        for job in level_jobs:
            if job in last_level or workflow.successors(job):
                continue
            succ = next_level[int(rng.integers(0, len(next_level)))]
            if succ not in workflow.successors(job):
                workflow.add_edge(job, succ, data=0.0)
                out_count[job] += 1

    workflow.validate()
    return workflow


def generate_random_case(
    params: RandomDAGParameters,
    *,
    seed: int = 0,
    instance: int = 0,
    name: Optional[str] = None,
) -> WorkflowCase:
    """Generate one priced random case (DAG + cost model).

    ``instance`` distinguishes the repeated instances of one DAG *type*
    (the paper generates 10 instances per parameter combination).
    """
    case_seed = int(spawn_rng(seed, "case", params.v, params.out_degree, params.ccr,
                              params.beta, instance).integers(0, 2**62))
    workflow = generate_random_dag(params, seed=case_seed, name=name)
    return build_case(
        workflow,
        ccr=params.ccr,
        beta=params.beta,
        omega_dag=params.omega_dag,
        seed=case_seed,
        params={
            "generator": "random",
            "out_degree": params.out_degree,
            "alpha": params.alpha,
            "instance": instance,
        },
    )
