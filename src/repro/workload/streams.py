"""Arrival streams of heterogeneous workflows for concurrent tenants.

A *tenant* is one user (or virtual organisation) submitting workflows to
the shared grid.  Its :class:`TenantSpec` describes

* **when** workflows arrive — a Poisson process of rate ``arrival_rate``
  (exponential inter-arrival gaps), or an explicit ``trace`` of arrival
  times replayed verbatim (e.g. recorded from a production log), and
* **what** arrives — a ``mix`` of workload kinds with selection weights:
  parametric random DAGs and the BLAST / WIEN2K / Montage application
  shapes, priced with the tenant's CCR / β / ω_DAG settings.

Determinism: every random draw derives from ``(seed, tenant, purpose, …)``
via :func:`~repro.utils.rng.spawn_rng`, so a stream is reproducible from
``(specs, seed)`` alone — independent of tenant order or how many other
tenants exist, which keeps sweep points comparable when the tenant count is
the swept parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.generators.blast import generate_blast_case
from repro.generators.costs import WorkflowCase
from repro.generators.montage import generate_montage_case
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.generators.wien2k import generate_wien2k_case
from repro.utils.rng import spawn_rng

__all__ = [
    "TenantSpec",
    "WorkflowArrival",
    "WorkloadStream",
    "default_tenants",
    "poisson_arrival_times",
]

#: workload kinds a tenant mix may reference
WORKLOAD_KINDS = ("random", "blast", "wien2k", "montage")

#: default mix: mostly parametric random DAGs with an application tail
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("random", 0.55),
    ("blast", 0.15),
    ("wien2k", 0.15),
    ("montage", 0.15),
)


def poisson_arrival_times(
    rate: float,
    *,
    horizon: float,
    max_arrivals: int,
    rng: np.random.Generator,
) -> List[float]:
    """Arrival times of a Poisson process of ``rate`` events per time unit.

    Exponential inter-arrival gaps are drawn until either ``max_arrivals``
    events were produced or the horizon is passed.  ``rate <= 0`` yields an
    empty stream.
    """
    if rate <= 0 or max_arrivals <= 0:
        return []
    times: List[float] = []
    clock = 0.0
    while len(times) < max_arrivals:
        clock += float(rng.exponential(1.0 / rate))
        if clock > horizon:
            break
        times.append(clock)
    return times


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the shared grid.

    Parameters
    ----------
    name:
        Tenant identifier (also the fair-share accounting key).
    arrival_rate:
        Poisson rate λ (workflows per logical time unit).  Ignored when a
        ``trace`` is given.
    trace:
        Explicit arrival times to replay instead of the Poisson process
        (must be non-negative and non-decreasing).
    mix:
        ``(kind, weight)`` pairs over :data:`WORKLOAD_KINDS`; one kind is
        drawn per arrival, proportionally to the weights.
    weight:
        Fair-share weight — tenants with a larger weight are entitled to
        proportionally more of the grid under the ``fair_share`` policy.
    max_arrivals:
        Upper bound on this tenant's Poisson arrivals (bounds run time; the
        clamp is deterministic).
    v, out_degree, parallelism, ccr, beta, omega_dag:
        Workload sizing: random DAGs use ``v``/``out_degree``, applications
        use ``parallelism``; all cases are priced with ``ccr``/``beta``/
        ``omega_dag``.
    deadline_factor:
        Optional service target: each workflow's completion deadline is
        ``arrival + deadline_factor * dedicated_span`` (the span it would
        need alone on the pool it arrived to).  ``None`` = no deadline.
    slo_stretch:
        Optional stretch SLO: a completion whose achieved stretch exceeds
        this value counts as an SLO violation.  ``None`` = no SLO.

    Deadlines and SLOs are *targets*, not constraints — the planner never
    refuses a booking over them, but violations feed the tenant's credit
    score (:mod:`repro.core.credit`) and the run's violation metrics.
    """

    name: str
    arrival_rate: float = 0.005
    trace: Tuple[float, ...] = ()
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    weight: float = 1.0
    max_arrivals: int = 6
    v: int = 24
    out_degree: float = 0.2
    parallelism: int = 12
    ccr: float = 1.0
    beta: float = 0.5
    omega_dag: float = 300.0
    deadline_factor: Optional[float] = None
    slo_stretch: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.deadline_factor is not None and self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")
        if self.slo_stretch is not None and self.slo_stretch < 1.0:
            raise ValueError("slo_stretch must be at least 1.0")
        if not self.mix:
            raise ValueError("mix must name at least one workload kind")
        for kind, share in self.mix:
            if kind not in WORKLOAD_KINDS:
                raise ValueError(
                    f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}"
                )
            if share < 0:
                raise ValueError("mix weights must be non-negative")
        if sum(share for _, share in self.mix) <= 0:
            raise ValueError("mix weights must sum to a positive value")
        last = 0.0
        for time in self.trace:
            if time < last:
                raise ValueError("trace arrival times must be non-decreasing")
            last = time

    def arrival_times(self, *, seed: int, horizon: float) -> List[float]:
        """This tenant's arrival times (trace replay or Poisson draw)."""
        if self.trace:
            return [float(t) for t in self.trace if t <= horizon]
        rng = spawn_rng(seed, "arrivals", self.name)
        return poisson_arrival_times(
            self.arrival_rate, horizon=horizon, max_arrivals=self.max_arrivals, rng=rng
        )

    def draw_kind(self, index: int, *, seed: int) -> str:
        """The workload kind of this tenant's ``index``-th arrival."""
        kinds = [kind for kind, _ in self.mix]
        weights = np.asarray([share for _, share in self.mix], dtype=float)
        weights = weights / weights.sum()
        rng = spawn_rng(seed, "mix", self.name, index)
        return kinds[int(rng.choice(len(kinds), p=weights))]

    def build_case(self, kind: str, index: int, *, seed: int) -> WorkflowCase:
        """Generate and price the ``index``-th workflow of the given kind."""
        case_seed = int(
            spawn_rng(seed, "case", self.name, index, kind).integers(0, 2**62)
        )
        if kind == "random":
            params = RandomDAGParameters(
                v=self.v,
                out_degree=self.out_degree,
                ccr=self.ccr,
                beta=self.beta,
                omega_dag=self.omega_dag,
            )
            return generate_random_case(params, seed=case_seed, instance=index)
        generator = {
            "blast": generate_blast_case,
            "wien2k": generate_wien2k_case,
            "montage": generate_montage_case,
        }[kind]
        return generator(
            self.parallelism,
            ccr=self.ccr,
            beta=self.beta,
            omega_dag=self.omega_dag,
            seed=case_seed,
        )


@dataclass(frozen=True)
class WorkflowArrival:
    """One workflow arriving at the shared grid.

    ``seq`` is the position in the merged chronological stream — the FIFO
    submission order the scheduling policies break ties with.
    """

    tenant: str
    index: int
    time: float
    kind: str
    case: WorkflowCase
    seq: int = 0
    #: service targets inherited from the tenant spec (``None`` = none)
    deadline_factor: Optional[float] = None
    slo_stretch: Optional[float] = None

    @property
    def key(self) -> str:
        """Globally unique workflow identifier, e.g. ``"t1/0"``."""
        return f"{self.tenant}/{self.index}"


@dataclass
class WorkloadStream:
    """A deterministic merged arrival stream over several tenants."""

    tenants: Sequence[TenantSpec]
    seed: int = 0
    horizon: float = 8000.0

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    def tenant(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(f"unknown tenant {name!r}")

    def weights(self) -> Dict[str, float]:
        return {spec.name: spec.weight for spec in self.tenants}

    def arrivals(self) -> List[WorkflowArrival]:
        """The merged stream, sorted by (time, tenant, index).

        Workflows arriving at time 0 are allowed (a trace may start with
        0.0) and are planned before any grid event fires.
        """
        merged: List[WorkflowArrival] = []
        for spec in self.tenants:
            times = spec.arrival_times(seed=self.seed, horizon=self.horizon)
            for index, time in enumerate(times):
                kind = spec.draw_kind(index, seed=self.seed)
                case = spec.build_case(kind, index, seed=self.seed)
                merged.append(
                    WorkflowArrival(
                        tenant=spec.name,
                        index=index,
                        time=time,
                        kind=kind,
                        case=case,
                        deadline_factor=spec.deadline_factor,
                        slo_stretch=spec.slo_stretch,
                    )
                )
        merged.sort(key=lambda a: (a.time, a.tenant, a.index))
        return [
            WorkflowArrival(
                tenant=a.tenant,
                index=a.index,
                time=a.time,
                kind=a.kind,
                case=a.case,
                seq=seq,
                deadline_factor=a.deadline_factor,
                slo_stretch=a.slo_stretch,
            )
            for seq, a in enumerate(merged)
        ]


def default_tenants(
    count: int,
    *,
    arrival_rate: float = 0.005,
    max_arrivals: int = 6,
    v: int = 24,
    parallelism: int = 12,
    ccr: float = 1.0,
    beta: float = 0.5,
    omega_dag: float = 300.0,
    deadline_factor: Optional[float] = None,
    slo_stretch: Optional[float] = None,
) -> List[TenantSpec]:
    """``count`` tenants named ``t1..tN`` with staggered workload mixes.

    Tenant ``t1`` submits the default mixed workload; subsequent tenants
    rotate the mix emphasis (random-heavy, BLAST-heavy, WIEN2K-heavy,
    Montage-heavy) so a multi-tenant run always exercises heterogeneous
    DAG shapes competing for the same resources.
    """
    if count <= 0:
        raise ValueError("tenant count must be positive")
    emphases: List[Tuple[Tuple[str, float], ...]] = [
        DEFAULT_MIX,
        (("random", 0.70), ("blast", 0.30)),
        (("blast", 0.40), ("wien2k", 0.40), ("random", 0.20)),
        (("montage", 0.50), ("random", 0.50)),
    ]
    return [
        TenantSpec(
            name=f"t{i + 1}",
            arrival_rate=arrival_rate,
            mix=emphases[i % len(emphases)],
            max_arrivals=max_arrivals,
            v=v,
            parallelism=parallelism,
            ccr=ccr,
            beta=beta,
            omega_dag=omega_dag,
            deadline_factor=deadline_factor,
            slo_stretch=slo_stretch,
        )
        for i in range(count)
    ]
