"""Multi-tenant workload generation.

The paper evaluates one workflow at a time; a production grid serves many
users at once.  This package models that dimension:

* :class:`~repro.workload.streams.TenantSpec` — one tenant: a fair-share
  weight, a workload *mix* (random DAGs and BLAST / WIEN2K / Montage
  applications), and an arrival process (Poisson, or an explicit
  trace replay),
* :class:`~repro.workload.streams.WorkloadStream` — turns tenant specs
  into a deterministic, chronologically merged stream of
  :class:`~repro.workload.streams.WorkflowArrival` values, each carrying a
  fully priced :class:`~repro.generators.costs.WorkflowCase`.

The stream is consumed by
:class:`~repro.simulation.shared_grid.SharedGridExecutor`, where every
tenant books slots on the *same* resource timelines.
"""

from repro.workload.streams import (
    TenantSpec,
    WorkflowArrival,
    WorkloadStream,
    default_tenants,
    poisson_arrival_times,
)

__all__ = [
    "TenantSpec",
    "WorkflowArrival",
    "WorkloadStream",
    "default_tenants",
    "poisson_arrival_times",
]
