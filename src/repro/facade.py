"""The one public entry point: ``repro.run(...)`` -> :class:`RunResult`.

Every execution mode of the reproduction — the paper's three head-to-head
strategies and the multi-tenant shared grid — is reachable through a
single call:

>>> import repro
>>> result = repro.run(workflow, pool, costs=costs, mode="adaptive")
... # doctest: +SKIP
>>> result.makespan, result.rescheduling_count            # doctest: +SKIP

``mode`` selects the execution path, every path running on the shared
discrete-event core (:mod:`repro.simulation.event_core`):

``"static"``
    plan once at t=0; simulate only when something can surprise the plan,
``"adaptive"``
    the paper's Fig. 2 replanning loop (AHEFT by default),
``"dynamic"``
    just-in-time batch mapping (Min-Min by default),
``"multi"``
    a multi-tenant arrival stream on one shared pool.

Components are addressed by registry name (:mod:`repro.registry`):
``strategy`` and ``error_model`` accept either a registered name or a
ready-made object, ``scenario`` a name or a
:class:`~repro.scenarios.base.Scenario` — a scenario is materialised into
the pool and performance profile, so ``pool`` is then replaced by the
``resources`` initial size.  Remaining keyword ``options`` are forwarded
verbatim to the underlying runner (``simulate=``, ``history=``,
``accept_only_if_better=``, ``policy=``, ``tenant_weights=``,
``admission=`` for overload control in multi mode, …).

The returned :class:`RunResult` is a uniform view — ``schedule``,
``trace``, ``outcomes``, ``decisions``, ``metrics`` and the headline
numbers — over the mode-specific result object, which stays available as
``result.raw`` (an :class:`~repro.core.adaptive.AdaptiveRunResult` or a
:class:`~repro.simulation.shared_grid.SharedGridResult`, bit-identical to
what the legacy runners returned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import _deprecation, registry

__all__ = ["MODES", "RunResult", "run"]

#: the execution modes understood by :func:`run`
MODES = ("static", "adaptive", "dynamic", "multi")


@dataclass(frozen=True)
class RunResult:
    """Uniform result protocol over every execution mode.

    ``raw`` is the mode-specific result (``AdaptiveRunResult`` for
    single-workflow modes, ``SharedGridResult`` for ``"multi"``); all
    other accessors are derived views so callers can stay mode-agnostic.
    """

    mode: str
    strategy: str
    raw: object

    # -- uniform views --------------------------------------------------
    @property
    def schedule(self):
        """The final schedule (``None`` in multi mode — see ``outcomes``)."""
        return getattr(self.raw, "final_schedule", None)

    @property
    def trace(self):
        """The execution trace, when the run was simulated."""
        return getattr(self.raw, "trace", None)

    @property
    def outcomes(self) -> List:
        """Per-workflow outcomes (multi mode; empty otherwise)."""
        return list(getattr(self.raw, "outcomes", ()) or ())

    @property
    def decisions(self) -> List:
        """Every rescheduling decision taken during the run."""
        if self.mode == "multi":
            return [
                decision
                for outcome in self.raw.outcomes
                for decision in outcome.decisions
            ]
        return list(self.raw.decisions)

    # -- headline numbers -----------------------------------------------
    @property
    def makespan(self) -> float:
        value = self.raw.makespan
        return value() if callable(value) else value

    @property
    def rescheduling_count(self) -> int:
        if self.mode == "multi":
            return sum(outcome.reschedule_count for outcome in self.raw.outcomes)
        return self.raw.rescheduling_count

    @property
    def wasted_work(self) -> float:
        if self.mode == "multi":
            return self.raw.total_wasted_work()
        return self.raw.wasted_work

    @property
    def killed_jobs(self) -> int:
        if self.mode == "multi":
            return self.raw.total_killed_jobs()
        return self.raw.killed_jobs

    @property
    def metrics(self) -> Dict[str, object]:
        """The headline numbers as one JSON-friendly mapping."""
        metrics: Dict[str, object] = {
            "mode": self.mode,
            "strategy": self.strategy,
            "makespan": self.makespan,
            "rescheduling_count": self.rescheduling_count,
            "wasted_work": self.wasted_work,
            "killed_jobs": self.killed_jobs,
        }
        if self.mode == "multi":
            metrics["workflows"] = len(self.raw.outcomes)
            if getattr(self.raw, "admission", None):
                metrics["rejected_workflows"] = self.raw.rejected_count
                metrics["deferred_offers"] = self.raw.deferral_count
            credits = getattr(self.raw, "credits", None)
            if credits:
                metrics["credits"] = dict(credits)
        else:
            metrics["initial_makespan"] = self.raw.initial_makespan
            metrics["evaluated_events"] = self.raw.evaluated_events
        return metrics


def _is_workflow(obj) -> bool:
    from repro.workflow.dag import Workflow

    return isinstance(obj, Workflow)


def _resolve_mode(mode: Optional[str], workload, strategy) -> str:
    if mode is not None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        return mode
    if not _is_workflow(workload):
        return "multi"
    if isinstance(strategy, str):
        kind = registry.describe("scheduler", strategy)["kind"]
        if kind in MODES:
            return kind
    return "adaptive"


def run(
    workload,
    pool=None,
    *,
    mode: Optional[str] = None,
    strategy=None,
    costs=None,
    scenario=None,
    error_model=None,
    perf_profile=None,
    resources: Optional[int] = None,
    seed: int = 0,
    horizon: float = 8000.0,
    **options,
) -> RunResult:
    """Run ``workload`` on ``pool`` under one strategy; see the module docs.

    Parameters
    ----------
    workload:
        A :class:`~repro.workflow.dag.Workflow` (single-workflow modes) or
        a workload — a :class:`~repro.workload.streams.WorkloadStream` or a
        sequence of :class:`~repro.workload.streams.WorkflowArrival` —
        for ``mode="multi"``.
    pool:
        The :class:`~repro.resources.pool.ResourcePool` to run on.  Omit
        it when a ``scenario`` materialises the pool instead.
    mode:
        One of :data:`MODES`.  Defaults to ``"multi"`` for workloads,
        otherwise to the named strategy's registered kind (``"adaptive"``
        when no name decides).
    strategy:
        A registered scheduler name (see ``repro.registry.available
        ("scheduler")``) or a scheduler object with the interface the
        mode requires.
    costs:
        The estimated :class:`~repro.workflow.costs.CostModel`; required
        in single-workflow modes (multi-mode workloads price themselves).
    scenario:
        A registered scenario name or :class:`~repro.scenarios.base
        .Scenario`; materialised with ``resources``/``seed``/``horizon``
        into the pool and (unless overridden) the performance profile.
    error_model:
        A registered error-family name or
        :class:`~repro.workflow.costs.ErrorModel`; switches the run to a
        sampled ground truth.
    options:
        Forwarded verbatim to the underlying runner.
    """
    if scenario is not None:
        if pool is not None:
            raise ValueError(
                "pass either pool= or scenario= (the scenario materialises "
                "its own pool), not both"
            )
        if isinstance(scenario, str):
            scenario = registry.make("scenario", scenario)
        from repro.scenarios import materialize

        scenario_run = materialize(
            scenario,
            initial_size=resources if resources is not None else 10,
            seed=seed,
            horizon=horizon,
        )
        pool = scenario_run.pool
        if perf_profile is None:
            perf_profile = scenario_run.profile
    if pool is None:
        raise ValueError("no pool: pass pool= or scenario=")
    if isinstance(error_model, str):
        error_model = registry.make("error_model", error_model, seed=seed)

    mode = _resolve_mode(mode, workload, strategy)

    if mode == "multi":
        if costs is not None:
            raise ValueError(
                "mode='multi' prices workflows from the workload itself; "
                "costs= is not accepted"
            )
        arrivals = workload.arrivals() if hasattr(workload, "arrivals") else workload
        if strategy is not None and not isinstance(strategy, str):
            raise ValueError(
                "mode='multi' takes a registered strategy name; pass "
                "scheduler_factory= for custom scheduler objects"
            )
        from repro.simulation.shared_grid import SharedGridExecutor

        with _deprecation.suppress():
            executor = SharedGridExecutor(
                arrivals,
                pool,
                perf_profile=perf_profile,
                strategy=strategy,
                error_model=error_model,
                **options,
            )
        raw = executor.run()
        return RunResult(mode=mode, strategy=strategy or "aheft", raw=raw)

    if not _is_workflow(workload):
        raise ValueError(
            f"mode={mode!r} runs a single Workflow; got {type(workload).__name__} "
            "(pass mode='multi' for arrival streams)"
        )
    if costs is None:
        raise ValueError(f"mode={mode!r} requires the estimated costs= model")

    from repro.core import adaptive as _adaptive

    named = strategy if isinstance(strategy, str) else None
    obj = strategy if not isinstance(strategy, str) else None
    if mode == "static":
        raw = _adaptive._run_static_impl(
            workload,
            costs,
            pool,
            strategy=named,
            scheduler=obj,
            error_model=error_model,
            perf_profile=perf_profile,
            **options,
        )
    elif mode == "adaptive":
        raw = _adaptive._run_adaptive_impl(
            workload,
            costs,
            pool,
            strategy=named,
            scheduler=obj,
            error_model=error_model,
            perf_profile=perf_profile,
            **options,
        )
    else:  # dynamic
        raw = _adaptive._run_dynamic_impl(
            workload,
            costs,
            pool,
            strategy=named,
            mapper=obj,
            error_model=error_model,
            perf_profile=perf_profile,
            **options,
        )
    return RunResult(mode=mode, strategy=raw.strategy, raw=raw)
