"""Cost models: pricing a workflow DAG on a heterogeneous resource pool.

The paper separates workflow *structure* from *costs*: the ``data`` matrix
lives on the DAG edges while the computation-cost matrix ``w[i][j]`` and the
communication costs ``c[i][j]`` are produced by the Predictor from
performance history and resource information (paper §3.2, §3.4).  A
:class:`CostModel` plays the Predictor's pricing role:

* ``computation_cost(job, resource)`` — the estimated execution time of a
  job on a resource (``w_{i,j}``),
* ``communication_cost(src, dst, r_src, r_dst)`` — the estimated transfer
  time of the ``src -> dst`` output when the two jobs run on ``r_src`` and
  ``r_dst`` (``c_{i,j}``; zero when both run on the same resource),
* the corresponding *averages* used by HEFT's upward rank.

Two concrete models are provided:

* :class:`TabularCostModel` — explicit per-(job, resource) tables, used for
  the paper's worked example (Fig. 4) and for unit tests;
* :class:`HeterogeneousCostModel` — the paper's parametric model
  (§4.2): ``w_i`` drawn from ``U[0, 2·w_DAG]`` per job and
  ``w_{i,j} ~ U[w_i(1-β/2), w_i(1+β/2)]`` per (job, resource), with
  communication priced as ``latency + data / bandwidth``.  Costs for
  resources that join *after* workflow submission are drawn lazily from the
  same distribution, seeded by the resource identity, so the model remains
  deterministic under pool growth.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import spawn_rng
from repro.workflow.dag import Workflow

__all__ = [
    "CostModel",
    "TabularCostModel",
    "HeterogeneousCostModel",
    "UniformCostModel",
    "ErrorModel",
    "GaussianErrorModel",
    "LognormalErrorModel",
    "UniformErrorModel",
    "ResourceBiasErrorModel",
    "StragglerErrorModel",
    "PerturbedCostModel",
    "ERROR_MODELS",
    "available_error_models",
    "error_model_summary",
    "make_error_model",
]


class CostModel(abc.ABC):
    """Interface for estimating computation and communication costs.

    Besides the abstract per-(job, resource) queries, the base class
    provides *memoized dense views* used by the scheduling fast paths:

    * :meth:`computation_matrix` — ``w[job_idx, resource_idx]`` as a numpy
      array aligned with ``workflow.structure()`` and the given resource
      order,
    * :meth:`average_computation_costs` — the per-job average vector
      ``w̄_i``,
    * :meth:`edge_communication_costs` — ``c̄`` per edge, grouped by source
      job in successor order.

    Memoization is keyed on ``(workflow.version, cache_token(), ...)`` and
    is only enabled when :meth:`cache_token` returns a non-``None`` value —
    models whose answers can drift without the workflow mutating (e.g. a
    history-blended predictor model) keep the default ``None`` token and are
    simply recomputed on every call, which is always correct.
    """

    #: workflow whose edges supply the data volumes
    workflow: Workflow

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def computation_cost(self, job_id: str, resource_id: str) -> float:
        """Estimated execution time ``w_{i,j}`` of ``job_id`` on ``resource_id``."""

    def average_computation_cost(
        self, job_id: str, resources: Optional[Sequence[str]] = None
    ) -> float:
        """Average ``w_i`` of the job.

        When ``resources`` is given, the average is taken over that set
        (what HEFT does when ranking against the currently known pool);
        otherwise the model's intrinsic average is returned.  An explicitly
        *empty* resource set is an error — silently falling back to the
        intrinsic average would hide scheduler bugs where the pool was lost.
        """
        if resources is None:
            return self.intrinsic_average_computation_cost(job_id)
        if len(resources) == 0:
            raise ValueError(
                "cannot average computation cost over an empty resource set; "
                "pass None for the model's intrinsic average"
            )
        return float(np.mean([self.computation_cost(job_id, r) for r in resources]))

    @abc.abstractmethod
    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        """Model-defined average computation cost of the job."""

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        """Estimated transfer time of the ``src -> dst`` output.

        Must be zero when ``src_resource == dst_resource`` (local data).
        """

    @abc.abstractmethod
    def average_communication_cost(self, src: str, dst: str) -> float:
        """Average transfer time of ``src -> dst`` ignoring placement.

        This is the ``\\bar{c}_{i,j}`` used in the upward rank (Eq. 5).
        """

    # ------------------------------------------------------------------
    # capability flags / cache keys
    # ------------------------------------------------------------------
    def cache_token(self) -> Optional[object]:
        """Token identifying the model's current pricing, or ``None``.

        A non-``None`` token enables memoization of the dense cost views:
        two calls with equal ``(workflow.version, cache_token())`` must
        return identical costs.  The built-in table-backed models return
        their pricing version (bumped by :meth:`invalidate_cache`); models
        whose estimates can change behind the scenes (history blending)
        must keep the default ``None`` so every query hits the live model.
        """
        return None

    def invalidate_cache(self) -> None:
        """Drop every memoized dense view and bump the pricing version.

        Models whose cost tables are mutated *in place* (e.g. editing
        ``HeterogeneousCostModel.base_costs`` or a tabular row) must call
        this afterwards — the workflow version cannot see such changes, so
        without it the memoized matrices and priority orders would keep
        serving the old prices.
        """
        self.__dict__.pop("_dense_cache", None)
        self.__dict__.pop("_structural_cache", None)
        self.__dict__["_pricing_version"] = self._pricing_version + 1

    @property
    def _pricing_version(self) -> int:
        return self.__dict__.get("_pricing_version", 0)

    @property
    def has_uniform_communication(self) -> bool:
        """True when transfer cost does not depend on the resource pair.

        The contract is: ``communication_cost(src, dst, r1, r2)`` equals 0
        when ``r1 == r2`` and equals ``average_communication_cost(src,
        dst)`` for every pair of *distinct* resources.  All built-in models
        satisfy this (the paper prices transfers as ``latency + data /
        bandwidth`` regardless of endpoints); schedulers use it to hoist
        communication lookups out of their per-resource loops.  Custom
        models with genuinely pairwise costs keep the default ``False`` and
        take the generic (slower, still exact) path.
        """
        return False

    # ------------------------------------------------------------------
    # memoized dense views
    # ------------------------------------------------------------------
    def memoize(self, key: Tuple, builder):
        """Memoize ``builder()`` under ``key`` when the model is cacheable.

        The cache lives on the instance and is dropped wholesale whenever
        the workflow's version or the pricing version moves on, so stale
        entries never accumulate across mutations.  Public so that
        consumers of the model (e.g. the schedulers' priority-order cache)
        can piggyback on the same invalidation rules instead of inventing
        their own.
        """
        token = self.cache_token()
        if token is None:
            return builder()
        store = self.__dict__.get("_dense_cache")
        stamp = (self.workflow.version, token)
        if store is None or store.get("stamp") != stamp:
            store = {"stamp": stamp, "entries": {}}
            self.__dict__["_dense_cache"] = store
        entries = store["entries"]
        if key not in entries:
            entries[key] = builder()
        return entries[key]

    def memoize_structural(self, key: Tuple, builder):
        """Memoize ``builder()`` keyed on *structure* rather than version.

        For views built only from the DAG's jobs/edges and job-level
        pricing — dense computation matrices, rank-level partitions — an
        edge-data refresh (``Workflow.set_data``) changes nothing, so
        stamping on ``(structure_version, cache_token())`` lets them
        survive it.  Never use this for anything priced from edge data
        (communication views), which must stay on :meth:`memoize`.
        """
        token = self.cache_token()
        if token is None:
            return builder()
        store = self.__dict__.get("_structural_cache")
        stamp = (self.workflow.structure_version, token)
        if store is None or store.get("stamp") != stamp:
            store = {"stamp": stamp, "entries": {}}
            self.__dict__["_structural_cache"] = store
        entries = store["entries"]
        if key not in entries:
            entries[key] = builder()
        return entries[key]

    def computation_matrix(self, resources: Sequence[str]) -> "np.ndarray":
        """Dense ``w[job_idx, resource_idx]`` matrix for the given pool.

        Rows follow ``workflow.structure().jobs`` (insertion order), columns
        follow ``resources`` order.  Memoized per pool signature, assembled
        from per-resource *columns* that are themselves memoized — under the
        adaptive loop the pool signature changes on every join/leave event,
        but most resources persist across events, so stacking cached columns
        only prices the genuinely new resources instead of re-pricing the
        whole ``jobs × pool`` table per event.  Entries are the exact same
        ``computation_cost`` floats either way.
        """
        key = ("wmat", tuple(resources))

        def build() -> "np.ndarray":
            jobs = self.workflow.structure().jobs
            if not resources:
                return np.empty((len(jobs), 0), dtype=np.float64)
            columns = [self._computation_column(rid) for rid in resources]
            matrix = np.empty((len(jobs), len(resources)), dtype=np.float64)
            for j, column in enumerate(columns):
                matrix[:, j] = column
            return matrix

        return self.memoize_structural(key, build)

    def computation_rows(self, resources: Sequence[str]) -> List[List[float]]:
        """:meth:`computation_matrix` as a list of per-job rows, memoized.

        The placement loops index single ``w`` rows millions of times and
        plain lists beat ndarray scalar indexing there; caching the
        ``tolist`` view spares every replan the O(jobs × pool) conversion.
        Callers must not mutate the returned rows.
        """
        return self.memoize_structural(
            ("wrows", tuple(resources)),
            lambda: self.computation_matrix(resources).tolist(),
        )

    def _computation_column(self, resource_id: str) -> "np.ndarray":
        """One resource's ``w[:, j]`` column, memoized independently."""

        def build() -> "np.ndarray":
            jobs = self.workflow.structure().jobs
            column = np.empty(len(jobs), dtype=np.float64)
            for i, job in enumerate(jobs):
                column[i] = self.computation_cost(job, resource_id)
            return column

        return self.memoize_structural(("wcol", resource_id), build)

    def average_computation_costs(
        self, resources: Optional[Sequence[str]] = None
    ) -> "np.ndarray":
        """Vector of ``w̄_i`` per job, aligned with ``structure().jobs``.

        Bit-identical to calling :meth:`average_computation_cost` per job
        (numpy's row mean equals the mean of the per-resource list).
        """
        key = ("wavg", None if resources is None else tuple(resources))

        def build() -> "np.ndarray":
            jobs = self.workflow.structure().jobs
            if resources is None:
                return np.array(
                    [self.intrinsic_average_computation_cost(job) for job in jobs],
                    dtype=np.float64,
                )
            if len(resources) == 0:
                raise ValueError(
                    "cannot average computation cost over an empty resource set; "
                    "pass None for the model's intrinsic average"
                )
            return self.computation_matrix(resources).mean(axis=1)

        return self.memoize_structural(key, build)

    def edge_communication_costs(self) -> "np.ndarray":
        """``c̄`` per edge, aligned with ``workflow.structure().edges``.

        Edges are grouped contiguously by source job in insertion order,
        with destinations in successor order — i.e. the same order as
        ``Workflow.edges()``.
        """

        def build() -> "np.ndarray":
            structure = self.workflow.structure()
            jobs = structure.jobs
            return np.array(
                [
                    self.average_communication_cost(jobs[src], jobs[dst])
                    for src, dst in structure.edges
                ],
                dtype=np.float64,
            )

        return self.memoize(("cavg",), build)

    def predecessor_communications(
        self,
    ) -> Tuple[Tuple[Tuple[int, float], ...], ...]:
        """Per-job ``(pred_dense_id, c̄)`` pairs, aligned with dense job ids.

        This is the view the schedulers' placement loops need: for every job,
        its predecessors and the average cost of shipping their output, with
        all string lookups resolved once.
        """

        def build() -> Tuple[Tuple[Tuple[int, float], ...], ...]:
            structure = self.workflow.structure()
            jobs = structure.jobs
            return tuple(
                tuple(
                    (p, self.average_communication_cost(jobs[p], jobs[i]))
                    for p in structure.pred[i]
                )
                for i in range(structure.num_jobs)
            )

        return self.memoize(("pred_comm",), build)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def ccr(self, resources: Optional[Sequence[str]] = None) -> float:
        """Communication-to-computation ratio of the priced workflow.

        Defined as the ratio of the average communication cost per edge to
        the average computation cost per job (paper §4.2).  Returns 0 for
        workflows without edges.
        """
        comp = self.average_computation_costs(resources)
        mean_comp = float(np.mean(comp)) if comp.size else 0.0
        if self.workflow.num_edges == 0 or mean_comp == 0.0:
            return 0.0
        return float(np.mean(self.edge_communication_costs())) / mean_comp


class TabularCostModel(CostModel):
    """Cost model backed by explicit tables.

    Parameters
    ----------
    workflow:
        The workflow whose edges carry the communication costs.  Edge data
        values are interpreted directly as transfer times between distinct
        resources (bandwidth 1), matching the paper's Fig. 4 where edge
        weights are communication costs.
    computation:
        Mapping ``job_id -> {resource_id -> cost}``.
    strict:
        If ``True`` (default) asking for a resource missing from a job's row
        raises ``KeyError``; if ``False`` the row average is returned, which
        is convenient when new resources join and should behave "average".
    """

    def __init__(
        self,
        workflow: Workflow,
        computation: Mapping[str, Mapping[str, float]],
        *,
        strict: bool = True,
    ) -> None:
        self.workflow = workflow
        self._comp: Dict[str, Dict[str, float]] = {
            job: dict(row) for job, row in computation.items()
        }
        self.strict = strict
        missing = set(workflow.jobs) - set(self._comp)
        if missing:
            raise ValueError(f"computation table missing jobs: {sorted(missing)}")
        for job, row in self._comp.items():
            if not row:
                raise ValueError(f"empty computation row for job {job!r}")
            for resource, cost in row.items():
                if cost < 0:
                    raise ValueError(
                        f"negative computation cost for ({job!r}, {resource!r})"
                    )

    def resources(self) -> list[str]:
        """All resource ids appearing in the table, sorted."""
        ids = set()
        for row in self._comp.values():
            ids.update(row.keys())
        return sorted(ids)

    def cache_token(self) -> Optional[object]:
        # the table is a plain dict: in-place edits require invalidate_cache()
        return self._pricing_version

    @property
    def has_uniform_communication(self) -> bool:
        return True  # edge data is the transfer time for any distinct pair

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        row = self._comp[job_id]
        if resource_id in row:
            return float(row[resource_id])
        if self.strict:
            raise KeyError(
                f"no tabulated cost for job {job_id!r} on resource {resource_id!r}"
            )
        return float(np.mean(list(row.values())))

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return float(np.mean(list(self._comp[job_id].values())))

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        if src_resource == dst_resource:
            return 0.0
        return float(self.workflow.data(src, dst))

    def average_communication_cost(self, src: str, dst: str) -> float:
        return float(self.workflow.data(src, dst))


class HeterogeneousCostModel(CostModel):
    """The paper's parametric heterogeneous cost model (§4.2).

    Parameters
    ----------
    workflow:
        Workflow whose edges carry *data volumes*.
    base_costs:
        ``w_i`` per job (the job's average computation cost).  Usually drawn
        from ``U[0, 2·w_DAG]`` by the generator.
    beta:
        Resource heterogeneity factor.  ``w_{i,j}`` is drawn uniformly from
        ``[w_i·(1-β/2), w_i·(1+β/2)]``; β=0 means homogeneous resources.
    bandwidth:
        Data units transferred per time unit between distinct resources.
    latency:
        Fixed per-transfer start-up cost.
    seed:
        Root seed for the per-(job, resource) draws.  Two model instances
        with the same seed produce identical cost matrices, regardless of
        query order and of when resources join the pool.
    """

    def __init__(
        self,
        workflow: Workflow,
        base_costs: Mapping[str, float],
        *,
        beta: float = 0.5,
        bandwidth: float = 1.0,
        latency: float = 0.0,
        seed: int = 0,
    ) -> None:
        if beta < 0 or beta > 2:
            raise ValueError("beta must be in [0, 2] so costs stay non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.workflow = workflow
        missing = set(workflow.jobs) - set(base_costs)
        if missing:
            raise ValueError(f"base_costs missing jobs: {sorted(missing)}")
        self.base_costs: Dict[str, float] = {
            job: float(cost) for job, cost in base_costs.items()
        }
        for job, cost in self.base_costs.items():
            if cost < 0:
                raise ValueError(f"negative base cost for job {job!r}")
        self.beta = float(beta)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.seed = int(seed)
        self._cache: Dict[Tuple[str, str], float] = {}

    def cache_token(self) -> Optional[object]:
        # draws are deterministic in (seed, job, resource); in-place edits
        # of base_costs require invalidate_cache()
        return self._pricing_version

    def invalidate_cache(self) -> None:
        super().invalidate_cache()
        self._cache.clear()  # per-(job, resource) draws derive from base_costs

    @property
    def has_uniform_communication(self) -> bool:
        return True  # latency + data/bandwidth, independent of the pair

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        key = (job_id, resource_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        base = self.base_costs[job_id]
        rng = spawn_rng(self.seed, "wij", job_id, resource_id)
        low = base * (1.0 - self.beta / 2.0)
        high = base * (1.0 + self.beta / 2.0)
        cost = float(rng.uniform(low, high)) if high > low else float(base)
        self._cache[key] = cost
        return cost

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return self.base_costs[job_id]

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        if src_resource == dst_resource:
            return 0.0
        return self.latency + self.workflow.data(src, dst) / self.bandwidth

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.latency + self.workflow.data(src, dst) / self.bandwidth

    # ------------------------------------------------------------------
    # perturbation support (performance-variance experiments)
    # ------------------------------------------------------------------
    def perturbed(self, *, error: float, seed: Optional[int] = None) -> "HeterogeneousCostModel":
        """Return a copy whose base costs are multiplied by ``U[1-error, 1+error]``.

        Used to model *actual* run-time costs diverging from the Planner's
        estimates (paper §3.3, "Resource Performance Variance").
        """
        if error < 0 or error >= 1:
            raise ValueError("error must be in [0, 1)")
        rng = spawn_rng(self.seed if seed is None else seed, "perturb", error)
        base = {
            job: cost * float(rng.uniform(1.0 - error, 1.0 + error))
            for job, cost in self.base_costs.items()
        }
        return HeterogeneousCostModel(
            self.workflow,
            base,
            beta=self.beta,
            bandwidth=self.bandwidth,
            latency=self.latency,
            seed=self.seed,
        )


class UniformCostModel(CostModel):
    """A degenerate model where every job costs the same on every resource.

    Useful for tests and for isolating scheduling-policy effects from
    heterogeneity effects in ablation benchmarks.
    """

    def __init__(
        self,
        workflow: Workflow,
        *,
        computation: float = 1.0,
        bandwidth: float = 1.0,
        latency: float = 0.0,
    ) -> None:
        if computation < 0:
            raise ValueError("computation must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.workflow = workflow
        self.computation = float(computation)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)

    def cache_token(self) -> Optional[object]:
        return self._pricing_version

    @property
    def has_uniform_communication(self) -> bool:
        return True

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        if job_id not in self.workflow:
            raise KeyError(job_id)
        return self.computation

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return self.computation_cost(job_id, "any")

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        if src_resource == dst_resource:
            return 0.0
        return self.latency + self.workflow.data(src, dst) / self.bandwidth

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.latency + self.workflow.data(src, dst) / self.bandwidth


# ----------------------------------------------------------------------
# stochastic ground-truth runtimes (estimate-error experiments)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorModel(abc.ABC):
    """A deterministic sampler of *actual* runtimes around the estimates.

    The paper's whole premise is that execution-time estimates are
    inaccurate; an :class:`ErrorModel` makes that concrete by assigning
    every (job, resource) pair a multiplicative *truth factor*: the actual
    duration of the job on the resource is ``estimate · factor``.  The
    scheduler keeps planning on the unperturbed estimates — only the
    executors (and the Performance Monitor feeding the history repository)
    see the sampled truth.

    Sampling is deterministic in ``(seed, family, replication, scope,
    job_id, resource_id)`` via the hierarchical seeding of
    :mod:`repro.utils.rng`: two queries of the same pair return the same
    factor regardless of query order, and two replications of the same
    experiment draw independent truths.  ``scope`` namespaces the draws,
    decorrelating e.g. the workflows of different tenants (whose DAGs reuse
    the same job identifiers).

    Factors are clamped below at :attr:`floor` so durations stay positive
    under heavy-tailed draws.
    """

    seed: int = 0
    replication: int = 0
    scope: str = ""

    #: registry/CLI identifier; concrete families override it.
    name = "error"
    #: smallest factor a draw can produce (keeps durations positive)
    floor = 0.05

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _draw(self, rng: np.random.Generator, job_id: str, resource_id: str) -> float:
        """Draw the raw (unclamped) factor for one (job, resource) pair."""

    @property
    @abc.abstractmethod
    def magnitude(self) -> float:
        """The family's primary error knob (what uncertainty sweeps vary)."""

    @property
    def is_null(self) -> bool:
        """True when every factor is exactly 1.0 (estimates are the truth).

        Null models short-circuit sampling entirely so zero-noise runs are
        bit-identical to the analytic executors.
        """
        return self.magnitude == 0

    # ------------------------------------------------------------------
    def factor(self, job_id: str, resource_id: str) -> float:
        """The truth factor of ``job_id`` on ``resource_id`` (clamped)."""
        if self.is_null:
            return 1.0
        rng = spawn_rng(
            self.seed, "error", self.name, self.replication, self.scope,
            job_id, resource_id,
        )
        return max(self.floor, float(self._draw(rng, job_id, resource_id)))

    def actual_duration(self, estimate: float, job_id: str, resource_id: str) -> float:
        """The sampled ground-truth duration for an estimated one."""
        if self.is_null:
            return estimate
        return estimate * self.factor(job_id, resource_id)

    # ------------------------------------------------------------------
    def for_replication(self, replication: int) -> "ErrorModel":
        """The same error family drawing the truth of another replication."""
        return replace(self, replication=int(replication))

    def scoped(self, scope: str) -> "ErrorModel":
        """A copy whose draws are namespaced by ``scope`` (e.g. a tenant key)."""
        return replace(self, scope=str(scope))

    def params(self) -> Dict[str, object]:
        """JSON-friendly parameters for experiment ledgers."""
        fields = getattr(self, "__dataclass_fields__", {})
        out: Dict[str, object] = {"name": self.name}
        out.update({key: getattr(self, key) for key in fields})
        return out

    def describe(self) -> str:
        inner = ", ".join(
            f"{k}={v!r}" for k, v in self.params().items() if k != "name"
        )
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class GaussianErrorModel(ErrorModel):
    """Relative Gaussian noise: ``factor = 1 + sigma · N(0, 1)``.

    The symmetric, zero-mean error model of most scheduling-under-
    uncertainty studies; ``sigma`` is the relative standard deviation of
    the actual duration around the estimate.
    """

    sigma: float = 0.2

    name = "gaussian"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def magnitude(self) -> float:
        return self.sigma

    def _draw(self, rng: np.random.Generator, job_id: str, resource_id: str) -> float:
        return 1.0 + self.sigma * float(rng.standard_normal())


@dataclass(frozen=True)
class LognormalErrorModel(ErrorModel):
    """Multiplicative lognormal noise with mean factor 1.

    ``factor = exp(sigma · N(0,1) − sigma²/2)`` — always positive, right-
    skewed (occasional much-slower-than-estimated runs), and mean-one so the
    error is unbiased in expectation.
    """

    sigma: float = 0.2

    name = "lognormal"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def magnitude(self) -> float:
        return self.sigma

    def _draw(self, rng: np.random.Generator, job_id: str, resource_id: str) -> float:
        shift = 0.5 * self.sigma * self.sigma
        return float(np.exp(self.sigma * rng.standard_normal() - shift))


@dataclass(frozen=True)
class UniformErrorModel(ErrorModel):
    """Bounded relative noise: ``factor ~ U[1 − spread, 1 + spread]``.

    The distribution the paper itself suggests for estimate perturbation
    (§3.3) and the one :meth:`HeterogeneousCostModel.perturbed` applies to
    whole cost tables.
    """

    spread: float = 0.2

    name = "uniform"

    def __post_init__(self) -> None:
        if self.spread < 0 or self.spread >= 1:
            raise ValueError("spread must be in [0, 1)")

    @property
    def magnitude(self) -> float:
        return self.spread

    def _draw(self, rng: np.random.Generator, job_id: str, resource_id: str) -> float:
        return float(rng.uniform(1.0 - self.spread, 1.0 + self.spread))


@dataclass(frozen=True)
class ResourceBiasErrorModel(ErrorModel):
    """Per-resource systematic bias plus small per-job jitter.

    Every resource misreports its speed by one fixed factor drawn from
    ``U[1 − spread, 1 + spread]`` (benchmark obsolescence: the information
    service's notion of a machine is consistently wrong); optionally each
    job adds independent jitter from ``U[1 − jitter, 1 + jitter]``
    (disabled by default so ``magnitude 0`` really means *no* error).
    History-driven re-estimation shines here: a few observations per
    resource recover the bias almost exactly.
    """

    spread: float = 0.2
    jitter: float = 0.0

    name = "resource_bias"

    def __post_init__(self) -> None:
        if self.spread < 0 or self.spread >= 1:
            raise ValueError("spread must be in [0, 1)")
        if self.jitter < 0 or self.jitter >= 1:
            raise ValueError("jitter must be in [0, 1)")

    @property
    def magnitude(self) -> float:
        return self.spread

    @property
    def is_null(self) -> bool:
        return self.spread == 0 and self.jitter == 0

    def resource_bias(self, resource_id: str) -> float:
        """The fixed truth bias of one resource (shared by all its jobs)."""
        if self.spread == 0:
            return 1.0
        rng = spawn_rng(
            self.seed, "error", self.name, self.replication, self.scope,
            "bias", resource_id,
        )
        return float(rng.uniform(1.0 - self.spread, 1.0 + self.spread))

    def _draw(self, rng: np.random.Generator, job_id: str, resource_id: str) -> float:
        factor = self.resource_bias(resource_id)
        if self.jitter > 0:
            factor *= float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
        return factor


@dataclass(frozen=True)
class StragglerErrorModel(ErrorModel):
    """Heavy-tailed stragglers: most jobs are near-accurate, a few crawl.

    With probability ``probability`` a (job, resource) pair is a straggler
    and takes ``slowdown ×`` its estimate (the long tail of contended or
    failing nodes); otherwise the estimate is exact, unless an optional
    ``spread`` adds mild bounded noise ``U[1 − spread, 1 + spread]``
    (disabled by default so ``magnitude 0`` really means *no* error).
    """

    probability: float = 0.05
    slowdown: float = 5.0
    spread: float = 0.0

    name = "stragglers"

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        if self.slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        if self.spread < 0 or self.spread >= 1:
            raise ValueError("spread must be in [0, 1)")

    @property
    def magnitude(self) -> float:
        return self.probability

    @property
    def is_null(self) -> bool:
        return self.probability == 0 and self.spread == 0

    def _draw(self, rng: np.random.Generator, job_id: str, resource_id: str) -> float:
        # one draw decides straggler-or-not, the next prices the factor, so
        # the pair's truth is a pure function of its stream
        if float(rng.random()) < self.probability:
            return self.slowdown
        if self.spread == 0:
            return 1.0
        return float(rng.uniform(1.0 - self.spread, 1.0 + self.spread))


#: registry: family name -> ``factory(magnitude, seed=..., **kw) -> ErrorModel``.
#: ``magnitude`` maps to each family's primary knob so uncertainty sweeps
#: can vary "estimate error" uniformly across families.
ERROR_MODELS: Dict[str, Callable[..., ErrorModel]] = {
    "gaussian": lambda magnitude=0.2, seed=0, **kw: GaussianErrorModel(
        sigma=magnitude, seed=seed, **kw
    ),
    "lognormal": lambda magnitude=0.2, seed=0, **kw: LognormalErrorModel(
        sigma=magnitude, seed=seed, **kw
    ),
    "uniform": lambda magnitude=0.2, seed=0, **kw: UniformErrorModel(
        spread=magnitude, seed=seed, **kw
    ),
    "resource_bias": lambda magnitude=0.2, seed=0, **kw: ResourceBiasErrorModel(
        spread=magnitude, seed=seed, **kw
    ),
    "stragglers": lambda magnitude=0.05, seed=0, **kw: StragglerErrorModel(
        probability=magnitude, seed=seed, **kw
    ),
}

_ERROR_MODEL_SUMMARIES: Dict[str, str] = {
    "gaussian": "relative Gaussian noise, factor = 1 + magnitude*N(0,1)",
    "lognormal": "mean-one lognormal noise, right-skewed, sigma = magnitude",
    "uniform": "bounded noise, factor ~ U[1-magnitude, 1+magnitude]",
    "resource_bias": "fixed per-resource bias of +/-magnitude plus small jitter",
    "stragglers": "P(straggler) = magnitude, stragglers run 5x the estimate",
}


# Thin wrappers over the uniform registry facade (:mod:`repro.registry`),
# kept for compatibility with existing callers.


def available_error_models() -> List[str]:
    """Registered error-family names, sorted."""
    from repro import registry

    return registry.available("error_model")


def error_model_summary(name: str) -> str:
    """One-line description of a registered error family."""
    from repro import registry

    return registry.describe("error_model", name)["summary"]


def make_error_model(name: str, magnitude: Optional[float] = None, *, seed: int = 0,
                     **kwargs) -> ErrorModel:
    """Instantiate a registered error family at one error magnitude."""
    from repro import registry

    return registry.make("error_model", name, magnitude=magnitude, seed=seed, **kwargs)


class PerturbedCostModel(CostModel):
    """The sampled ground truth exposed through the :class:`CostModel` API.

    Wraps an *estimated* cost model and an :class:`ErrorModel`:
    ``computation_cost`` returns the sampled actual duration while every
    communication query and the estimator-facing averages pass through the
    base model unchanged (the uncertainty experiments perturb computation
    time only; transfer estimates stay accurate, matching the paper's
    history repository, which covers job performance, not network
    performance).

    Executors take this as their ``actual_costs`` model; with a null error
    model every query returns the base value bit-for-bit, which is what the
    zero-noise differential suite pins down.
    """

    def __init__(self, base: CostModel, error: ErrorModel) -> None:
        self.base = base
        self.workflow = base.workflow
        self.error = error
        self._factor_cache: Dict[Tuple[str, str], float] = {}

    def cache_token(self) -> Optional[object]:
        token = self.base.cache_token()
        if token is None:
            return None
        return ("perturbed", token, self.error)

    @property
    def has_uniform_communication(self) -> bool:
        return self.base.has_uniform_communication

    def truth_factor(self, job_id: str, resource_id: str) -> float:
        """The (memoized) truth factor of one pair."""
        key = (job_id, resource_id)
        factor = self._factor_cache.get(key)
        if factor is None:
            factor = self.error.factor(job_id, resource_id)
            self._factor_cache[key] = factor
        return factor

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        estimate = self.base.computation_cost(job_id, resource_id)
        if self.error.is_null:
            return estimate
        return estimate * self.truth_factor(job_id, resource_id)

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        # estimator-facing: averages feed ranks, which plan on estimates
        return self.base.intrinsic_average_computation_cost(job_id)

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        return self.base.communication_cost(src, dst, src_resource, dst_resource)

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.base.average_communication_cost(src, dst)
