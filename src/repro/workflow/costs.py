"""Cost models: pricing a workflow DAG on a heterogeneous resource pool.

The paper separates workflow *structure* from *costs*: the ``data`` matrix
lives on the DAG edges while the computation-cost matrix ``w[i][j]`` and the
communication costs ``c[i][j]`` are produced by the Predictor from
performance history and resource information (paper §3.2, §3.4).  A
:class:`CostModel` plays the Predictor's pricing role:

* ``computation_cost(job, resource)`` — the estimated execution time of a
  job on a resource (``w_{i,j}``),
* ``communication_cost(src, dst, r_src, r_dst)`` — the estimated transfer
  time of the ``src -> dst`` output when the two jobs run on ``r_src`` and
  ``r_dst`` (``c_{i,j}``; zero when both run on the same resource),
* the corresponding *averages* used by HEFT's upward rank.

Two concrete models are provided:

* :class:`TabularCostModel` — explicit per-(job, resource) tables, used for
  the paper's worked example (Fig. 4) and for unit tests;
* :class:`HeterogeneousCostModel` — the paper's parametric model
  (§4.2): ``w_i`` drawn from ``U[0, 2·w_DAG]`` per job and
  ``w_{i,j} ~ U[w_i(1-β/2), w_i(1+β/2)]`` per (job, resource), with
  communication priced as ``latency + data / bandwidth``.  Costs for
  resources that join *after* workflow submission are drawn lazily from the
  same distribution, seeded by the resource identity, so the model remains
  deterministic under pool growth.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import spawn_rng
from repro.workflow.dag import Workflow

__all__ = [
    "CostModel",
    "TabularCostModel",
    "HeterogeneousCostModel",
    "UniformCostModel",
]


class CostModel(abc.ABC):
    """Interface for estimating computation and communication costs."""

    #: workflow whose edges supply the data volumes
    workflow: Workflow

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def computation_cost(self, job_id: str, resource_id: str) -> float:
        """Estimated execution time ``w_{i,j}`` of ``job_id`` on ``resource_id``."""

    def average_computation_cost(
        self, job_id: str, resources: Optional[Sequence[str]] = None
    ) -> float:
        """Average ``w_i`` of the job.

        When ``resources`` is given, the average is taken over that set
        (what HEFT does when ranking against the currently known pool);
        otherwise the model's intrinsic average is returned.
        """
        if resources:
            return float(
                np.mean([self.computation_cost(job_id, r) for r in resources])
            )
        return self.intrinsic_average_computation_cost(job_id)

    @abc.abstractmethod
    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        """Model-defined average computation cost of the job."""

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        """Estimated transfer time of the ``src -> dst`` output.

        Must be zero when ``src_resource == dst_resource`` (local data).
        """

    @abc.abstractmethod
    def average_communication_cost(self, src: str, dst: str) -> float:
        """Average transfer time of ``src -> dst`` ignoring placement.

        This is the ``\\bar{c}_{i,j}`` used in the upward rank (Eq. 5).
        """

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def ccr(self, resources: Optional[Sequence[str]] = None) -> float:
        """Communication-to-computation ratio of the priced workflow.

        Defined as the ratio of the average communication cost per edge to
        the average computation cost per job (paper §4.2).  Returns 0 for
        workflows without edges.
        """
        edges = self.workflow.edges()
        comp = [
            self.average_computation_cost(job, resources) for job in self.workflow.jobs
        ]
        mean_comp = float(np.mean(comp)) if comp else 0.0
        if not edges or mean_comp == 0.0:
            return 0.0
        comm = [self.average_communication_cost(src, dst) for src, dst, _ in edges]
        return float(np.mean(comm)) / mean_comp


class TabularCostModel(CostModel):
    """Cost model backed by explicit tables.

    Parameters
    ----------
    workflow:
        The workflow whose edges carry the communication costs.  Edge data
        values are interpreted directly as transfer times between distinct
        resources (bandwidth 1), matching the paper's Fig. 4 where edge
        weights are communication costs.
    computation:
        Mapping ``job_id -> {resource_id -> cost}``.
    strict:
        If ``True`` (default) asking for a resource missing from a job's row
        raises ``KeyError``; if ``False`` the row average is returned, which
        is convenient when new resources join and should behave "average".
    """

    def __init__(
        self,
        workflow: Workflow,
        computation: Mapping[str, Mapping[str, float]],
        *,
        strict: bool = True,
    ) -> None:
        self.workflow = workflow
        self._comp: Dict[str, Dict[str, float]] = {
            job: dict(row) for job, row in computation.items()
        }
        self.strict = strict
        missing = set(workflow.jobs) - set(self._comp)
        if missing:
            raise ValueError(f"computation table missing jobs: {sorted(missing)}")
        for job, row in self._comp.items():
            if not row:
                raise ValueError(f"empty computation row for job {job!r}")
            for resource, cost in row.items():
                if cost < 0:
                    raise ValueError(
                        f"negative computation cost for ({job!r}, {resource!r})"
                    )

    def resources(self) -> list[str]:
        """All resource ids appearing in the table, sorted."""
        ids = set()
        for row in self._comp.values():
            ids.update(row.keys())
        return sorted(ids)

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        row = self._comp[job_id]
        if resource_id in row:
            return float(row[resource_id])
        if self.strict:
            raise KeyError(
                f"no tabulated cost for job {job_id!r} on resource {resource_id!r}"
            )
        return float(np.mean(list(row.values())))

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return float(np.mean(list(self._comp[job_id].values())))

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        if src_resource == dst_resource:
            return 0.0
        return float(self.workflow.data(src, dst))

    def average_communication_cost(self, src: str, dst: str) -> float:
        return float(self.workflow.data(src, dst))


class HeterogeneousCostModel(CostModel):
    """The paper's parametric heterogeneous cost model (§4.2).

    Parameters
    ----------
    workflow:
        Workflow whose edges carry *data volumes*.
    base_costs:
        ``w_i`` per job (the job's average computation cost).  Usually drawn
        from ``U[0, 2·w_DAG]`` by the generator.
    beta:
        Resource heterogeneity factor.  ``w_{i,j}`` is drawn uniformly from
        ``[w_i·(1-β/2), w_i·(1+β/2)]``; β=0 means homogeneous resources.
    bandwidth:
        Data units transferred per time unit between distinct resources.
    latency:
        Fixed per-transfer start-up cost.
    seed:
        Root seed for the per-(job, resource) draws.  Two model instances
        with the same seed produce identical cost matrices, regardless of
        query order and of when resources join the pool.
    """

    def __init__(
        self,
        workflow: Workflow,
        base_costs: Mapping[str, float],
        *,
        beta: float = 0.5,
        bandwidth: float = 1.0,
        latency: float = 0.0,
        seed: int = 0,
    ) -> None:
        if beta < 0 or beta > 2:
            raise ValueError("beta must be in [0, 2] so costs stay non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.workflow = workflow
        missing = set(workflow.jobs) - set(base_costs)
        if missing:
            raise ValueError(f"base_costs missing jobs: {sorted(missing)}")
        self.base_costs: Dict[str, float] = {
            job: float(cost) for job, cost in base_costs.items()
        }
        for job, cost in self.base_costs.items():
            if cost < 0:
                raise ValueError(f"negative base cost for job {job!r}")
        self.beta = float(beta)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.seed = int(seed)
        self._cache: Dict[Tuple[str, str], float] = {}

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        key = (job_id, resource_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        base = self.base_costs[job_id]
        rng = spawn_rng(self.seed, "wij", job_id, resource_id)
        low = base * (1.0 - self.beta / 2.0)
        high = base * (1.0 + self.beta / 2.0)
        cost = float(rng.uniform(low, high)) if high > low else float(base)
        self._cache[key] = cost
        return cost

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return self.base_costs[job_id]

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        if src_resource == dst_resource:
            return 0.0
        return self.latency + self.workflow.data(src, dst) / self.bandwidth

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.latency + self.workflow.data(src, dst) / self.bandwidth

    # ------------------------------------------------------------------
    # perturbation support (performance-variance experiments)
    # ------------------------------------------------------------------
    def perturbed(self, *, error: float, seed: Optional[int] = None) -> "HeterogeneousCostModel":
        """Return a copy whose base costs are multiplied by ``U[1-error, 1+error]``.

        Used to model *actual* run-time costs diverging from the Planner's
        estimates (paper §3.3, "Resource Performance Variance").
        """
        if error < 0 or error >= 1:
            raise ValueError("error must be in [0, 1)")
        rng = spawn_rng(self.seed if seed is None else seed, "perturb", error)
        base = {
            job: cost * float(rng.uniform(1.0 - error, 1.0 + error))
            for job, cost in self.base_costs.items()
        }
        return HeterogeneousCostModel(
            self.workflow,
            base,
            beta=self.beta,
            bandwidth=self.bandwidth,
            latency=self.latency,
            seed=self.seed,
        )


class UniformCostModel(CostModel):
    """A degenerate model where every job costs the same on every resource.

    Useful for tests and for isolating scheduling-policy effects from
    heterogeneity effects in ablation benchmarks.
    """

    def __init__(
        self,
        workflow: Workflow,
        *,
        computation: float = 1.0,
        bandwidth: float = 1.0,
        latency: float = 0.0,
    ) -> None:
        if computation < 0:
            raise ValueError("computation must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.workflow = workflow
        self.computation = float(computation)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        if job_id not in self.workflow:
            raise KeyError(job_id)
        return self.computation

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return self.computation_cost(job_id, "any")

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        if src_resource == dst_resource:
            return 0.0
        return self.latency + self.workflow.data(src, dst) / self.bandwidth

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.latency + self.workflow.data(src, dst) / self.bandwidth
