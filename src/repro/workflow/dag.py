"""Directed acyclic graph model of a grid workflow application.

The model follows the paper's formulation (§3.4): a workflow is ``G=(V,E)``
where ``V`` is a set of jobs and each edge ``(i, j)`` is a precedence
constraint annotated with the amount of data job ``j`` requires from job
``i`` (the ``data`` matrix of the paper).  Costs are *not* stored on the
graph — they live in a :class:`~repro.workflow.costs.CostModel` so the same
structure can be priced on different or changing resource pools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.utils.ordering import topological_order

__all__ = ["Job", "Workflow", "WorkflowIndex"]


@dataclass(frozen=True)
class WorkflowIndex:
    """Dense-integer structure index of a :class:`Workflow` snapshot.

    Scheduling inner loops are dominated by string-keyed dict lookups when
    they walk the DAG per job per resource.  The index maps every job to a
    dense integer id (insertion order, matching ``Workflow.jobs``) and
    exposes the topological order and predecessor/successor adjacency as
    plain integer lists, so the hot loops become array walks.

    The index is a snapshot: it is built lazily by
    :meth:`Workflow.structure` and cached until the workflow's *structure*
    (jobs or edges, not edge data) mutates.
    """

    #: job ids in insertion order; ``jobs[i]`` is the job with dense id ``i``
    jobs: Tuple[str, ...]
    #: job id -> dense id
    index: Mapping[str, int]
    #: dense ids in deterministic topological order
    topo: Tuple[int, ...]
    #: job ids in the same topological order (= ``Workflow.topological_order()``)
    topo_jobs: Tuple[str, ...]
    #: successors per dense id
    succ: Tuple[Tuple[int, ...], ...]
    #: predecessors per dense id
    pred: Tuple[Tuple[int, ...], ...]
    #: all edges as dense ``(src, dst)`` pairs, in ``Workflow.edges()`` order
    edges: Tuple[Tuple[int, int], ...]

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class Job:
    """A single job (node) of a workflow DAG.

    Parameters
    ----------
    job_id:
        Unique identifier inside its workflow.
    operation:
        Name of the executable/operation the job runs.  Scientific workflows
        are built from a handful of unique operations instantiated many
        times (paper §4.3); keeping the operation name allows per-operation
        cost assignment and performance-history grouping.
    payload:
        Free-form metadata (e.g. the parallel-branch index for BLAST).
    """

    job_id: str
    operation: str = "task"
    payload: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.job_id


class Workflow:
    """A workflow application represented as a weighted DAG.

    The class stores jobs, directed data-dependency edges and the amount of
    data transferred along each edge.  It maintains predecessor/successor
    indices and validates acyclicity on demand.

    Examples
    --------
    >>> wf = Workflow("diamond")
    >>> for name in ["a", "b", "c", "d"]:
    ...     _ = wf.add_job(name)
    >>> wf.add_edge("a", "b", data=2.0)
    >>> wf.add_edge("a", "c", data=3.0)
    >>> wf.add_edge("b", "d", data=1.0)
    >>> wf.add_edge("c", "d", data=1.0)
    >>> wf.entry_jobs(), wf.exit_jobs()
    (['a'], ['d'])
    """

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._jobs: Dict[str, Job] = {}
        self._succ: Dict[str, Dict[str, float]] = {}
        self._pred: Dict[str, Dict[str, float]] = {}
        #: bumped on every mutation (jobs, edges *and* edge data) — cost
        #: caches key on this
        self._version: int = 0
        #: bumped only when jobs/edges change — the structure index keys on
        #: this (edge-data updates do not invalidate topology)
        self._structure_version: int = 0
        self._structure_cache: Optional[WorkflowIndex] = None
        self._structure_cache_version: int = -1
        #: recent mutations as ``(version_after, src, dst)`` — ``src``/``dst``
        #: name the edge whose data changed, or are ``None`` for a
        #: structural mutation.  Lets incremental consumers (the rank
        #: cache) scope their invalidation to the jobs actually touched
        #: between two versions instead of recomputing everything.
        self._mutation_log: List[Tuple[int, Optional[str], Optional[str]]] = []
        #: highest version whose mutation entry has been trimmed from the
        #: log; ranges reaching at/below it are no longer reconstructible
        self._mutation_log_floor: int = 0

    #: retained mutation-log entries after a trim (trim triggers at 2x)
    _MUTATION_LOG_LIMIT = 4096

    @property
    def version(self) -> int:
        """Monotone mutation counter (jobs, edges and edge-data changes).

        Cost and rank caches use ``(workflow.version, ...)`` keys so they
        are invalidated automatically whenever the workflow mutates.
        """
        return self._version

    @property
    def structure_version(self) -> int:
        """Monotone counter of *structural* mutations (jobs and edges only).

        Unlike :attr:`version`, updating an edge's data volume does not
        bump this — caches of purely structural or computation-priced
        views key on it to survive edge-data refreshes.
        """
        return self._structure_version

    def data_edges_changed_between(
        self, old_version: int, new_version: int
    ) -> Optional[List[Tuple[str, str]]]:
        """Edges whose data changed in ``(old_version, new_version]``.

        Returns ``None`` when the change set cannot be reconstructed —
        a structural mutation occurred in the range, or the log no longer
        covers it — in which case the caller must fall back to full
        recomputation.  Edges may repeat if set multiple times.
        """
        if old_version > new_version or old_version < self._mutation_log_floor:
            return None
        changed: List[Tuple[str, str]] = []
        for version, src, dst in self._mutation_log:
            if version <= old_version or version > new_version:
                continue
            if src is None:
                return None  # structural mutation in range
            changed.append((src, dst))
        return changed

    def _log_mutation(self, src: Optional[str], dst: Optional[str]) -> None:
        log = self._mutation_log
        log.append((self._version, src, dst))
        if len(log) > 2 * self._MUTATION_LOG_LIMIT:
            self._mutation_log_floor = log[-self._MUTATION_LOG_LIMIT - 1][0]
            del log[: -self._MUTATION_LOG_LIMIT]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_job(self, job: Job | str, operation: str = "task", **payload) -> Job:
        """Add a job and return it.

        ``job`` may be a :class:`Job` or a bare identifier string.  Adding a
        job whose identifier already exists raises ``ValueError``.
        """
        if isinstance(job, str):
            job = Job(job_id=job, operation=operation, payload=dict(payload))
        if job.job_id in self._jobs:
            raise ValueError(f"duplicate job id: {job.job_id!r}")
        self._jobs[job.job_id] = job
        self._succ.setdefault(job.job_id, {})
        self._pred.setdefault(job.job_id, {})
        self._touch_structure()
        return job

    def add_edge(self, src: str, dst: str, data: float = 0.0) -> None:
        """Add a precedence edge ``src -> dst`` carrying ``data`` units.

        Raises
        ------
        KeyError
            If either endpoint has not been added.
        ValueError
            If the edge is a self loop, a duplicate, or negative data.
        """
        if src not in self._jobs:
            raise KeyError(f"unknown source job: {src!r}")
        if dst not in self._jobs:
            raise KeyError(f"unknown destination job: {dst!r}")
        if src == dst:
            raise ValueError(f"self loop on job {src!r} is not allowed")
        if dst in self._succ[src]:
            raise ValueError(f"duplicate edge {src!r} -> {dst!r}")
        if data < 0:
            raise ValueError("edge data must be non-negative")
        self._succ[src][dst] = float(data)
        self._pred[dst][src] = float(data)
        self._touch_structure()

    def remove_edge(self, src: str, dst: str) -> None:
        """Remove the edge ``src -> dst`` (KeyError if absent)."""
        del self._succ[src][dst]
        del self._pred[dst][src]
        self._touch_structure()

    def set_data(self, src: str, dst: str, data: float) -> None:
        """Update the data volume of an existing edge."""
        if dst not in self._succ.get(src, {}):
            raise KeyError(f"no edge {src!r} -> {dst!r}")
        if data < 0:
            raise ValueError("edge data must be non-negative")
        self._succ[src][dst] = float(data)
        self._pred[dst][src] = float(data)
        self._version += 1  # costs change, topology does not
        self._log_mutation(src, dst)

    # ------------------------------------------------------------------
    # cache bookkeeping
    # ------------------------------------------------------------------
    def _touch_structure(self) -> None:
        self._version += 1
        self._structure_version += 1
        self._log_mutation(None, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> List[str]:
        """Job identifiers in insertion order."""
        return list(self._jobs.keys())

    @property
    def num_jobs(self) -> int:
        return len(self._jobs)

    @property
    def num_edges(self) -> int:
        return sum(len(succ) for succ in self._succ.values())

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._jobs)

    def job(self, job_id: str) -> Job:
        """Return the :class:`Job` object for ``job_id``."""
        return self._jobs[job_id]

    def predecessors(self, job_id: str) -> List[str]:
        """Immediate predecessors of ``job_id`` (``pred(n_i)`` in the paper)."""
        return list(self._pred[job_id].keys())

    def successors(self, job_id: str) -> List[str]:
        """Immediate successors of ``job_id`` (``succ(n_i)`` in the paper)."""
        return list(self._succ[job_id].keys())

    def data(self, src: str, dst: str) -> float:
        """Amount of data transferred along ``src -> dst`` (``data[i][k]``)."""
        try:
            return self._succ[src][dst]
        except KeyError as exc:
            raise KeyError(f"no edge {src!r} -> {dst!r}") from exc

    def edges(self) -> List[Tuple[str, str, float]]:
        """All edges as ``(src, dst, data)`` triples in insertion order."""
        out: List[Tuple[str, str, float]] = []
        for src, succ in self._succ.items():
            for dst, data in succ.items():
                out.append((src, dst, data))
        return out

    def entry_jobs(self) -> List[str]:
        """Jobs with no predecessors."""
        return [job for job in self._jobs if not self._pred[job]]

    def exit_jobs(self) -> List[str]:
        """Jobs with no successors (``n_exit`` — there can be several)."""
        return [job for job in self._jobs if not self._succ[job]]

    def topological_order(self) -> List[str]:
        """A deterministic topological order of the jobs.

        Raises ``ValueError`` if the graph has a cycle.
        """
        return list(self.structure().topo_jobs)

    def structure(self) -> WorkflowIndex:
        """The cached :class:`WorkflowIndex` of the current structure.

        Rebuilt lazily after any job/edge mutation; edge-data updates keep
        the cache.  Raises ``ValueError`` if the graph has a cycle.
        """
        if (
            self._structure_cache is None
            or self._structure_cache_version != self._structure_version
        ):
            jobs = tuple(self._jobs.keys())
            index = {job: i for i, job in enumerate(jobs)}
            topo_jobs = tuple(topological_order(list(jobs), self._succ))
            self._structure_cache = WorkflowIndex(
                jobs=jobs,
                index=index,
                topo=tuple(index[job] for job in topo_jobs),
                topo_jobs=topo_jobs,
                succ=tuple(
                    tuple(index[dst] for dst in self._succ[job]) for job in jobs
                ),
                pred=tuple(
                    tuple(index[src] for src in self._pred[job]) for job in jobs
                ),
                edges=tuple(
                    (index[src], index[dst])
                    for src, succ in self._succ.items()
                    for dst in succ
                ),
            )
            self._structure_cache_version = self._structure_version
        return self._structure_cache

    def is_acyclic(self) -> bool:
        """``True`` if the graph is a DAG."""
        try:
            self.topological_order()
            return True
        except ValueError:
            return False

    def validate(self) -> None:
        """Validate structural invariants.

        Checks acyclicity and that every job is connected to the DAG's
        purpose (jobs may legitimately be isolated only if the DAG has a
        single job).

        Raises
        ------
        ValueError
            If the workflow is empty or contains a cycle.
        """
        if not self._jobs:
            raise ValueError("workflow has no jobs")
        self.topological_order()  # raises on cycles

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def ancestors(self, job_id: str) -> Set[str]:
        """All transitive predecessors of ``job_id``."""
        seen: Set[str] = set()
        stack = list(self._pred[job_id])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._pred[node])
        return seen

    def descendants(self, job_id: str) -> Set[str]:
        """All transitive successors of ``job_id``."""
        seen: Set[str] = set()
        stack = list(self._succ[job_id])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ[node])
        return seen

    def subgraph(self, job_ids: Iterable[str], name: Optional[str] = None) -> "Workflow":
        """Induced sub-workflow on ``job_ids`` (edges inside the set only)."""
        keep = set(job_ids)
        missing = keep - set(self._jobs)
        if missing:
            raise KeyError(f"unknown jobs: {sorted(missing)!r}")
        sub = Workflow(name or f"{self.name}[sub]")
        for job_id in self._jobs:
            if job_id in keep:
                sub.add_job(self._jobs[job_id])
        for src, dst, data in self.edges():
            if src in keep and dst in keep:
                sub.add_edge(src, dst, data)
        return sub

    def operations(self) -> List[str]:
        """Distinct operation names used by this workflow, sorted."""
        return sorted({job.operation for job in self._jobs.values()})

    def out_degree(self, job_id: str) -> int:
        return len(self._succ[job_id])

    def in_degree(self, job_id: str) -> int:
        return len(self._pred[job_id])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workflow(name={self.name!r}, jobs={self.num_jobs}, "
            f"edges={self.num_edges})"
        )
