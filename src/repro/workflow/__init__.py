"""Workflow (DAG) model: jobs, data dependencies and cost models.

A grid workflow application is represented as a directed acyclic graph
``G = (V, E)`` where nodes are jobs and edges carry the amount of data the
successor needs from the predecessor (paper §3.4).  Computation and
communication costs are provided by a :class:`~repro.workflow.costs.CostModel`
so that the same DAG structure can be priced against a changing,
heterogeneous resource pool.
"""

from repro.workflow.dag import Job, Workflow
from repro.workflow.costs import (
    CostModel,
    TabularCostModel,
    HeterogeneousCostModel,
    UniformCostModel,
    ErrorModel,
    GaussianErrorModel,
    LognormalErrorModel,
    UniformErrorModel,
    ResourceBiasErrorModel,
    StragglerErrorModel,
    PerturbedCostModel,
    ERROR_MODELS,
    available_error_models,
    error_model_summary,
    make_error_model,
)
from repro.workflow.analysis import (
    upward_ranks,
    downward_ranks,
    critical_path,
    critical_path_length,
    dag_levels,
    parallelism_profile,
    max_parallelism,
    average_parallelism,
)
from repro.workflow.serialization import (
    workflow_to_dict,
    workflow_from_dict,
    workflow_to_json,
    workflow_from_json,
    workflow_to_dot,
    workflow_to_networkx,
)

__all__ = [
    "Job",
    "Workflow",
    "CostModel",
    "TabularCostModel",
    "HeterogeneousCostModel",
    "UniformCostModel",
    "ErrorModel",
    "GaussianErrorModel",
    "LognormalErrorModel",
    "UniformErrorModel",
    "ResourceBiasErrorModel",
    "StragglerErrorModel",
    "PerturbedCostModel",
    "ERROR_MODELS",
    "available_error_models",
    "error_model_summary",
    "make_error_model",
    "upward_ranks",
    "downward_ranks",
    "critical_path",
    "critical_path_length",
    "dag_levels",
    "parallelism_profile",
    "max_parallelism",
    "average_parallelism",
    "workflow_to_dict",
    "workflow_from_dict",
    "workflow_to_json",
    "workflow_from_json",
    "workflow_to_dot",
    "workflow_to_networkx",
]
