"""Serialization of workflow DAGs.

Workflows can be round-tripped through plain dictionaries / JSON (for
storing generated experiment cases) and exported to Graphviz DOT or
:mod:`networkx` for inspection and plotting.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional

import networkx as nx

from repro.workflow.dag import Job, Workflow

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "workflow_to_json",
    "workflow_from_json",
    "workflow_to_dot",
    "workflow_to_networkx",
    "workflow_from_networkx",
]

_FORMAT_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> Dict:
    """Render a workflow to a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": workflow.name,
        "jobs": [
            {
                "id": job_id,
                "operation": workflow.job(job_id).operation,
                "payload": dict(workflow.job(job_id).payload),
            }
            for job_id in workflow.jobs
        ],
        "edges": [
            {"src": src, "dst": dst, "data": data}
            for src, dst, data in workflow.edges()
        ],
    }


def workflow_from_dict(payload: Mapping) -> Workflow:
    """Rebuild a workflow from :func:`workflow_to_dict` output.

    Raises
    ------
    ValueError
        If the payload is malformed or uses an unknown format version.
    """
    version = payload.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported workflow format version: {version!r}")
    if "jobs" not in payload or "edges" not in payload:
        raise ValueError("workflow payload must contain 'jobs' and 'edges'")
    workflow = Workflow(str(payload.get("name", "workflow")))
    for job in payload["jobs"]:
        workflow.add_job(
            Job(
                job_id=str(job["id"]),
                operation=str(job.get("operation", "task")),
                payload=dict(job.get("payload", {})),
            )
        )
    for edge in payload["edges"]:
        workflow.add_edge(str(edge["src"]), str(edge["dst"]), float(edge.get("data", 0.0)))
    return workflow


def workflow_to_json(workflow: Workflow, *, indent: Optional[int] = None) -> str:
    """Serialise a workflow to a JSON string."""
    return json.dumps(workflow_to_dict(workflow), indent=indent, sort_keys=True)


def workflow_from_json(text: str) -> Workflow:
    """Parse a workflow from :func:`workflow_to_json` output."""
    return workflow_from_dict(json.loads(text))


def workflow_to_dot(workflow: Workflow, *, include_data: bool = True) -> str:
    """Render the workflow as a Graphviz DOT digraph string."""
    lines = [f'digraph "{workflow.name}" {{', "  rankdir=TB;"]
    for job_id in workflow.jobs:
        op = workflow.job(job_id).operation
        lines.append(f'  "{job_id}" [label="{job_id}\\n{op}"];')
    for src, dst, data in workflow.edges():
        if include_data:
            lines.append(f'  "{src}" -> "{dst}" [label="{data:g}"];')
        else:
            lines.append(f'  "{src}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines)


def workflow_to_networkx(workflow: Workflow) -> nx.DiGraph:
    """Export the workflow to a :class:`networkx.DiGraph`.

    Node attributes carry the operation name; edge attribute ``data`` carries
    the transferred data volume.
    """
    graph = nx.DiGraph(name=workflow.name)
    for job_id in workflow.jobs:
        job = workflow.job(job_id)
        graph.add_node(job_id, operation=job.operation, **dict(job.payload))
    for src, dst, data in workflow.edges():
        graph.add_edge(src, dst, data=data)
    return graph


def workflow_from_networkx(graph: nx.DiGraph, *, name: Optional[str] = None) -> Workflow:
    """Build a workflow from a :class:`networkx.DiGraph`.

    Raises
    ------
    ValueError
        If the graph is not a DAG.
    """
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("graph must be a directed acyclic graph")
    workflow = Workflow(name or str(graph.graph.get("name", "workflow")))
    for node, attrs in graph.nodes(data=True):
        payload = {k: v for k, v in attrs.items() if k != "operation"}
        workflow.add_job(
            Job(job_id=str(node), operation=str(attrs.get("operation", "task")), payload=payload)
        )
    for src, dst, attrs in graph.edges(data=True):
        workflow.add_edge(str(src), str(dst), float(attrs.get("data", 0.0)))
    return workflow
