"""Structural and cost-aware analyses of workflow DAGs.

Provides the graph quantities the schedulers and the evaluation sections of
the paper rely on:

* **upward rank** ``rank_u`` (Eq. 5/6) — the priority HEFT and AHEFT use,
* **downward rank** ``rank_d`` — the symmetric quantity (used by some HEFT
  variants and exposed for completeness),
* **critical path** and its length (lower bound on the makespan used by the
  SLR metric),
* **levels** and **parallelism profile** — the paper attributes AHEFT's
  gains to the DAG's degree of parallelism (§4.3), so these are first-class
  metrics here.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "upward_ranks",
    "downward_ranks",
    "critical_path",
    "critical_path_length",
    "dag_levels",
    "parallelism_profile",
    "max_parallelism",
    "average_parallelism",
]

#: per-cost-model upward-rank cache enabling subgraph-scoped
#: invalidation: when only data volumes changed between two calls (the
#: workflow's mutation log can prove it), the cached rank vector is
#: patched by re-ranking the dirty cone upstream of the changed edges
#: instead of re-running the full recurrence.  Keyed weakly so dropping
#: the cost model drops its cache.
_RANK_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def upward_ranks(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Upward rank of every job (paper Eq. 5 and 6).

    ``rank_u(n_i) = w̄_i + max_{n_j in succ(n_i)} ( c̄_{i,j} + rank_u(n_j) )``
    with ``rank_u(n_exit) = w̄_exit``.  Averages are taken over ``resources``
    when provided (the pool the scheduler currently knows about).
    """
    if workflow is not costs.workflow:
        # foreign workflow: the dense views below are aligned with
        # costs.workflow, so fall back to direct per-job queries
        ranks: Dict[str, float] = {}
        for job in reversed(workflow.topological_order()):
            w_avg = costs.average_computation_cost(job, resources)
            best = 0.0
            for nxt in workflow.successors(job):
                candidate = costs.average_communication_cost(job, nxt) + ranks[nxt]
                if candidate > best:
                    best = candidate
            ranks[job] = w_avg + best
        return ranks

    structure = workflow.structure()
    if structure.num_jobs == 0:
        return {}
    token = costs.cache_token()
    res_key = tuple(resources) if resources is not None else None
    if token is not None:
        entry = _RANK_CACHE.get(costs)
        if (
            entry is not None
            and entry["token"] == token
            and entry["structure_version"] == workflow.structure_version
            and entry["resources"] == res_key
        ):
            changed = workflow.data_edges_changed_between(
                entry["version"], workflow.version
            )
            if changed is not None:
                # only data volumes moved since the cached snapshot:
                # re-rank the dirty cone upstream of the changed edges
                rank_list = entry["rank"]
                if changed:
                    _refresh_dirty_cone(
                        structure, costs, resources, rank_list, changed
                    )
                entry["version"] = workflow.version
                return dict(zip(structure.jobs, rank_list))
    w_arr = costs.average_computation_costs(resources)
    comm_arr = costs.edge_communication_costs()
    # Level-synchronous evaluation of the reverse-topological recurrence:
    # jobs at reverse level L (0 = no successors) depend only on ranks at
    # levels below L, so one gather + segmented max per level replaces the
    # per-edge Python loop.  Float max is exact and the per-edge addition
    # is the same float64 operation the scalar recurrence performs, so the
    # ranks are bit-identical to the scalar evaluation.  The level
    # partition and gather indices are structural (independent of costs
    # and resources) and reused across replans via the cost-model cache.
    leaf_idx, levels = costs.memoize_structural(
        ("upward-rank-levels",), lambda: _reverse_level_batches(structure)
    )
    rank = np.empty(structure.num_jobs, dtype=np.float64)
    rank[leaf_idx] = w_arr[leaf_idx]
    for job_idx, edge_idx, tgt_idx, seg_offsets in levels:
        candidates = comm_arr[edge_idx] + rank[tgt_idx]
        best = np.maximum.reduceat(candidates, seg_offsets)
        np.maximum(best, 0.0, out=best)
        rank[job_idx] = w_arr[job_idx] + best
    rank_list = rank.tolist()
    if token is not None:
        _RANK_CACHE[costs] = {
            "token": token,
            "version": workflow.version,
            "structure_version": workflow.structure_version,
            "resources": res_key,
            "rank": rank_list,
        }
    return dict(zip(structure.jobs, rank_list))


def _refresh_dirty_cone(
    structure,
    costs: CostModel,
    resources: Optional[Sequence[str]],
    rank: List[float],
    changed_edges: Sequence[Tuple[str, str]],
) -> None:
    """Re-rank only the jobs upstream of the changed data edges, in place.

    A job is re-ranked when one of its out-edges changed volume or when a
    successor's rank changed; propagation stops as soon as a recomputed
    rank *exactly* equals the stored one, which keeps the cone tight for
    localised edits.  The per-job recomputation uses the same float64
    operations (edge add, exact max) as the full recurrence, so the
    patched vector is bit-identical to a full recompute.
    """
    index = structure.index
    jobs = structure.jobs
    succ = structure.succ
    pred = structure.pred
    dirty = set()
    for src, _dst in changed_edges:
        i = index.get(src)
        if i is not None:
            dirty.add(i)
    if not dirty:
        return
    w_arr = costs.average_computation_costs(resources)
    avg_comm = costs.average_communication_cost
    for i in reversed(structure.topo):
        if i not in dirty:
            continue
        name = jobs[i]
        best = 0.0
        for j in succ[i]:
            candidate = avg_comm(name, jobs[j]) + rank[j]
            if candidate > best:
                best = candidate
        new_rank = float(w_arr[i]) + best
        if new_rank != rank[i]:
            rank[i] = new_rank
            dirty.update(pred[i])


def _reverse_level_batches(structure) -> Tuple[np.ndarray, List[tuple]]:
    """Group jobs by reverse topological level, with flat gather indices.

    Returns ``(leaf_idx, levels)``: the indices of jobs without successors
    (reverse level 0) and, per deeper level, ``(job_idx, edge_idx, tgt_idx,
    seg_offsets)`` — the level's jobs, the positions of their out-edges in
    the flat edge-cost array (grouped by source job in job order), the
    successor index of each such edge, and the start offset of every job's
    edge run for ``np.maximum.reduceat``.
    """
    succ = structure.succ
    num_jobs = structure.num_jobs
    offsets = [0] * num_jobs
    cursor = 0
    for i in range(num_jobs):
        offsets[i] = cursor
        cursor += len(succ[i])
    rlevel = [0] * num_jobs
    depth = 0
    for i in reversed(structure.topo):
        s = succ[i]
        if s:
            level = 1 + max(rlevel[j] for j in s)
            rlevel[i] = level
            if level > depth:
                depth = level
    by_level: List[List[int]] = [[] for _ in range(depth + 1)]
    for i in range(num_jobs):
        by_level[rlevel[i]].append(i)
    leaf_idx = np.asarray(by_level[0], dtype=np.intp)
    levels = []
    for members in by_level[1:]:
        edge_idx: List[int] = []
        tgt_idx: List[int] = []
        seg_offsets: List[int] = []
        for i in members:
            seg_offsets.append(len(edge_idx))
            base = offsets[i]
            for k, j in enumerate(succ[i]):
                edge_idx.append(base + k)
                tgt_idx.append(j)
        levels.append(
            (
                np.asarray(members, dtype=np.intp),
                np.asarray(edge_idx, dtype=np.intp),
                np.asarray(tgt_idx, dtype=np.intp),
                np.asarray(seg_offsets, dtype=np.intp),
            )
        )
    return leaf_idx, levels


def downward_ranks(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Downward rank of every job.

    ``rank_d(n_i) = max_{n_j in pred(n_i)} ( rank_d(n_j) + w̄_j + c̄_{j,i} )``
    with ``rank_d(entry) = 0``.
    """
    ranks: Dict[str, float] = {}
    for job in workflow.topological_order():
        preds = workflow.predecessors(job)
        if not preds:
            ranks[job] = 0.0
            continue
        best = 0.0
        for prev in preds:
            w_avg = costs.average_computation_cost(prev, resources)
            c_avg = costs.average_communication_cost(prev, job)
            candidate = ranks[prev] + w_avg + c_avg
            if candidate > best:
                best = candidate
        ranks[job] = best
    return ranks


def critical_path(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
    *,
    include_communication: bool = True,
) -> List[str]:
    """Jobs on the (average-cost) critical path, entry to exit.

    The critical path is the chain of jobs maximising the sum of average
    computation costs plus (optionally) average communication costs.
    """
    order = workflow.topological_order()
    dist: Dict[str, float] = {}
    parent: Dict[str, Optional[str]] = {}
    for job in order:
        w = costs.average_computation_cost(job, resources)
        preds = workflow.predecessors(job)
        if not preds:
            dist[job] = w
            parent[job] = None
            continue
        best_val = -np.inf
        best_pred = None
        for prev in preds:
            c = (
                costs.average_communication_cost(prev, job)
                if include_communication
                else 0.0
            )
            candidate = dist[prev] + c + w
            if candidate > best_val or (
                candidate == best_val and str(prev) < str(best_pred)
            ):
                best_val = candidate
                best_pred = prev
        dist[job] = best_val
        parent[job] = best_pred

    # walk back from the exit job with the largest distance
    exits = workflow.exit_jobs()
    end = max(sorted(exits, key=str), key=lambda j: dist[j])
    path: List[str] = []
    cursor: Optional[str] = end
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    path.reverse()
    return path


def critical_path_length(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
    *,
    include_communication: bool = True,
    minimum_costs: bool = False,
) -> float:
    """Length of the critical path.

    With ``minimum_costs=True`` the per-job cost used is the *minimum* over
    ``resources`` rather than the average — this is the denominator of the
    Schedule Length Ratio (SLR) metric.
    """

    def job_cost(job: str) -> float:
        if minimum_costs and resources:
            return min(costs.computation_cost(job, r) for r in resources)
        return costs.average_computation_cost(job, resources)

    order = workflow.topological_order()
    dist: Dict[str, float] = {}
    for job in order:
        w = job_cost(job)
        preds = workflow.predecessors(job)
        if not preds:
            dist[job] = w
            continue
        best = 0.0
        for prev in preds:
            c = (
                costs.average_communication_cost(prev, job)
                if include_communication
                else 0.0
            )
            best = max(best, dist[prev] + c)
        dist[job] = best + w
    return max(dist[j] for j in workflow.exit_jobs())


def dag_levels(workflow: Workflow) -> Dict[str, int]:
    """Topological level of each job (entry jobs are level 0)."""
    levels: Dict[str, int] = {}
    for job in workflow.topological_order():
        preds = workflow.predecessors(job)
        levels[job] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def parallelism_profile(workflow: Workflow) -> List[int]:
    """Number of jobs per topological level, ordered by level.

    This is the "parallelism degree" notion the paper uses to explain why
    BLAST benefits more from AHEFT than WIEN2K (§4.3): WIEN2K's
    ``LAPW2_FERMI`` level has width 1 and throttles the whole DAG.
    """
    levels = dag_levels(workflow)
    if not levels:
        return []
    width = [0] * (max(levels.values()) + 1)
    for level in levels.values():
        width[level] += 1
    return width


def max_parallelism(workflow: Workflow) -> int:
    """Maximum number of jobs on one level (DAG width)."""
    profile = parallelism_profile(workflow)
    return max(profile) if profile else 0


def average_parallelism(workflow: Workflow) -> float:
    """Average number of jobs per level."""
    profile = parallelism_profile(workflow)
    return float(np.mean(profile)) if profile else 0.0
