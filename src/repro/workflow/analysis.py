"""Structural and cost-aware analyses of workflow DAGs.

Provides the graph quantities the schedulers and the evaluation sections of
the paper rely on:

* **upward rank** ``rank_u`` (Eq. 5/6) — the priority HEFT and AHEFT use,
* **downward rank** ``rank_d`` — the symmetric quantity (used by some HEFT
  variants and exposed for completeness),
* **critical path** and its length (lower bound on the makespan used by the
  SLR metric),
* **levels** and **parallelism profile** — the paper attributes AHEFT's
  gains to the DAG's degree of parallelism (§4.3), so these are first-class
  metrics here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "upward_ranks",
    "downward_ranks",
    "critical_path",
    "critical_path_length",
    "dag_levels",
    "parallelism_profile",
    "max_parallelism",
    "average_parallelism",
]


def upward_ranks(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Upward rank of every job (paper Eq. 5 and 6).

    ``rank_u(n_i) = w̄_i + max_{n_j in succ(n_i)} ( c̄_{i,j} + rank_u(n_j) )``
    with ``rank_u(n_exit) = w̄_exit``.  Averages are taken over ``resources``
    when provided (the pool the scheduler currently knows about).
    """
    if workflow is not costs.workflow:
        # foreign workflow: the dense views below are aligned with
        # costs.workflow, so fall back to direct per-job queries
        ranks: Dict[str, float] = {}
        for job in reversed(workflow.topological_order()):
            w_avg = costs.average_computation_cost(job, resources)
            best = 0.0
            for nxt in workflow.successors(job):
                candidate = costs.average_communication_cost(job, nxt) + ranks[nxt]
                if candidate > best:
                    best = candidate
            ranks[job] = w_avg + best
        return ranks

    structure = workflow.structure()
    w_avg = costs.average_computation_costs(resources).tolist()
    comm = costs.edge_communication_costs().tolist()
    # flat edge array is grouped by source job in insertion order, matching
    # structure.succ — compute each source's offset into it
    offsets = [0] * structure.num_jobs
    cursor = 0
    for i in range(structure.num_jobs):
        offsets[i] = cursor
        cursor += len(structure.succ[i])
    rank = [0.0] * structure.num_jobs
    for i in reversed(structure.topo):
        succ = structure.succ[i]
        best = 0.0
        base = offsets[i]
        for k, j in enumerate(succ):
            candidate = comm[base + k] + rank[j]
            if candidate > best:
                best = candidate
        rank[i] = w_avg[i] + best
    return {job: rank[i] for i, job in enumerate(structure.jobs)}


def downward_ranks(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Downward rank of every job.

    ``rank_d(n_i) = max_{n_j in pred(n_i)} ( rank_d(n_j) + w̄_j + c̄_{j,i} )``
    with ``rank_d(entry) = 0``.
    """
    ranks: Dict[str, float] = {}
    for job in workflow.topological_order():
        preds = workflow.predecessors(job)
        if not preds:
            ranks[job] = 0.0
            continue
        best = 0.0
        for prev in preds:
            w_avg = costs.average_computation_cost(prev, resources)
            c_avg = costs.average_communication_cost(prev, job)
            candidate = ranks[prev] + w_avg + c_avg
            if candidate > best:
                best = candidate
        ranks[job] = best
    return ranks


def critical_path(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
    *,
    include_communication: bool = True,
) -> List[str]:
    """Jobs on the (average-cost) critical path, entry to exit.

    The critical path is the chain of jobs maximising the sum of average
    computation costs plus (optionally) average communication costs.
    """
    order = workflow.topological_order()
    dist: Dict[str, float] = {}
    parent: Dict[str, Optional[str]] = {}
    for job in order:
        w = costs.average_computation_cost(job, resources)
        preds = workflow.predecessors(job)
        if not preds:
            dist[job] = w
            parent[job] = None
            continue
        best_val = -np.inf
        best_pred = None
        for prev in preds:
            c = (
                costs.average_communication_cost(prev, job)
                if include_communication
                else 0.0
            )
            candidate = dist[prev] + c + w
            if candidate > best_val or (
                candidate == best_val and str(prev) < str(best_pred)
            ):
                best_val = candidate
                best_pred = prev
        dist[job] = best_val
        parent[job] = best_pred

    # walk back from the exit job with the largest distance
    exits = workflow.exit_jobs()
    end = max(sorted(exits, key=str), key=lambda j: dist[j])
    path: List[str] = []
    cursor: Optional[str] = end
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    path.reverse()
    return path


def critical_path_length(
    workflow: Workflow,
    costs: CostModel,
    resources: Optional[Sequence[str]] = None,
    *,
    include_communication: bool = True,
    minimum_costs: bool = False,
) -> float:
    """Length of the critical path.

    With ``minimum_costs=True`` the per-job cost used is the *minimum* over
    ``resources`` rather than the average — this is the denominator of the
    Schedule Length Ratio (SLR) metric.
    """

    def job_cost(job: str) -> float:
        if minimum_costs and resources:
            return min(costs.computation_cost(job, r) for r in resources)
        return costs.average_computation_cost(job, resources)

    order = workflow.topological_order()
    dist: Dict[str, float] = {}
    for job in order:
        w = job_cost(job)
        preds = workflow.predecessors(job)
        if not preds:
            dist[job] = w
            continue
        best = 0.0
        for prev in preds:
            c = (
                costs.average_communication_cost(prev, job)
                if include_communication
                else 0.0
            )
            best = max(best, dist[prev] + c)
        dist[job] = best + w
    return max(dist[j] for j in workflow.exit_jobs())


def dag_levels(workflow: Workflow) -> Dict[str, int]:
    """Topological level of each job (entry jobs are level 0)."""
    levels: Dict[str, int] = {}
    for job in workflow.topological_order():
        preds = workflow.predecessors(job)
        levels[job] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def parallelism_profile(workflow: Workflow) -> List[int]:
    """Number of jobs per topological level, ordered by level.

    This is the "parallelism degree" notion the paper uses to explain why
    BLAST benefits more from AHEFT than WIEN2K (§4.3): WIEN2K's
    ``LAPW2_FERMI`` level has width 1 and throttles the whole DAG.
    """
    levels = dag_levels(workflow)
    if not levels:
        return []
    width = [0] * (max(levels.values()) + 1)
    for level in levels.values():
        width[level] += 1
    return width


def max_parallelism(workflow: Workflow) -> int:
    """Maximum number of jobs on one level (DAG width)."""
    profile = parallelism_profile(workflow)
    return max(profile) if profile else 0


def average_parallelism(workflow: Workflow) -> float:
    """Average number of jobs per level."""
    profile = parallelism_profile(workflow)
    return float(np.mean(profile)) if profile else 0.0
