"""A single grid computation resource."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Resource"]


@dataclass(frozen=True)
class Resource:
    """A computation unit in the grid.

    Parameters
    ----------
    resource_id:
        Unique identifier inside its pool (e.g. ``"r1"``).
    available_from:
        Logical time at which the resource joins the grid.  Resources present
        from the start have ``available_from == 0``; resources discovered
        during execution (the events AHEFT reacts to) have a positive value.
    available_until:
        Logical time at which the resource leaves the grid, or ``None`` if it
        never leaves.  The paper's evaluation only exercises additions
        (§4.1 assumption 3), but departures are modelled so the event plumbing
        and what-if analysis can reason about removals.
    site:
        Optional grouping label (cluster / administrative domain).
    metadata:
        Free-form attributes (e.g. the generator's speed class).
    """

    resource_id: str
    available_from: float = 0.0
    available_until: float | None = None
    site: str = "default"
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.available_from < 0:
            raise ValueError("available_from must be non-negative")
        if self.available_until is not None and self.available_until <= self.available_from:
            raise ValueError("available_until must be after available_from")

    def is_available_at(self, time: float) -> bool:
        """``True`` if the resource is part of the grid at ``time``."""
        if time < self.available_from:
            return False
        if self.available_until is not None and time >= self.available_until:
            return False
        return True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.resource_id
