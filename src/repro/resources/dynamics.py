"""Resource-pool dynamics: the paper's (R, Δ, δ) change model.

Paper §4.2 models grid dynamics with three parameters:

* ``R`` — initial resource pool size,
* ``Δ`` (``interval``) — time between resource-pool changes; larger Δ means
  a less dynamic grid,
* ``δ`` (``fraction``) — the fraction of the *initial* pool size that joins
  at each change event.

Per the experiment-design assumptions (§4.1) only resource *additions* are
exercised in the paper's evaluation; ``leave_fraction`` (default zero)
additionally retires resources, and departures are honoured **end to end**:
the executors kill jobs running on a departing resource (recording the
partial execution as wasted work) and re-dispatch them, and the adaptive
Planner treats a plan with unfinished work on a departed resource as
infeasible and replans unconditionally — see
:mod:`repro.simulation.executor` for the full departure semantics.

For richer dynamics than the (R, Δ, δ) model (busy-resource departures,
performance degradation, load spikes, churn) use the scenario engine:
:meth:`ResourceChangeModel.to_scenario` bridges this model into it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource

__all__ = ["ResourceChangeModel", "StaticResourceModel"]


@dataclass(frozen=True)
class ResourceChangeModel:
    """Generator of dynamically growing resource pools.

    Parameters
    ----------
    initial_size:
        ``R`` — number of resources available at time 0.
    interval:
        ``Δ`` — logical time between consecutive change events.
    fraction:
        ``δ`` — each event adds ``ceil(δ · R)`` new resources.
    max_events:
        Number of change events to materialise.  The executor stops
        consuming events once the workflow finishes, so this only needs to
        exceed ``makespan / Δ``; the default (64) is generous for every
        configuration in the paper.
    leave_fraction:
        Optional fraction of the initial pool that *leaves* at each event
        (0 reproduces the paper's evaluation).
    name_prefix:
        Prefix for generated resource identifiers.
    """

    initial_size: int
    interval: float
    fraction: float
    max_events: int = 64
    leave_fraction: float = 0.0
    name_prefix: str = "r"

    def __post_init__(self) -> None:
        if self.initial_size <= 0:
            raise ValueError("initial_size must be positive")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.fraction < 0:
            raise ValueError("fraction must be non-negative")
        if self.leave_fraction < 0 or self.leave_fraction > 1:
            raise ValueError("leave_fraction must be in [0, 1]")
        if self.max_events < 0:
            raise ValueError("max_events must be non-negative")

    @property
    def added_per_event(self) -> int:
        """Number of resources joining at each change event: ``ceil(δ·R)``."""
        if self.fraction == 0:
            return 0
        return max(1, math.ceil(self.fraction * self.initial_size))

    @property
    def removed_per_event(self) -> int:
        if self.leave_fraction == 0:
            return 0
        return max(1, math.ceil(self.leave_fraction * self.initial_size))

    def build_pool(self) -> ResourcePool:
        """Materialise the pool: R initial resources plus joins every Δ.

        Resource identifiers are ``r1..rR`` for the initial pool and
        ``rR+1, …`` for later arrivals, tagged with the event index in their
        metadata.  Removals (if ``leave_fraction > 0``) retire the oldest
        still-present initial resources, mirroring a grid where the original
        donation expires.
        """
        pool = ResourcePool()
        counter = 0
        for _ in range(self.initial_size):
            counter += 1
            pool.add(Resource(f"{self.name_prefix}{counter}", available_from=0.0))

        removable = [f"{self.name_prefix}{i + 1}" for i in range(self.initial_size)]
        removed: set[str] = set()
        for event_index in range(1, self.max_events + 1):
            when = event_index * self.interval
            for _ in range(self.added_per_event):
                counter += 1
                pool.add(
                    Resource(
                        f"{self.name_prefix}{counter}",
                        available_from=when,
                        metadata={"event_index": event_index},
                    )
                )
            # Departures are an extension hook; they replace still-available
            # initial resources with a bounded availability window.
            for _ in range(self.removed_per_event):
                candidates = [rid for rid in removable if rid not in removed]
                if not candidates:
                    break
                victim = candidates[0]
                removed.add(victim)
        if removed:
            # Rebuild the pool with availability windows on the victims.
            rebuilt = ResourcePool()
            for rid in pool.all_resource_ids():
                res = pool.resource(rid)
                if rid in removed:
                    # retire after the first event following its join
                    leave_at = max(res.available_from + self.interval, self.interval)
                    rebuilt.add(
                        Resource(
                            rid,
                            available_from=res.available_from,
                            available_until=leave_at,
                            site=res.site,
                            metadata=dict(res.metadata),
                        )
                    )
                else:
                    rebuilt.add(res)
            return rebuilt
        return pool

    def to_scenario(self):
        """This change model as a composable scenario-engine scenario.

        The join stream maps to
        :class:`~repro.scenarios.library.PaperJoinScenario`; a non-zero
        ``leave_fraction`` adds a
        :class:`~repro.scenarios.library.DepartureScenario` with the same
        Δ.  Note the scenario engine picks departure victims uniformly
        among *all* present resources (busy ones included), whereas
        :meth:`build_pool` retires the oldest initial resources — the
        scenario form is the harsher, more general reading of the same
        parameters.
        """
        from repro.scenarios.library import DepartureScenario, PaperJoinScenario

        paper = PaperJoinScenario(
            interval=self.interval, fraction=self.fraction, max_events=self.max_events
        )
        if self.leave_fraction == 0:
            return paper
        return paper + DepartureScenario(
            interval=self.interval,
            fraction=self.leave_fraction,
            max_events=self.max_events,
        )

    def describe(self) -> str:
        """One-line human readable description (used by experiment reports)."""
        return (
            f"R={self.initial_size}, Δ={self.interval:g}, δ={self.fraction:g}"
            + (f", leave={self.leave_fraction:g}" if self.leave_fraction else "")
        )


@dataclass(frozen=True)
class StaticResourceModel:
    """A pool that never changes — the classic static-scheduling world view."""

    size: int
    name_prefix: str = "r"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")

    def build_pool(self) -> ResourcePool:
        pool = ResourcePool()
        for index in range(self.size):
            pool.add(Resource(f"{self.name_prefix}{index + 1}", available_from=0.0))
        return pool

    def to_scenario(self):
        """The empty event stream — scenario-engine form of a static pool."""
        from repro.scenarios.library import StaticScenario

        return StaticScenario()

    def describe(self) -> str:
        return f"R={self.size} (static)"
