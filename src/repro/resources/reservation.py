"""Advance resource reservations.

The paper assumes the Executor supports advance reservation (§3.2, §4.1
assumption 3): when a schedule arrives, the Resource Manager reserves the
mapped resources for the scheduled windows; when a *rescheduled* plan
arrives, the reservations of the replaced plan are revoked before the new
ones are made.  :class:`ReservationBook` implements exactly that contract
and detects conflicting reservations, which the tests use as an invariant
(two jobs must never hold overlapping reservations on one resource).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Reservation", "ReservationBook", "ReservationConflict"]


class ReservationConflict(RuntimeError):
    """Raised when a requested reservation overlaps an existing one."""


@dataclass(frozen=True)
class Reservation:
    """A half-open reservation ``[start, end)`` of a resource for a job."""

    resource_id: str
    job_id: str
    start: float
    end: float
    plan_id: str = "plan-0"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("reservation end must not precede start")

    def overlaps(self, other: "Reservation") -> bool:
        """``True`` if the two reservations share a resource and overlap in time.

        Zero-length reservations never overlap anything.
        """
        if self.resource_id != other.resource_id:
            return False
        if self.start == self.end or other.start == other.end:
            return False
        return self.start < other.end and other.start < self.end


class ReservationBook:
    """Registry of reservations with conflict detection and plan revocation."""

    def __init__(self) -> None:
        self._by_resource: Dict[str, List[Reservation]] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def reserve(self, reservation: Reservation, *, allow_conflict: bool = False) -> Reservation:
        """Add a reservation.

        Raises
        ------
        ReservationConflict
            If it overlaps an existing reservation on the same resource and
            ``allow_conflict`` is False.
        """
        existing = self._by_resource.setdefault(reservation.resource_id, [])
        if not allow_conflict:
            for other in existing:
                if reservation.overlaps(other):
                    raise ReservationConflict(
                        f"{reservation} conflicts with existing {other}"
                    )
        existing.append(reservation)
        existing.sort(key=lambda r: (r.start, r.end, r.job_id))
        return reservation

    def reserve_schedule(
        self,
        assignments: Iterable[Tuple[str, str, float, float]],
        *,
        plan_id: str,
    ) -> List[Reservation]:
        """Reserve ``(job, resource, start, end)`` tuples under one plan id."""
        made: List[Reservation] = []
        for job_id, resource_id, start, end in assignments:
            made.append(
                self.reserve(
                    Reservation(
                        resource_id=resource_id,
                        job_id=job_id,
                        start=start,
                        end=end,
                        plan_id=plan_id,
                    )
                )
            )
        return made

    def revoke_plan(self, plan_id: str, *, after: Optional[float] = None) -> int:
        """Remove reservations of ``plan_id``; returns the number removed.

        With ``after`` set, only reservations *starting* at or after that
        time are revoked — reservations of already-started jobs are kept,
        matching the Resource Manager behaviour when a rescheduled plan
        replaces a partially executed one (paper §3.2).
        """
        removed = 0
        for resource_id in list(self._by_resource):
            kept: List[Reservation] = []
            for reservation in self._by_resource[resource_id]:
                if reservation.plan_id == plan_id and (
                    after is None or reservation.start >= after
                ):
                    removed += 1
                else:
                    kept.append(reservation)
            self._by_resource[resource_id] = kept
        return removed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reservations(self, resource_id: Optional[str] = None) -> List[Reservation]:
        if resource_id is not None:
            return list(self._by_resource.get(resource_id, []))
        out: List[Reservation] = []
        for reservations in self._by_resource.values():
            out.extend(reservations)
        out.sort(key=lambda r: (r.start, r.resource_id, r.job_id))
        return out

    def reservations_for_plan(self, plan_id: str) -> List[Reservation]:
        return [r for r in self.reservations() if r.plan_id == plan_id]

    def has_conflicts(self) -> bool:
        """``True`` if any two reservations on one resource overlap."""
        return bool(self.conflicts())

    def conflicts(self) -> List[Tuple[Reservation, Reservation]]:
        """All pairwise overlapping reservations (per resource)."""
        found: List[Tuple[Reservation, Reservation]] = []
        for reservations in self._by_resource.values():
            for i, first in enumerate(reservations):
                for second in reservations[i + 1 :]:
                    if second.start >= first.end:
                        break
                    if first.overlaps(second):
                        found.append((first, second))
        return found

    def utilisation(self, resource_id: str, horizon: float) -> float:
        """Fraction of ``[0, horizon)`` covered by reservations of a resource."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        intervals = sorted(
            (max(0.0, r.start), min(horizon, r.end))
            for r in self._by_resource.get(resource_id, [])
            if r.end > 0 and r.start < horizon
        )
        covered = 0.0
        cursor = 0.0
        for start, end in intervals:
            start = max(start, cursor)
            if end > start:
                covered += end - start
                cursor = end
        return covered / horizon
