"""The time-varying grid resource pool.

The pool records every resource that will ever exist together with the
logical time window in which it is part of the grid.  Schedulers query the
pool for a *snapshot* at the current clock (the set ``R`` of the paper),
while the simulation iterates over the pool's *events* — the points in time
at which membership changes, which are exactly the events the adaptive
Planner listens for (paper §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.resources.resource import Resource

__all__ = ["PoolEvent", "ResourcePool"]


@dataclass(frozen=True)
class PoolEvent:
    """A membership change of the resource pool.

    ``added`` and ``removed`` list the resource identifiers that join or
    leave the grid at ``time``.
    """

    time: float
    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()

    @property
    def is_addition(self) -> bool:
        return bool(self.added)

    @property
    def is_removal(self) -> bool:
        return bool(self.removed)


class ResourcePool:
    """Collection of :class:`Resource` objects with availability windows.

    Examples
    --------
    >>> pool = ResourcePool()
    >>> _ = pool.add(Resource("r1"))
    >>> _ = pool.add(Resource("r2", available_from=15.0))
    >>> pool.available_at(0.0)
    ['r1']
    >>> pool.available_at(20.0)
    ['r1', 'r2']
    """

    def __init__(self, resources: Optional[Iterable[Resource]] = None) -> None:
        self._resources: Dict[str, Resource] = {}
        for resource in resources or ():
            self.add(resource)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, resource: Resource) -> Resource:
        """Register a resource; duplicate identifiers raise ``ValueError``."""
        if resource.resource_id in self._resources:
            raise ValueError(f"duplicate resource id: {resource.resource_id!r}")
        self._resources[resource.resource_id] = resource
        return resource

    def add_many(self, resources: Iterable[Resource]) -> List[Resource]:
        return [self.add(resource) for resource in resources]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, resource_id: str) -> bool:
        return resource_id in self._resources

    def __len__(self) -> int:
        return len(self._resources)

    def __iter__(self) -> Iterator[str]:
        return iter(self._resources)

    def resource(self, resource_id: str) -> Resource:
        return self._resources[resource_id]

    def all_resource_ids(self) -> List[str]:
        """Identifiers of every resource ever known, in insertion order."""
        return list(self._resources.keys())

    def initial_resources(self) -> List[str]:
        """Resources available at time 0 (the static scheduler's world view)."""
        return self.available_at(0.0)

    def available_at(self, time: float) -> List[str]:
        """Identifiers of resources that are part of the grid at ``time``."""
        return [
            rid
            for rid, res in self._resources.items()
            if res.is_available_at(time)
        ]

    def joined_in(self, start: float, end: float) -> List[str]:
        """Resources whose ``available_from`` lies in ``(start, end]``."""
        return [
            rid
            for rid, res in self._resources.items()
            if start < res.available_from <= end
        ]

    def events(self, *, after: float = 0.0, until: Optional[float] = None) -> List[PoolEvent]:
        """Membership-change events strictly after ``after`` (and up to ``until``).

        Events are aggregated per time point and sorted chronologically.
        """
        changes: Dict[float, Dict[str, List[str]]] = {}
        for rid, res in self._resources.items():
            if res.available_from > after and (until is None or res.available_from <= until):
                changes.setdefault(res.available_from, {"added": [], "removed": []})[
                    "added"
                ].append(rid)
            if res.available_until is not None and res.available_until > after and (
                until is None or res.available_until <= until
            ):
                changes.setdefault(res.available_until, {"added": [], "removed": []})[
                    "removed"
                ].append(rid)
        events = [
            PoolEvent(
                time=time,
                added=tuple(sorted(parts["added"])),
                removed=tuple(sorted(parts["removed"])),
            )
            for time, parts in changes.items()
        ]
        events.sort(key=lambda event: event.time)
        return events

    def snapshot(self, time: float) -> "ResourcePool":
        """A new pool containing only the resources available at ``time``.

        The copies keep their availability windows; the snapshot is mainly a
        convenience for what-if analyses.
        """
        pool = ResourcePool()
        for rid in self.available_at(time):
            pool.add(self._resources[rid])
        return pool

    def restricted_to(self, resource_ids: Sequence[str]) -> "ResourcePool":
        """A new pool containing only ``resource_ids`` (order preserved)."""
        pool = ResourcePool()
        for rid in resource_ids:
            pool.add(self._resources[rid])
        return pool

    def extended_with(self, resources: Iterable[Resource]) -> "ResourcePool":
        """A new pool with additional hypothetical resources (what-if support)."""
        pool = ResourcePool(self._resources.values())
        pool.add_many(resources)
        return pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourcePool(n={len(self._resources)})"
