"""Resource model: heterogeneous, dynamically changing grid resource pools.

The paper's grid model is a set of computation units ``R`` whose membership
changes over time (resources join/leave) and whose per-job speeds differ
(heterogeneity factor β).  This package provides:

* :class:`~repro.resources.resource.Resource` — a single computation unit,
* :class:`~repro.resources.pool.ResourcePool` — the time-varying pool,
* :class:`~repro.resources.dynamics.ResourceChangeModel` — the paper's
  (R, Δ, δ) change model generating join events,
* :class:`~repro.resources.reservation.ReservationBook` — advance
  reservations managed by the Executor's Resource Manager (paper §3.2).
"""

from repro.resources.resource import Resource
from repro.resources.pool import ResourcePool, PoolEvent
from repro.resources.dynamics import ResourceChangeModel, StaticResourceModel
from repro.resources.reservation import Reservation, ReservationBook, ReservationConflict

__all__ = [
    "Resource",
    "ResourcePool",
    "PoolEvent",
    "ResourceChangeModel",
    "StaticResourceModel",
    "Reservation",
    "ReservationBook",
    "ReservationConflict",
]
