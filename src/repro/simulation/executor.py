"""Grid executors built on the discrete-event kernel.

Two execution strategies are provided, mirroring the paper's experiment
design (§4.1):

* :class:`StaticScheduleExecutor` executes a planner-produced schedule.
  When a job finishes, its output file is transmitted *immediately* to the
  resources where its successors are scheduled (assumption 2 for static
  strategies).  A job starts once its resource has worked through the jobs
  scheduled before it and all its input files have arrived.  Actual job
  durations come from an ``actual_costs`` model, which defaults to the
  Planner's estimates (assumption 1: accurate estimation) but can be a
  perturbed model for performance-variance studies.

* :class:`JustInTimeExecutor` implements the dynamic strategy: a job is
  mapped only when it becomes ready, by a batch heuristic such as Min-Min,
  using whatever resources exist at that moment; input transfers begin only
  after the mapping decision.

Departure semantics
-------------------
The paper's evaluation only exercises resource *additions*; the executors
additionally honour departures (``Resource.available_until``, produced by
``leave_fraction`` dynamics and the scenario engine) end to end:

* a **running** job on a departing resource is *killed* at the departure
  instant: its partial execution is recorded as wasted work
  (:meth:`~repro.simulation.trace.ExecutionTrace.wasted_work`), a
  :class:`~repro.core.events.ResourcePoolChangeEvent` is published on the
  optional event bus (the Planner's reschedule signal), and the job is
  re-executed;
* a job whose scheduled resource departed **before it started** is
  *stranded* and likewise re-dispatched;
* a job finishing exactly at the departure instant completes normally.

How the re-execution happens is strategy-specific.  The static executor
applies its ``departure_policy``: ``"failover"`` (default) re-runs killed
and stranded jobs just-in-time on the surviving resource that can finish
them earliest — the honest baseline behaviour of grid middleware that
resubmits failed jobs without replanning — while ``"fail"`` raises
:class:`SimulationError`, for studies where a static plan losing a
resource is a hard failure.  The just-in-time executor simply returns the
job to the ready set and maps it again at the departure instant.

Data produced by a finished job remains retrievable after its resource
departs (outputs were already shipped under assumption 2; re-fetches are
priced with the same communication model).

Performance variance
--------------------
An optional ``perf_profile`` (see
:class:`~repro.scenarios.base.PerformanceProfile`) scales *actual* job
durations by the executing resource's slowdown factor at the job's start
time: ``duration = actual_costs.computation_cost(job, r) · factor(r,
start)``.  A job's speed is frozen at dispatch; factor changes affect jobs
started after the change.

Estimate error and the Performance Monitor
------------------------------------------
``actual_costs`` is where the uncertainty engine plugs in: passing a
:class:`~repro.workflow.costs.PerturbedCostModel` (an
:class:`~repro.workflow.costs.ErrorModel` sampled around the estimates)
makes the executor replay a stochastic ground truth while the schedule
being executed was still planned on the unperturbed estimates.  The
optional ``history`` parameter plays the paper's Performance Monitor:
every completed execution is recorded into the
:class:`~repro.core.history.PerformanceHistoryRepository` as
``(operation, resource, observed duration)``, feeding the Predictor's
re-estimation on subsequent (re)planning passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.events import EventBus, ResourcePoolChangeEvent
from repro.resources.pool import ResourcePool
from repro.scheduling.base import Schedule, TIME_EPS
from repro.scheduling.minmin import MinMinScheduler
from repro.simulation.event_core import Event, EventCore, EventKind, SimulationError
from repro.simulation.trace import ExecutionTrace, TransferRecord
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["StaticScheduleExecutor", "JustInTimeExecutor"]

#: Event priority of departure handlers: after same-time job finishes
#: (priority 0), so a job finishing exactly at the departure completes.
_DEPARTURE_PRIORITY = 1


class StaticScheduleExecutor:
    """Execute a static schedule event-by-event on the simulation kernel.

    Parameters
    ----------
    workflow, estimated_costs:
        The DAG and the cost model the schedule was planned with — used for
        file-transfer durations.
    schedule:
        The plan to execute.  Every workflow job must be assigned.
    pool:
        Resource pool; jobs can only run once their resource has joined,
        and departures kill/strand jobs as described in the module
        docstring.
    actual_costs:
        Model providing the *actual* job durations.  Defaults to
        ``estimated_costs`` (the paper's accurate-estimation assumption).
    perf_profile:
        Optional per-resource slowdown factors over time; scales actual
        durations at dispatch.
    departure_policy:
        ``"failover"`` (default) or ``"fail"`` — see the module docstring.
    event_bus:
        Optional :class:`~repro.core.events.EventBus`; departures that kill
        or strand work publish a ``ResourcePoolChangeEvent`` on it.
    """

    def __init__(
        self,
        workflow: Workflow,
        estimated_costs: CostModel,
        schedule: Schedule,
        pool: ResourcePool,
        *,
        actual_costs: Optional[CostModel] = None,
        strategy_name: str = "static",
        perf_profile=None,
        departure_policy: str = "failover",
        event_bus: Optional[EventBus] = None,
        history=None,
    ) -> None:
        missing = [job for job in workflow.jobs if job not in schedule]
        if missing:
            raise ValueError(f"schedule does not cover jobs: {missing}")
        if departure_policy not in ("failover", "fail"):
            raise ValueError(
                f"unknown departure_policy {departure_policy!r}; "
                "choose 'failover' or 'fail'"
            )
        self.workflow = workflow
        self.estimated_costs = estimated_costs
        self.actual_costs = actual_costs or estimated_costs
        self.schedule = schedule
        self.pool = pool
        self.strategy_name = strategy_name
        self.perf_profile = perf_profile
        self.departure_policy = departure_policy
        self.event_bus = event_bus
        self.history = history

    # ------------------------------------------------------------------
    def _duration(self, job: str, rid: str, start: float) -> float:
        duration = self.actual_costs.computation_cost(job, rid)
        if self.perf_profile is not None:
            duration *= self.perf_profile.factor_at(rid, start)
        return duration

    def _observe(self, job: str, rid: str, start: float, finish: float) -> None:
        """Report one completed execution to the Performance Monitor.

        The observed duration is normalised by the (known) performance
        factor at dispatch and stored with the Planner's prior estimate, so
        ratio-mode re-estimation sees the pure estimate error — the same
        semantics as the adaptive loop's monitor.
        """
        if self.history is None:
            return
        duration = finish - start
        if self.perf_profile is not None:
            factor = self.perf_profile.factor_at(rid, start)
            if factor != 1.0:
                duration /= factor
        self.history.record_execution(
            self.workflow.job(job).operation,
            rid,
            duration,
            job_id=job,
            finished_at=finish,
            estimated=self.estimated_costs.computation_cost(job, rid),
        )

    def run(self, *, core: Optional[EventCore] = None) -> ExecutionTrace:
        """Simulate the execution and return its trace."""
        engine = core or EventCore()
        trace = ExecutionTrace(
            workflow_name=self.workflow.name, strategy=self.strategy_name
        )

        # Duplicate copies (duplication-based strategies) are first-class
        # execution units: they occupy their booked slot in the per-resource
        # order, re-run their job's computation, and provide its output as
        # an additional data source — exactly what the plan booked its
        # consumers against.  A duplicate lost to a departure is simply
        # dropped (never failed over): the primary copy still guarantees
        # completion, consumers just wait for the slower source.
        duplicates = self.schedule.duplicates
        dup_preds: List[Tuple[str, ...]] = [
            tuple(self.workflow.predecessors(d.job_id)) for d in duplicates
        ]
        dup_started: Set[int] = set()
        dup_finished: Set[int] = set()
        #: (producer, dup index) -> earliest arrival of the producer's data
        #: on the duplicate's resource
        dup_arrivals: Dict[Tuple[str, int], float] = {}

        # per-resource execution order = schedule order by start time; units
        # are primary job ids (str) or duplicate indices (int)
        order_on_resource: Dict[str, List[object]] = {}
        units_by_resource: Dict[str, List[Tuple[float, float, str, object]]] = {}
        for assignment in self.schedule:
            units_by_resource.setdefault(assignment.resource_id, []).append(
                (assignment.start, assignment.finish, assignment.job_id, assignment.job_id)
            )
        for index, duplicate in enumerate(duplicates):
            units_by_resource.setdefault(duplicate.resource_id, []).append(
                (duplicate.start, duplicate.finish, duplicate.job_id, index)
            )
        for rid in sorted(units_by_resource):
            entries = sorted(units_by_resource[rid], key=lambda e: e[:3])
            order_on_resource[rid] = [entry[3] for entry in entries]
        next_index: Dict[str, int] = {rid: 0 for rid in order_on_resource}
        resource_free: Dict[str, float] = {}
        for rid in order_on_resource:
            if rid not in self.pool:
                raise ValueError(f"schedule uses unknown resource {rid!r}")
            resource_free[rid] = self.pool.resource(rid).available_from

        # data availability per edge: (producer, consumer) -> time at which the
        # edge's data is available on the consumer's scheduled resource.  The
        # data matrix is edge-specific (paper §3.4), so each dependency has
        # its own transfer.
        arrivals: Dict[Tuple[str, str], float] = {}
        started: Set[str] = set()
        finished: Set[str] = set()
        #: actual (resource, finish) of completed jobs, for failover re-fetches
        completed_on: Dict[str, Tuple[str, float]] = {}
        #: running job -> (finish event, resource, start)
        in_flight: Dict[str, Tuple[Event, str, float]] = {}
        #: jobs needing just-in-time failover, in strand/kill order
        failover_queue: List[str] = []
        departed: Set[str] = set()

        def data_ready(job: str, now: float) -> bool:
            for pred in self.workflow.predecessors(job):
                when = arrivals.get((pred, job))
                if when is None or when > now + TIME_EPS:
                    return False
            return True

        def dup_data_ready(index: int, now: float) -> bool:
            for pred in dup_preds[index]:
                when = dup_arrivals.get((pred, index))
                if when is None or when > now + TIME_EPS:
                    return False
            return True

        def launch(job: str, rid: str, start: float) -> None:
            duration = self._duration(job, rid, start)
            finish = start + duration
            started.add(job)
            resource_free[rid] = finish
            event = engine.post(
                finish,
                lambda j=job, r=rid, s=start, f=finish: on_finish(j, r, s, f),
                kind=EventKind.COMPLETION,
                label=f"finish:{job}",
            )
            in_flight[job] = (event, rid, start)

        def launch_dup(index: int, rid: str, start: float) -> None:
            job = duplicates[index].job_id
            duration = self._duration(job, rid, start)
            finish = start + duration
            dup_started.add(index)
            resource_free[rid] = finish
            event = engine.post(
                finish,
                lambda i=index, r=rid, s=start, f=finish: on_dup_finish(i, r, s, f),
                kind=EventKind.COMPLETION,
                label=f"finish-dup:{job}",
            )
            in_flight[("dup", index)] = (event, rid, start)

        def try_dispatch() -> None:
            now = engine.now
            for rid, order in order_on_resource.items():
                if rid in departed:
                    continue
                idx = next_index[rid]
                if idx >= len(order):
                    continue
                unit = order[idx]
                if resource_free[rid] > now + TIME_EPS:
                    continue
                # not joined yet, or departing at this very instant — the
                # departure handler will strand the remaining order
                if not self.pool.resource(rid).is_available_at(now):
                    continue
                if isinstance(unit, int):
                    if not dup_data_ready(unit, now):
                        continue
                    next_index[rid] += 1
                    launch_dup(unit, rid, max(now, resource_free[rid]))
                    continue
                if unit in started:
                    continue
                if not data_ready(unit, now):
                    continue
                next_index[rid] += 1
                launch(unit, rid, max(now, resource_free[rid]))
            try_failover()

        def try_failover() -> None:
            """Re-dispatch killed/stranded jobs just-in-time on survivors."""
            now = engine.now
            progress = True
            while failover_queue and progress:
                progress = False
                for job in list(failover_queue):
                    preds = self.workflow.predecessors(job)
                    if any(pred not in finished for pred in preds):
                        continue
                    survivors = [
                        rid for rid in self.pool.available_at(now) if rid not in departed
                    ]
                    if not survivors:
                        raise SimulationError(
                            f"no resources left to fail {job!r} over to at {now}"
                        )
                    # earliest-finish placement: inputs re-fetched from the
                    # producers' actual locations at dispatch time.
                    best: Optional[Tuple[float, float, str]] = None
                    for rid in survivors:
                        ready = max(now, resource_free.get(rid, 0.0),
                                    self.pool.resource(rid).available_from)
                        for pred in preds:
                            src, pred_finish = completed_on[pred]
                            transfer = self.estimated_costs.communication_cost(
                                pred, job, src, rid
                            )
                            ready = max(ready, max(pred_finish, now) + transfer)
                        finish = ready + self._duration(job, rid, ready)
                        if best is None or finish < best[0] - TIME_EPS:
                            best = (finish, ready, rid)
                    assert best is not None
                    _, start, rid = best
                    for pred in preds:
                        src, pred_finish = completed_on[pred]
                        transfer = self.estimated_costs.communication_cost(
                            pred, job, src, rid
                        )
                        if transfer > 0:
                            trace.record_transfer(
                                TransferRecord(
                                    pred, job, src, rid, max(pred_finish, now),
                                    max(pred_finish, now) + transfer,
                                )
                            )
                    failover_queue.remove(job)
                    if start <= now + TIME_EPS:
                        launch(job, rid, start)
                    else:
                        # the input re-fetch is still in flight: the target
                        # stays free for its own scheduled work until the
                        # data lands, then the job starts (or re-queues if
                        # the target departed in the meantime)
                        def arrive(j=job, r=rid):
                            at = engine.now
                            if r in departed or not self.pool.resource(r).is_available_at(at):
                                failover_queue.append(j)
                                try_failover()
                                return
                            launch(j, r, max(at, resource_free.get(r, 0.0)))

                        engine.post(
                            start,
                            arrive,
                            kind=EventKind.TRANSFER,
                            label=f"failover:{job}",
                        )
                    progress = True

        def ship_to_consumer_dups(producer: str, src: str, finish: float) -> None:
            """Feed a finished copy of ``producer`` to waiting duplicates."""
            for index, duplicate in enumerate(duplicates):
                if index in dup_started or index in dup_finished:
                    continue
                if producer not in dup_preds[index]:
                    continue
                target = duplicate.resource_id
                if target in departed:
                    continue
                transfer = self.estimated_costs.communication_cost(
                    producer, duplicate.job_id, src, target
                )
                arrival = finish + transfer
                key = (producer, index)
                current = dup_arrivals.get(key)
                if current is None or arrival < current - TIME_EPS:
                    dup_arrivals[key] = arrival
                    if arrival > engine.now + TIME_EPS:
                        engine.post(
                            arrival,
                            try_dispatch,
                            kind=EventKind.TRANSFER,
                            label=f"arrival:{producer}->dup",
                        )

        def on_finish(job: str, rid: str, start: float, finish: float) -> None:
            finished.add(job)
            in_flight.pop(job, None)
            completed_on[job] = (rid, finish)
            trace.record_job(job, rid, start, finish)
            self._observe(job, rid, start, finish)
            # ship each output immediately to the successor's scheduled resource
            for succ in self.workflow.successors(job):
                target = self.schedule.resource_of(succ)
                until = self.pool.resource(target).available_until
                if target in departed or (until is not None and finish >= until - TIME_EPS):
                    # the target already left the grid: no transfer happens;
                    # the stranded successor re-fetches inputs at failover
                    continue
                transfer = self.estimated_costs.communication_cost(job, succ, rid, target)
                arrival = finish + transfer
                current = arrivals.get((job, succ))
                if current is not None and current <= arrival + TIME_EPS:
                    continue  # a duplicate copy already provides the data sooner
                arrivals[(job, succ)] = arrival
                if transfer > 0:
                    trace.record_transfer(
                        TransferRecord(job, succ, rid, target, finish, arrival)
                    )
                    engine.post(
                        arrival,
                        try_dispatch,
                        kind=EventKind.TRANSFER,
                        label=f"arrival:{job}->{succ}",
                    )
            ship_to_consumer_dups(job, rid, finish)
            try_dispatch()

        def on_dup_finish(index: int, rid: str, start: float, finish: float) -> None:
            duplicate = duplicates[index]
            job = duplicate.job_id
            dup_finished.add(index)
            in_flight.pop(("dup", index), None)
            trace.record_duplicate(job, rid, start, finish)
            # the duplicate's output is one more data source for the job's
            # consumers — possibly earlier (and local) relative to the
            # primary copy, which is exactly why the plan booked it
            for succ in self.workflow.successors(job):
                target = self.schedule.resource_of(succ)
                until = self.pool.resource(target).available_until
                if target in departed or (until is not None and finish >= until - TIME_EPS):
                    continue
                transfer = self.estimated_costs.communication_cost(job, succ, rid, target)
                arrival = finish + transfer
                current = arrivals.get((job, succ))
                if current is None or arrival < current - TIME_EPS:
                    arrivals[(job, succ)] = arrival
                    if arrival > engine.now + TIME_EPS:
                        engine.post(
                            arrival,
                            try_dispatch,
                            kind=EventKind.TRANSFER,
                            label=f"arrival:dup-{job}->{succ}",
                        )
            ship_to_consumer_dups(job, rid, finish)
            try_dispatch()

        def on_departure(removed: Tuple[str, ...]) -> None:
            now = engine.now
            impacted: List[str] = []
            removed_set = set(removed)
            departed.update(removed_set)
            # Kill the running jobs on *any* removed resource — including
            # failover targets that never appeared in the original schedule.
            for unit, (event, job_rid, start) in list(in_flight.items()):
                if job_rid not in removed_set:
                    continue
                event.cancel()
                del in_flight[unit]
                if isinstance(unit, tuple):
                    # a running duplicate dies with its resource: the partial
                    # re-execution is wasted work, but the primary copy still
                    # guarantees completion, so nothing fails over
                    index = unit[1]
                    dup_started.discard(index)
                    if start < now - TIME_EPS:
                        trace.record_kill(duplicates[index].job_id, job_rid, start, now)
                    continue
                job = unit
                started.discard(job)
                if start < now - TIME_EPS:
                    # execution actually began: its partial run is wasted
                    trace.record_kill(job, job_rid, start, now)
                # a launch whose start still lies in the future (input
                # transfer under way) is silently re-queued — no work done
                impacted.append(job)
                failover_queue.append(job)
            # Strand the not-yet-started remainder of each scheduled order;
            # stranded duplicates are dropped, never failed over.
            for rid in removed_set:
                order = order_on_resource.get(rid)
                if order is None:
                    continue
                stranded = [
                    job
                    for job in order[next_index[rid]:]
                    if isinstance(job, str)
                    and job not in started
                    and job not in finished
                ]
                next_index[rid] = len(order)
                impacted.extend(stranded)
                failover_queue.extend(stranded)
            if impacted and self.departure_policy == "fail":
                raise SimulationError(
                    f"resources {sorted(set(removed))} departed at {now} with "
                    f"work assigned (jobs {impacted}); departure_policy='fail'"
                )
            if impacted and self.event_bus is not None:
                self.event_bus.publish(
                    ResourcePoolChangeEvent(time=now, removed=tuple(removed))
                )
            try_dispatch()

        # pool-change events: joins unblock dispatch, departures kill/strand
        for event in self.pool.events():
            if event.removed:
                engine.post(
                    event.time,
                    lambda removed=event.removed: on_departure(removed),
                    kind=EventKind.POOL_CHANGE,
                    priority=_DEPARTURE_PRIORITY,
                    label="pool-departure",
                )
            if event.added:
                engine.post(
                    event.time,
                    try_dispatch,
                    kind=EventKind.POOL_CHANGE,
                    label="pool-change",
                )

        engine.post(engine.now, try_dispatch, label="bootstrap")
        engine.run()

        if len(finished) != self.workflow.num_jobs:
            missing = sorted(set(self.workflow.jobs) - finished)
            raise SimulationError(
                f"execution stalled; unfinished jobs: {missing[:10]}"
                + ("..." if len(missing) > 10 else "")
            )
        return trace


class JustInTimeExecutor:
    """Dynamic just-in-time execution with a batch mapping heuristic.

    Jobs are mapped only when they become ready.  The mapper (default
    Min-Min) sees the resource pool as of the decision time, so it can use
    newly joined resources — yet, as the paper observes, it still loses
    badly to plan-ahead strategies on data-intensive workflows because
    transfers start late and decisions are local.

    Departures kill running jobs on the departing resource (wasted work)
    and return them to the ready set; the next dispatch maps them again on
    the surviving pool.  ``perf_profile`` scales actual durations as in
    :class:`StaticScheduleExecutor`.
    """

    def __init__(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        mapper=None,
        actual_costs: Optional[CostModel] = None,
        strategy_name: Optional[str] = None,
        perf_profile=None,
        event_bus: Optional[EventBus] = None,
        history=None,
    ) -> None:
        self.workflow = workflow
        self.costs = costs
        self.actual_costs = actual_costs or costs
        self.pool = pool
        self.mapper = mapper or MinMinScheduler()
        self.strategy_name = strategy_name or getattr(self.mapper, "name", "dynamic")
        self.perf_profile = perf_profile
        self.event_bus = event_bus
        self.history = history

    # ------------------------------------------------------------------
    def _duration(self, job: str, rid: str, start: float) -> float:
        duration = self.actual_costs.computation_cost(job, rid)
        if self.perf_profile is not None:
            duration *= self.perf_profile.factor_at(rid, start)
        return duration

    def _observe(self, job: str, rid: str, start: float, finish: float) -> None:
        """Report one completed execution to the Performance Monitor.

        Normalised and estimate-stamped exactly like
        :meth:`StaticScheduleExecutor._observe`, so every monitor writes
        the same semantics into a shared history repository.
        """
        if self.history is None:
            return
        duration = finish - start
        if self.perf_profile is not None:
            factor = self.perf_profile.factor_at(rid, start)
            if factor != 1.0:
                duration /= factor
        self.history.record_execution(
            self.workflow.job(job).operation,
            rid,
            duration,
            job_id=job,
            finished_at=finish,
            estimated=self.costs.computation_cost(job, rid),
        )

    def run(self, *, core: Optional[EventCore] = None) -> ExecutionTrace:
        engine = core or EventCore()
        trace = ExecutionTrace(
            workflow_name=self.workflow.name, strategy=self.strategy_name
        )

        finished: Set[str] = set()
        mapped: Set[str] = set()
        data_location: Dict[str, str] = {}
        resource_free: Dict[str, float] = {}
        #: running job -> (finish event, resource, start)
        in_flight: Dict[str, Tuple[Event, str, float]] = {}

        def ready_jobs() -> List[str]:
            out = []
            for job in self.workflow.jobs:
                if job in mapped or job in finished:
                    continue
                if all(pred in finished for pred in self.workflow.predecessors(job)):
                    out.append(job)
            return out

        def dispatch() -> None:
            now = engine.now
            batch = ready_jobs()
            if not batch:
                return
            resources = self.pool.available_at(now)
            if not resources:
                raise SimulationError(f"no resources available at time {now}")
            free = {
                rid: max(
                    resource_free.get(rid, 0.0),
                    self.pool.resource(rid).available_from,
                )
                for rid in resources
            }
            # the just-in-time mapper sees *current* resource speeds, the
            # same information the adaptive Planner replans with
            estimates = self.costs
            if self.perf_profile is not None:
                estimates = self.perf_profile.scaled_costs(self.costs, now)
            assignments = self.mapper.map_ready_jobs(
                batch,
                self.workflow,
                estimates,
                resources,
                clock=now,
                resource_free=free,
                data_location=data_location,
            )
            for planned in assignments:
                mapped.add(planned.job_id)
                # With accurate estimates the planned start is already
                # feasible; with perturbed actual costs (or a slowdown
                # factor) the resource may still be busy, so the start is
                # pushed back accordingly.
                start = max(planned.start, resource_free.get(planned.resource_id, 0.0))
                duration = self._duration(planned.job_id, planned.resource_id, start)
                finish = start + duration
                resource_free[planned.resource_id] = finish
                # record input transfers initiated at the decision time
                for pred in self.workflow.predecessors(planned.job_id):
                    src = data_location[pred]
                    transfer = self.costs.communication_cost(
                        pred, planned.job_id, src, planned.resource_id
                    )
                    if transfer > 0:
                        trace.record_transfer(
                            TransferRecord(
                                pred,
                                planned.job_id,
                                src,
                                planned.resource_id,
                                now,
                                now + transfer,
                            )
                        )
                event = engine.post(
                    finish,
                    lambda a=planned, s=start, f=finish: on_finish(a.job_id, a.resource_id, s, f),
                    kind=EventKind.COMPLETION,
                    label=f"finish:{planned.job_id}",
                )
                in_flight[planned.job_id] = (event, planned.resource_id, start)

        def on_finish(job: str, rid: str, start: float, finish: float) -> None:
            finished.add(job)
            in_flight.pop(job, None)
            data_location[job] = rid
            trace.record_job(job, rid, start, finish)
            self._observe(job, rid, start, finish)
            dispatch()

        def on_departure(removed: Tuple[str, ...]) -> None:
            now = engine.now
            removed_set = set(removed)
            killed: List[str] = []
            for job, (event, rid, start) in list(in_flight.items()):
                if rid not in removed_set:
                    continue
                event.cancel()
                del in_flight[job]
                mapped.discard(job)
                if start < now - TIME_EPS:
                    # execution actually began: its partial run is wasted
                    trace.record_kill(job, rid, start, now)
                # a mapping whose start still lies in the future (input
                # transfer under way) is silently re-queued — no work done
                killed.append(job)
            if killed and self.event_bus is not None:
                self.event_bus.publish(
                    ResourcePoolChangeEvent(time=now, removed=tuple(removed))
                )
            if killed:
                dispatch()

        for event in self.pool.events():
            if event.removed:
                engine.post(
                    event.time,
                    lambda removed=event.removed: on_departure(removed),
                    kind=EventKind.POOL_CHANGE,
                    priority=_DEPARTURE_PRIORITY,
                    label="pool-departure",
                )

        engine.post(engine.now, dispatch, label="bootstrap")
        engine.run()

        if len(finished) != self.workflow.num_jobs:
            missing = sorted(set(self.workflow.jobs) - finished)
            raise SimulationError(
                f"dynamic execution stalled; unfinished jobs: {missing[:10]}"
            )
        return trace
