"""Grid executors built on the discrete-event kernel.

Two execution strategies are provided, mirroring the paper's experiment
design (§4.1):

* :class:`StaticScheduleExecutor` executes a planner-produced schedule.
  When a job finishes, its output file is transmitted *immediately* to the
  resources where its successors are scheduled (assumption 2 for static
  strategies).  A job starts once its resource has worked through the jobs
  scheduled before it and all its input files have arrived.  Actual job
  durations come from an ``actual_costs`` model, which defaults to the
  Planner's estimates (assumption 1: accurate estimation) but can be a
  perturbed model for performance-variance studies.

* :class:`JustInTimeExecutor` implements the dynamic strategy: a job is
  mapped only when it becomes ready, by a batch heuristic such as Min-Min,
  using whatever resources exist at that moment; input transfers begin only
  after the mapping decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.resources.pool import ResourcePool
from repro.scheduling.base import Schedule, TIME_EPS
from repro.scheduling.minmin import MinMinScheduler
from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.trace import ExecutionTrace, TransferRecord
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["StaticScheduleExecutor", "JustInTimeExecutor"]


class StaticScheduleExecutor:
    """Execute a static schedule event-by-event on the simulation kernel.

    Parameters
    ----------
    workflow, estimated_costs:
        The DAG and the cost model the schedule was planned with — used for
        file-transfer durations.
    schedule:
        The plan to execute.  Every workflow job must be assigned.
    pool:
        Resource pool; jobs can only run once their resource has joined.
    actual_costs:
        Model providing the *actual* job durations.  Defaults to
        ``estimated_costs`` (the paper's accurate-estimation assumption).
    """

    def __init__(
        self,
        workflow: Workflow,
        estimated_costs: CostModel,
        schedule: Schedule,
        pool: ResourcePool,
        *,
        actual_costs: Optional[CostModel] = None,
        strategy_name: str = "static",
    ) -> None:
        missing = [job for job in workflow.jobs if job not in schedule]
        if missing:
            raise ValueError(f"schedule does not cover jobs: {missing}")
        self.workflow = workflow
        self.estimated_costs = estimated_costs
        self.actual_costs = actual_costs or estimated_costs
        self.schedule = schedule
        self.pool = pool
        self.strategy_name = strategy_name

    # ------------------------------------------------------------------
    def run(self, *, engine: Optional[SimulationEngine] = None) -> ExecutionTrace:
        """Simulate the execution and return its trace."""
        engine = engine or SimulationEngine()
        trace = ExecutionTrace(
            workflow_name=self.workflow.name, strategy=self.strategy_name
        )

        # per-resource execution order = schedule order by start time
        order_on_resource: Dict[str, List[str]] = {}
        for rid in self.schedule.resources_used():
            order_on_resource[rid] = [
                a.job_id for a in self.schedule.assignments_on(rid)
            ]
        next_index: Dict[str, int] = {rid: 0 for rid in order_on_resource}
        resource_free: Dict[str, float] = {}
        for rid in order_on_resource:
            if rid not in self.pool:
                raise ValueError(f"schedule uses unknown resource {rid!r}")
            resource_free[rid] = self.pool.resource(rid).available_from

        # data availability per edge: (producer, consumer) -> time at which the
        # edge's data is available on the consumer's scheduled resource.  The
        # data matrix is edge-specific (paper §3.4), so each dependency has
        # its own transfer.
        arrivals: Dict[Tuple[str, str], float] = {}
        started: Set[str] = set()
        finished: Set[str] = set()

        def data_ready(job: str, now: float) -> bool:
            for pred in self.workflow.predecessors(job):
                when = arrivals.get((pred, job))
                if when is None or when > now + TIME_EPS:
                    return False
            return True

        def try_dispatch() -> None:
            now = engine.now
            for rid, order in order_on_resource.items():
                idx = next_index[rid]
                if idx >= len(order):
                    continue
                job = order[idx]
                if job in started:
                    continue
                if resource_free[rid] > now + TIME_EPS:
                    continue
                if not data_ready(job, now):
                    continue
                start = max(now, resource_free[rid])
                duration = self.actual_costs.computation_cost(job, rid)
                finish = start + duration
                started.add(job)
                next_index[rid] += 1
                resource_free[rid] = finish
                engine.schedule_at(finish, lambda j=job, r=rid, s=start, f=finish: on_finish(j, r, s, f), label=f"finish:{job}")

        def on_finish(job: str, rid: str, start: float, finish: float) -> None:
            finished.add(job)
            trace.record_job(job, rid, start, finish)
            # ship each output immediately to the successor's scheduled resource
            for succ in self.workflow.successors(job):
                target = self.schedule.resource_of(succ)
                transfer = self.estimated_costs.communication_cost(job, succ, rid, target)
                arrival = finish + transfer
                arrivals[(job, succ)] = arrival
                if transfer > 0:
                    trace.record_transfer(
                        TransferRecord(job, succ, rid, target, finish, arrival)
                    )
                    engine.schedule_at(arrival, try_dispatch, label=f"arrival:{job}->{succ}")
            try_dispatch()

        # resources joining later unblock dispatch
        for event in self.pool.events():
            engine.schedule_at(event.time, try_dispatch, label="pool-change")

        engine.schedule_at(engine.now, try_dispatch, label="bootstrap")
        engine.run()

        if len(finished) != self.workflow.num_jobs:
            missing = sorted(set(self.workflow.jobs) - finished)
            raise SimulationError(
                f"execution stalled; unfinished jobs: {missing[:10]}"
                + ("..." if len(missing) > 10 else "")
            )
        return trace


class JustInTimeExecutor:
    """Dynamic just-in-time execution with a batch mapping heuristic.

    Jobs are mapped only when they become ready.  The mapper (default
    Min-Min) sees the resource pool as of the decision time, so it can use
    newly joined resources — yet, as the paper observes, it still loses
    badly to plan-ahead strategies on data-intensive workflows because
    transfers start late and decisions are local.
    """

    def __init__(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        mapper=None,
        actual_costs: Optional[CostModel] = None,
        strategy_name: Optional[str] = None,
    ) -> None:
        self.workflow = workflow
        self.costs = costs
        self.actual_costs = actual_costs or costs
        self.pool = pool
        self.mapper = mapper or MinMinScheduler()
        self.strategy_name = strategy_name or getattr(self.mapper, "name", "dynamic")

    # ------------------------------------------------------------------
    def run(self, *, engine: Optional[SimulationEngine] = None) -> ExecutionTrace:
        engine = engine or SimulationEngine()
        trace = ExecutionTrace(
            workflow_name=self.workflow.name, strategy=self.strategy_name
        )

        finished: Set[str] = set()
        mapped: Set[str] = set()
        data_location: Dict[str, str] = {}
        resource_free: Dict[str, float] = {}

        def ready_jobs() -> List[str]:
            out = []
            for job in self.workflow.jobs:
                if job in mapped or job in finished:
                    continue
                if all(pred in finished for pred in self.workflow.predecessors(job)):
                    out.append(job)
            return out

        def dispatch() -> None:
            now = engine.now
            batch = ready_jobs()
            if not batch:
                return
            resources = self.pool.available_at(now)
            if not resources:
                raise SimulationError(f"no resources available at time {now}")
            free = {
                rid: max(
                    resource_free.get(rid, 0.0),
                    self.pool.resource(rid).available_from,
                )
                for rid in resources
            }
            assignments = self.mapper.map_ready_jobs(
                batch,
                self.workflow,
                self.costs,
                resources,
                clock=now,
                resource_free=free,
                data_location=data_location,
            )
            for planned in assignments:
                mapped.add(planned.job_id)
                duration = self.actual_costs.computation_cost(
                    planned.job_id, planned.resource_id
                )
                # With accurate estimates the planned start is already
                # feasible; with perturbed actual costs the resource may
                # still be busy, so the start is pushed back accordingly.
                start = max(planned.start, resource_free.get(planned.resource_id, 0.0))
                finish = start + duration
                resource_free[planned.resource_id] = finish
                # record input transfers initiated at the decision time
                for pred in self.workflow.predecessors(planned.job_id):
                    src = data_location[pred]
                    transfer = self.costs.communication_cost(
                        pred, planned.job_id, src, planned.resource_id
                    )
                    if transfer > 0:
                        trace.record_transfer(
                            TransferRecord(
                                pred,
                                planned.job_id,
                                src,
                                planned.resource_id,
                                now,
                                now + transfer,
                            )
                        )
                engine.schedule_at(
                    finish,
                    lambda a=planned, s=start, f=finish: on_finish(a.job_id, a.resource_id, s, f),
                    label=f"finish:{planned.job_id}",
                )

        def on_finish(job: str, rid: str, start: float, finish: float) -> None:
            finished.add(job)
            data_location[job] = rid
            trace.record_job(job, rid, start, finish)
            dispatch()

        engine.schedule_at(engine.now, dispatch, label="bootstrap")
        engine.run()

        if len(finished) != self.workflow.num_jobs:
            missing = sorted(set(self.workflow.jobs) - finished)
            raise SimulationError(
                f"dynamic execution stalled; unfinished jobs: {missing[:10]}"
            )
        return trace
