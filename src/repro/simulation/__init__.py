"""Discrete-event simulation substrate.

The paper runs its evaluation on SimJava, a Java event-driven simulation
framework.  This package is the Python substitute: a single discrete-event
kernel of typed events (:mod:`~repro.simulation.event_core`) plus grid
executors built on it (:mod:`~repro.simulation.executor`):

* :class:`~repro.simulation.executor.StaticScheduleExecutor` — plays a
  planner-produced schedule forward in time, modelling job execution and
  output-file transfers (the Executor of paper Fig. 1 running a static
  plan),
* :class:`~repro.simulation.executor.JustInTimeExecutor` — the dynamic
  strategy: maps each batch of ready jobs with Min-Min (or another batch
  heuristic) at the moment it becomes ready,
* :class:`~repro.simulation.shared_grid.SharedGridExecutor` — the
  multi-tenant executor: concurrent workflow streams from several tenants
  book slots on the *same* resource timelines, with per-tenant AHEFT
  replanning against the shared residual capacity.

Execution produces an :class:`~repro.simulation.trace.ExecutionTrace`
recording actual start/finish times, file transfers and the makespan.
"""

from repro.simulation.event_core import (
    Event,
    EventCore,
    EventKind,
    SimulationEngine,
    SimulationError,
)
from repro.simulation.executor import JustInTimeExecutor, StaticScheduleExecutor
from repro.simulation.shared_grid import (
    SharedGridExecutor,
    SharedGridResult,
    WorkflowOutcome,
)
from repro.simulation.trace import ExecutionTrace, TransferRecord, render_gantt

__all__ = [
    "Event",
    "EventCore",
    "EventKind",
    "SimulationEngine",
    "SimulationError",
    "StaticScheduleExecutor",
    "JustInTimeExecutor",
    "SharedGridExecutor",
    "SharedGridResult",
    "WorkflowOutcome",
    "ExecutionTrace",
    "TransferRecord",
    "render_gantt",
]
