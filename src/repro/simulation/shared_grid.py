"""Shared-grid execution of multi-tenant workflow streams.

:class:`SharedGridExecutor` drives a
:class:`~repro.core.multi_tenant.MultiTenantPlanner` through time: workflow
arrivals (a :class:`~repro.workload.streams.WorkloadStream`'s output), the
shared pool's membership events, and performance-profile changes are merged
into one chronological trigger sequence, and every tenant books slots on
the *same* resource timelines.

Execution is analytic, like the paper's treatment of static and adaptive
strategies under accurate estimates: an adopted booking *is* the execution
(jobs start and finish exactly as booked), so the only events on the
shared :class:`~repro.simulation.event_core.EventCore` are the sources of
surprise — grid events at priority 0, same-instant arrivals behind them —
and the planner absorbs each by replanning.  Departures kill
running jobs across all tenants (wasted work is attributed to the tenant
that lost it) and force the affected workflows to re-book on survivors.

The result records one :class:`WorkflowOutcome` per arrival with the
multi-tenancy metrics of the scheduling literature: **flow time**
(completion − arrival), **stretch** (flow time relative to the span the
workflow was predicted to need alone on the pool it arrived to), kills and
wasted work.  :meth:`SharedGridResult.shared_timelines` rebuilds the joint
timelines from every tenant's final schedule and raises if two tenants ever
held the same slot — the cross-tenant exclusivity invariant the test suite
checks (for scenarios without performance changes; see
:mod:`repro.core.multi_tenant` for the perf-repair approximation).

Stochastic ground truth
-----------------------
An optional ``error_model`` (:class:`~repro.workflow.costs.ErrorModel`)
replays every tenant's final bookings with sampled *actual* durations
after planning completes: bookings are reservations (a job never starts
before its booked slot), and deviations push it — and everything queued
behind it on the shared resource, across tenants — later.  Each
workflow's truth is namespaced by its key, so two tenants running the
same DAG draw independent actuals.  ``completed_at`` then reports the
achieved completion (flow time and stretch become actual metrics) and
:attr:`WorkflowOutcome.actual_schedule` carries the replayed timeline.
With a null error model the replay reproduces the booked times bit for
bit.  Known approximation, matching the planner's: the replay does not
re-kill work a deviation pushes past a later departure — the planner
already replanned at the departure based on booked times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.core.credit import CreditLedger
from repro.resources.pool import ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import Assignment, ResourceTimeline, Schedule, TIME_EPS
from repro.simulation.event_core import EventCore, EventKind
from repro.workflow.costs import ErrorModel, PerturbedCostModel
from repro.workload.streams import WorkflowArrival

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.adaptive import ReschedulingDecision

__all__ = ["SharedGridExecutor", "SharedGridResult", "WorkflowOutcome"]

#: Event priority of workflow arrivals: after the same-instant grid event,
#: so newcomers are admitted against the updated residual capacity.
_ARRIVAL_PRIORITY = 1


@dataclass(frozen=True)
class WorkflowOutcome:
    """Final record of one workflow's run on the shared grid."""

    key: str
    tenant: str
    kind: str
    seq: int
    arrival_time: float
    completed_at: float
    #: predicted span had the workflow run alone on the pool it arrived to
    dedicated_span: float
    schedule: Schedule
    decisions: List["ReschedulingDecision"] = field(default_factory=list)
    wasted_work: float = 0.0
    killed_jobs: int = 0
    #: the replayed actual timeline when an error model sampled the truth
    actual_schedule: Optional[Schedule] = None
    #: absolute completion deadline (``None`` when the tenant set none)
    deadline: Optional[float] = None
    #: stretch SLO target (``None`` when the tenant set none)
    slo_stretch: Optional[float] = None

    @property
    def flow_time(self) -> float:
        """Time from submission to completion (sojourn time)."""
        return self.completed_at - self.arrival_time

    @property
    def stretch(self) -> float:
        """Flow time relative to the dedicated-grid span (1.0 = no slowdown)."""
        if self.dedicated_span <= TIME_EPS:
            return 1.0
        return self.flow_time / self.dedicated_span

    @property
    def reschedule_count(self) -> int:
        return sum(1 for decision in self.decisions if decision.adopted)

    @property
    def deadline_violated(self) -> bool:
        return self.deadline is not None and self.completed_at > self.deadline + TIME_EPS

    @property
    def slo_violated(self) -> bool:
        return self.slo_stretch is not None and self.stretch > self.slo_stretch + TIME_EPS


@dataclass
class SharedGridResult:
    """Everything a multi-tenant run produced, per workflow."""

    policy: str
    outcomes: List[WorkflowOutcome]
    #: admit/defer/reject log (empty when admission control was off)
    admission: List[AdmissionDecision] = field(default_factory=list)
    #: final per-tenant credit scores (empty when no ledger was attached)
    credits: Dict[str, float] = field(default_factory=dict)

    def tenants(self) -> List[str]:
        """Tenant names in first-arrival order."""
        seen: List[str] = []
        for outcome in self.outcomes:
            if outcome.tenant not in seen:
                seen.append(outcome.tenant)
        return seen

    def for_tenant(self, tenant: str) -> List[WorkflowOutcome]:
        return [outcome for outcome in self.outcomes if outcome.tenant == tenant]

    def makespan(self) -> float:
        """Completion time of the last workflow (0.0 for an empty run)."""
        return max((outcome.completed_at for outcome in self.outcomes), default=0.0)

    def total_wasted_work(self) -> float:
        return sum(outcome.wasted_work for outcome in self.outcomes)

    def total_killed_jobs(self) -> int:
        return sum(outcome.killed_jobs for outcome in self.outcomes)

    @property
    def rejected_count(self) -> int:
        """Workflows turned away outright by admission control."""
        return sum(1 for d in self.admission if d.action == "reject")

    @property
    def deferral_count(self) -> int:
        """Failed admission offers (one arrival may defer several times)."""
        return sum(1 for d in self.admission if d.action == "defer")

    def rejected_keys(self) -> List[str]:
        return [d.key for d in self.admission if d.action == "reject"]

    def deadline_violations(self) -> int:
        return sum(1 for o in self.outcomes if o.deadline_violated)

    def slo_violations(self) -> int:
        return sum(1 for o in self.outcomes if o.slo_violated)

    def shared_timelines(self) -> Dict[str, ResourceTimeline]:
        """The joint per-resource timelines of every tenant's final schedule.

        Booking every assignment of every workflow onto one timeline per
        resource re-checks the shared-grid exclusivity invariant:
        :meth:`~repro.scheduling.base.ResourceTimeline.occupy` raises
        ``ValueError`` if two workflows ever held overlapping slots.
        """
        timelines: Dict[str, ResourceTimeline] = {}
        for outcome in self.outcomes:
            for assignment in outcome.schedule.all_assignments():
                timeline = timelines.get(assignment.resource_id)
                if timeline is None:
                    timeline = ResourceTimeline(assignment.resource_id)
                    timelines[assignment.resource_id] = timeline
                timeline.occupy(
                    assignment.start,
                    assignment.finish,
                    f"{outcome.key}:{assignment.job_id}",
                )
        return timelines


class SharedGridExecutor:
    """Run a multi-tenant arrival stream on one shared resource pool.

    Parameters
    ----------
    arrivals:
        The workflow arrivals (any order; processed chronologically with
        the stream's ``seq`` as the FIFO tiebreak).
    pool:
        The shared pool — plain, or a materialised scenario's pool whose
        availability windows encode joins and departures.
    perf_profile:
        Optional scenario performance profile shared by all tenants.
    policy, tenant_weights, scheduler_factory, strategy,
    accept_only_if_better, epsilon:
        Forwarded to :class:`~repro.core.multi_tenant.MultiTenantPlanner`;
        ``strategy`` names any registered scheduler with the
        ``reschedule`` interface, making the whole shared grid replan
        with that heuristic instead of AHEFT.
    admission:
        ``None``/``False`` (default) admits every arrival as before.
        ``True`` or an :class:`~repro.core.admission.AdmissionConfig`
        puts an :class:`~repro.core.admission.AdmissionController` in
        front of the planner: overloaded arrivals are deferred to the
        next predicted capacity-release point (earliest incumbent
        completion or pool change) and rejected after ``max_deferrals``
        failed offers.  The decision log lands in
        :attr:`SharedGridResult.admission`.
    credit_ledger:
        Optional :class:`~repro.core.credit.CreditLedger` shared with the
        planner (the ``credit_drf`` policy creates one automatically);
        final scores land in :attr:`SharedGridResult.credits`.

    Trigger semantics at one instant: grid events are handled first (the
    incumbents re-book around the change), then same-instant arrivals are
    admitted in ``seq`` order against the updated residual capacity;
    re-offered (deferred) arrivals queue behind first offers at the same
    instant in posting order.  An arrival that finds the pool momentarily
    empty is deferred to the next pool change with capacity even without
    admission control — only a grid with no future capacity at all still
    raises.
    """

    def __init__(
        self,
        arrivals: Sequence[WorkflowArrival],
        pool: ResourcePool,
        *,
        perf_profile=None,
        policy: str = "fifo",
        tenant_weights: Optional[Dict[str, float]] = None,
        scheduler_factory: Optional[Callable[[], AHEFTScheduler]] = None,
        strategy: Optional[str] = None,
        accept_only_if_better: bool = True,
        epsilon: float = 1e-9,
        error_model: Optional[ErrorModel] = None,
        admission: Optional[AdmissionConfig] = None,
        credit_ledger: Optional[CreditLedger] = None,
    ) -> None:
        from repro import _deprecation

        _deprecation.warn_once(
            "SharedGridExecutor",
            "constructing SharedGridExecutor directly is deprecated; call "
            "repro.run(arrivals, pool, mode='multi') instead (bit-identical "
            "result via .raw)",
        )
        self.arrivals = sorted(arrivals, key=lambda a: (a.time, a.seq, a.key))
        self.pool = pool
        self.perf_profile = perf_profile
        self.policy = policy
        self.tenant_weights = tenant_weights
        self.scheduler_factory = scheduler_factory
        self.strategy = strategy
        self.accept_only_if_better = accept_only_if_better
        self.epsilon = epsilon
        self.error_model = error_model
        if admission is True:
            admission = AdmissionConfig()
        elif admission is False:
            admission = None
        self.admission = admission
        self.credit_ledger = credit_ledger

    # ------------------------------------------------------------------
    # deferral retry points
    # ------------------------------------------------------------------
    def _next_capacity_time(self, clock: float) -> Optional[float]:
        """The next pool-change instant at which capacity exists again."""
        for time in sorted({event.time for event in self.pool.events()}):
            if time > clock + TIME_EPS and self.pool.available_at(time):
                return time
        return None

    def _next_retry_time(self, planner, clock: float) -> Optional[float]:
        """When a deferred arrival should be re-offered to the grid.

        The earliest point at which the residual capacity can grow: an
        incumbent workflow's predicted completion or the next pool
        membership change — whichever comes first.  ``None`` means the
        grid will never look different (rejection is final).
        """
        if not self.pool.available_at(clock):
            return self._next_capacity_time(clock)
        candidates = [
            wf.schedule.makespan()
            for wf in planner.workflows()
            if wf.completed_at is None and wf.schedule.makespan() > clock + TIME_EPS
        ]
        next_event = self._next_capacity_time(clock)
        if next_event is not None:
            candidates.append(next_event)
        return min(candidates) if candidates else None

    def run(self) -> SharedGridResult:
        # imported here: repro.core.adaptive itself imports the simulation
        # package, so a module-level import would be circular
        from repro.core.adaptive import _merge_triggers
        from repro.core.multi_tenant import MultiTenantPlanner

        planner = MultiTenantPlanner(
            self.pool,
            perf_profile=self.perf_profile,
            policy=self.policy,
            tenant_weights=self.tenant_weights,
            scheduler_factory=self.scheduler_factory,
            strategy=self.strategy,
            accept_only_if_better=self.accept_only_if_better,
            epsilon=self.epsilon,
            credit_ledger=self.credit_ledger,
        )
        # merged, not last-writer-wins: two same-instant pool events (legal
        # after a ComposedScenario merge or with a custom pool) must both
        # contribute their added/removed sets
        triggers, _ = _merge_triggers(self.pool.events(), self.perf_profile)
        controller = (
            AdmissionController(self.admission) if self.admission is not None else None
        )

        # One instant on the shared event core: the grid event first
        # (priority 0 — incumbents re-book around the change), then the
        # same-instant arrivals in seq order (priority 1, insertion order).
        core = EventCore()
        for clock, trigger in triggers.items():
            core.post(
                clock,
                lambda c=clock, e=trigger: planner.handle_event(c, e),
                kind=EventKind.POOL_CHANGE if trigger is not None else EventKind.PERF_CHANGE,
                label="grid-event",
            )

        def defer(arrival: WorkflowArrival, retry: float) -> None:
            core.post(
                retry,
                lambda: offer(arrival),
                kind=EventKind.ARRIVAL,
                priority=_ARRIVAL_PRIORITY,
                label=f"deferred:{arrival.key}",
            )

        def offer(arrival: WorkflowArrival) -> None:
            clock = core.now
            if controller is None:
                if not self.pool.available_at(clock):
                    retry = self._next_capacity_time(clock)
                    if retry is None:
                        raise ValueError(
                            f"no resources available at arrival time {clock}"
                            " and none joining later"
                        )
                    defer(arrival, retry)
                    return
                planner.admit(arrival, clock)
                return
            retry = self._next_retry_time(planner, clock)
            action, planned = controller.evaluate(
                planner, arrival, clock, can_defer=retry is not None
            )
            if action == "admit":
                planner.register(arrival, clock, planned)
            elif action == "defer":
                defer(arrival, retry)

        for arrival in self.arrivals:
            core.post(
                arrival.time,
                lambda a=arrival: offer(a),
                kind=EventKind.ARRIVAL,
                priority=_ARRIVAL_PRIORITY,
                label=f"arrival:{arrival.key}",
            )
        core.run()

        workflows = planner.finalize()
        actuals: Dict[str, Schedule] = {}
        if self.error_model is not None:
            actuals = _replay_shared_actuals(
                workflows, self.error_model, self.perf_profile
            )
        outcomes = []
        for wf in workflows:
            actual_schedule = actuals.get(wf.key)
            completed_at = (
                actual_schedule.makespan()
                if actual_schedule is not None
                else wf.completed_at
            )
            outcomes.append(
                WorkflowOutcome(
                    key=wf.key,
                    tenant=wf.tenant,
                    kind=wf.kind,
                    seq=wf.seq,
                    arrival_time=wf.arrival_time,
                    completed_at=completed_at,
                    dedicated_span=wf.dedicated_span,
                    schedule=wf.schedule,
                    decisions=list(wf.decisions),
                    wasted_work=wf.wasted_work,
                    killed_jobs=len(wf.killed_jobs),
                    actual_schedule=actual_schedule,
                    deadline=wf.deadline,
                    slo_stretch=wf.slo_stretch,
                )
            )
        outcomes.sort(key=lambda outcome: outcome.seq)
        return SharedGridResult(
            policy=self.policy,
            outcomes=outcomes,
            admission=list(controller.decisions) if controller is not None else [],
            credits=planner.credit.credits() if planner.credit is not None else {},
        )


def _replay_shared_actuals(
    workflows: Sequence, error_model: ErrorModel, perf_profile
) -> Dict[str, Schedule]:
    """Replay every tenant's final bookings with sampled actual durations.

    All bookings share the per-resource timelines: jobs execute in booked
    order per resource, each starting at its booked time unless the
    resource is still busy (an earlier booking — possibly another
    tenant's — overran) or its own predecessors' outputs have not arrived.
    Durations come from the workflow's scoped
    :class:`~repro.workflow.costs.PerturbedCostModel`, scaled by the
    performance factor at the actual start (speed frozen at dispatch).
    Returns the actual :class:`~repro.scheduling.base.Schedule` per
    workflow key.
    """
    truths: Dict[str, PerturbedCostModel] = {}
    #: (start, finish, seq, topo_index, workflow, assignment)
    entries: List[Tuple[float, float, int, int, object, object]] = []
    for wf in workflows:
        scope = f"{error_model.scope}/{wf.key}" if error_model.scope else wf.key
        truths[wf.key] = PerturbedCostModel(wf.costs, error_model.scoped(scope))
        topo_index = {
            job: index for index, job in enumerate(wf.workflow.topological_order())
        }
        for assignment in wf.schedule:
            entries.append(
                (
                    assignment.start,
                    assignment.finish,
                    wf.seq,
                    topo_index[assignment.job_id],
                    wf,
                    assignment,
                )
            )
    entries.sort(key=lambda entry: entry[:4])

    free: Dict[str, float] = {}
    actual: Dict[Tuple[str, str], Assignment] = {}
    for _, _, _, _, wf, booked in entries:
        job = booked.job_id
        rid = booked.resource_id
        truth = truths[wf.key]
        ready = max(booked.start, free.get(rid, 0.0))
        for pred in wf.workflow.predecessors(job):
            pred_actual = actual.get((wf.key, pred))
            if pred_actual is None:
                # a zero-duration booking tie put the predecessor later in
                # the sort; its booked times are then already its actuals
                pred_actual = wf.schedule.get(pred)
            transfer = truth.communication_cost(
                pred, job, pred_actual.resource_id, rid
            )
            arrival = pred_actual.finish + transfer
            if arrival > ready:
                ready = arrival
        duration = truth.computation_cost(job, rid)
        if perf_profile is not None:
            duration *= perf_profile.factor_at(rid, ready)
        placed = Assignment(job, rid, ready, ready + duration)
        actual[(wf.key, job)] = placed
        if placed.finish > free.get(rid, 0.0):
            free[rid] = placed.finish

    schedules: Dict[str, Schedule] = {}
    for wf in workflows:
        schedule = Schedule(name=f"{wf.key}-actual")
        for assignment in wf.schedule:
            schedule.add(actual[(wf.key, assignment.job_id)])
        schedules[wf.key] = schedule
    return schedules
