"""A minimal discrete-event simulation kernel.

This is the SimJava substitute: a priority queue of timestamped events, a
logical clock and a run loop.  Events are plain callbacks; determinism is
guaranteed by breaking time ties with (priority, insertion sequence).

The kernel is intentionally small — the grid executors in
:mod:`repro.simulation.executor` provide the domain behaviour — but it is a
genuine event-driven core: callbacks may schedule further events, the clock
never moves backwards, and the run can be bounded by time or event count.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["SimulationEngine", "SimulationError", "ScheduledEvent"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, exceeding limits)."""


@dataclass(order=True)
class ScheduledEvent:
    """Internal heap entry: ordered by (time, priority, sequence)."""

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class SimulationEngine:
    """Discrete-event simulation engine with a logical clock.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> seen = []
    >>> _ = engine.schedule_at(5.0, lambda: seen.append(engine.now))
    >>> _ = engine.schedule_at(2.0, lambda: seen.append(engine.now))
    >>> engine.run()
    >>> seen
    [2.0, 5.0]
    """

    def __init__(self, *, start_time: float = 0.0, max_events: int = 10_000_000) -> None:
        self._now = float(start_time)
        self._queue: List[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._max_events = int(max_events)
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current logical time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is in the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = ScheduledEvent(
            time=float(max(time, self._now)),
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def peek_next_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if queue empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; return ``False`` if none remained."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if self._processed >= self._max_events:
                raise SimulationError(
                    f"exceeded the maximum of {self._max_events} events; "
                    "likely a runaway event loop"
                )
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, *, until: Optional[float] = None) -> float:
        """Run until the queue drains, ``stop()`` is called or ``until`` passes.

        Returns the final logical time.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek_next_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
        finally:
            self._running = False
        return self._now
