"""The single discrete-event core every execution path runs on.

This module is the one engine of the repository (it absorbed the earlier
``repro.simulation.engine``): a heap of *typed* events — job completions,
workflow arrivals, scenario joins/leaves/performance changes, deviation
triggers, replan decisions — drained by a logical clock.  The four
execution paths (static schedule replay, just-in-time mapping, the
adaptive rescheduling loop of paper Fig. 2 and the multi-tenant shared
grid) are thin policies over this core: each posts its triggers as typed
events and reacts in handlers; none owns a private replay loop.

Determinism contract
--------------------
Events are executed in ``(time, priority, sequence)`` order:

* strictly earlier ``time`` first;
* at the **same timestamp**, lower ``priority`` first (e.g. a job
  finishing exactly at a departure instant completes *before* the
  departure kills the resource's queue);
* at the same timestamp *and* priority, **insertion order** (``sequence``
  is a monotone counter) — so same-time workflow arrivals are admitted in
  submission order, and re-posted handlers never overtake older ones.

The clock never moves backwards: posting an event before the current
logical time raises :class:`SimulationError` (events injected out of
order are a programming error, not something to silently reorder).

Instrumentation
---------------
``EventCore.instrument()`` arms process-wide counters that split wall
time spent *inside the core's dispatch machinery* (heap pushes/pops,
bookkeeping) from time spent in the handlers themselves.  The
``event_core_overhead`` benchmark uses this to gate the engine's overhead
against the pure policy cost (≤10% on the 1000-job adaptive case).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "Event",
    "EventCore",
    "EventKind",
    "ScheduledEvent",
    "SimulationEngine",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, exceeding limits)."""


class EventKind(enum.Enum):
    """The event vocabulary shared by every execution path."""

    #: a job (or duplicate copy) finishing on its resource
    COMPLETION = "completion"
    #: a workflow submitted to the grid (multi-tenant arrival streams)
    ARRIVAL = "arrival"
    #: resources joining / leaving / changing speed (scenario events)
    POOL_CHANGE = "pool_change"
    PERF_CHANGE = "perf_change"
    #: a data transfer landing on a consumer's resource
    TRANSFER = "transfer"
    #: an observed completion missing its booking beyond the threshold
    DEVIATION = "deviation"
    #: a (re)planning decision point of the adaptive loop
    REPLAN = "replan"
    #: untyped bootstrap/plumbing callbacks
    GENERIC = "generic"


@dataclass(order=True)
class Event:
    """Heap entry: ordered by ``(time, priority, sequence)``.

    The comparison fields define the determinism contract documented in
    the module docstring; ``kind``, ``callback`` and ``label`` never
    influence ordering.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    kind: EventKind = field(compare=False, default=EventKind.GENERIC)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


#: backwards-compatible alias for the pre-refactor name
ScheduledEvent = Event


class EventCore:
    """Discrete-event engine with a logical clock and typed events.

    Examples
    --------
    >>> core = EventCore()
    >>> seen = []
    >>> _ = core.post(5.0, lambda: seen.append(core.now))
    >>> _ = core.post(2.0, lambda: seen.append(core.now))
    >>> core.run()
    >>> seen
    [2.0, 5.0]
    """

    #: process-wide instrumentation switch + counters (see :meth:`instrument`)
    _instrumented: bool = False
    stats: Dict[str, float] = {
        "events": 0,
        "dispatch_seconds": 0.0,
        "handler_seconds": 0.0,
    }

    def __init__(self, *, start_time: float = 0.0, max_events: int = 10_000_000) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._max_events = int(max_events)
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    @classmethod
    def instrument(cls, enabled: bool = True) -> None:
        """Toggle dispatch-overhead instrumentation and reset the counters."""
        cls._instrumented = bool(enabled)
        cls.stats = {"events": 0, "dispatch_seconds": 0.0, "handler_seconds": 0.0}

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current logical time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def post(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.GENERIC,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Post a typed event at absolute ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies before the current logical time (out-of-order
            injection).
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(
            time=float(max(time, self._now)),
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
            kind=kind,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule an untyped callback at absolute ``time`` (legacy API)."""
        return self.post(time, callback, priority=priority, label=label)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.post(self._now + delay, callback, priority=priority, label=label)

    def peek_next_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if queue empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; return ``False`` if none remained."""
        if EventCore._instrumented:
            return self._step_instrumented()
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                continue
            # check the limit before popping: the event that trips it must
            # stay visible to post-mortem pending_events()/peek_next_time()
            if self._processed >= self._max_events:
                raise SimulationError(
                    f"exceeded the maximum of {self._max_events} events; "
                    "likely a runaway event loop"
                )
            event = heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def _step_instrumented(self) -> bool:
        """As :meth:`step`, splitting dispatch time from handler time."""
        t0 = _time.perf_counter()
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                continue
            if self._processed >= self._max_events:
                raise SimulationError(
                    f"exceeded the maximum of {self._max_events} events; "
                    "likely a runaway event loop"
                )
            event = heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            t1 = _time.perf_counter()
            event.callback()
            t2 = _time.perf_counter()
            stats = EventCore.stats
            stats["events"] += 1
            stats["dispatch_seconds"] += t1 - t0
            stats["handler_seconds"] += t2 - t1
            return True
        stats = EventCore.stats
        stats["dispatch_seconds"] += _time.perf_counter() - t0
        return False

    def run(self, *, until: Optional[float] = None) -> float:
        """Run until the queue drains, ``stop()`` is called or ``until`` passes.

        Returns the final logical time.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek_next_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    # clamp: the clock never moves backwards, even when the
                    # caller passes an ``until`` earlier than logical now
                    self._now = max(self._now, until)
                    break
                self.step()
        finally:
            self._running = False
        return self._now


#: backwards-compatible alias: the pre-refactor engine class name
SimulationEngine = EventCore
