"""Execution traces: what actually happened when a workflow ran.

An :class:`ExecutionTrace` records, per job, the resource it executed on and
its actual start/finish times, plus every output-file transfer, plus a log
of notable events (rescheduling decisions, pool changes).  It is the object
the Performance Monitor hands back to the Planner and the object the
experiment harness extracts metrics from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.scheduling.base import Assignment, Schedule

__all__ = ["TransferRecord", "TraceEvent", "KillRecord", "ExecutionTrace", "render_gantt"]


@dataclass(frozen=True)
class TransferRecord:
    """One output-file transfer between resources."""

    producer: str
    consumer: str
    source_resource: str
    target_resource: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class TraceEvent:
    """A notable run-time event (pool change, rescheduling decision, ...)."""

    time: float
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class KillRecord:
    """A job killed mid-execution because its resource departed the grid.

    ``killed_at - start`` is the execution time thrown away — the *wasted
    work* metric of the adversarial-scenario experiments.  The job itself
    re-runs elsewhere and appears in ``assignments`` with its final,
    successful execution.
    """

    job_id: str
    resource_id: str
    start: float
    killed_at: float

    @property
    def wasted(self) -> float:
        return self.killed_at - self.start


@dataclass
class ExecutionTrace:
    """Actual execution record of one workflow run."""

    workflow_name: str = "workflow"
    strategy: str = "unknown"
    assignments: Dict[str, Assignment] = field(default_factory=dict)
    transfers: List[TransferRecord] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    kills: List[KillRecord] = field(default_factory=list)
    #: redundant executions performed by duplication-based strategies; a
    #: job's canonical record stays in ``assignments``
    duplicates: List[Assignment] = field(default_factory=list)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_job(self, job_id: str, resource_id: str, start: float, finish: float) -> None:
        self.assignments[job_id] = Assignment(job_id, resource_id, start, finish)

    def record_duplicate(
        self, job_id: str, resource_id: str, start: float, finish: float
    ) -> None:
        self.duplicates.append(Assignment(job_id, resource_id, start, finish))

    def record_transfer(self, record: TransferRecord) -> None:
        self.transfers.append(record)

    def record_event(self, time: float, kind: str, detail: str = "") -> None:
        self.events.append(TraceEvent(time=time, kind=kind, detail=detail))

    def record_kill(
        self, job_id: str, resource_id: str, start: float, killed_at: float
    ) -> None:
        self.kills.append(KillRecord(job_id, resource_id, start, killed_at))
        self.events.append(
            TraceEvent(
                time=killed_at,
                kind="job-killed",
                detail=f"{job_id} on departed {resource_id}",
            )
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Actual makespan — the latest actual finish time (paper Eq. 4)."""
        if not self.assignments:
            return 0.0
        return max(a.finish for a in self.assignments.values())

    def actual_start(self, job_id: str) -> float:
        return self.assignments[job_id].start

    def actual_finish(self, job_id: str) -> float:
        return self.assignments[job_id].finish

    def resource_of(self, job_id: str) -> str:
        return self.assignments[job_id].resource_id

    def resources_used(self) -> List[str]:
        return sorted({a.resource_id for a in self.assignments.values()})

    def jobs(self) -> List[str]:
        return list(self.assignments.keys())

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def rescheduling_count(self) -> int:
        """Number of adopted rescheduling decisions recorded in the trace."""
        return len(self.events_of_kind("reschedule-adopted"))

    def total_transfer_time(self) -> float:
        return sum(t.duration for t in self.transfers)

    def wasted_work(self) -> float:
        """Total execution time thrown away by departure kills."""
        return sum(kill.wasted for kill in self.kills)

    def resource_busy_time(self, resource_id: str) -> float:
        return sum(
            a.duration for a in self.assignments.values() if a.resource_id == resource_id
        )

    def utilisation(self, resource_id: str) -> float:
        """Busy fraction of a resource over the trace's makespan."""
        span = self.makespan()
        if span <= 0:
            return 0.0
        return self.resource_busy_time(resource_id) / span

    def to_schedule(self, *, name: Optional[str] = None) -> Schedule:
        """Convert the trace to a :class:`Schedule` of actual times."""
        schedule = Schedule(name=name or f"{self.strategy}-actual")
        schedule.extend(self.assignments.values())
        for duplicate in self.duplicates:
            schedule.add_duplicate(duplicate)
        return schedule

    def to_rows(self) -> List[Tuple[str, str, float, float]]:
        """``(resource, job, start, finish)`` rows sorted for display."""
        rows = [
            (a.resource_id, a.job_id, a.start, a.finish)
            for a in self.assignments.values()
        ]
        rows.sort(key=lambda row: (row[0], row[2], row[1]))
        return rows


def render_gantt(
    schedule_or_trace,
    *,
    width: int = 72,
    resources: Optional[List[str]] = None,
) -> str:
    """ASCII Gantt chart of a schedule or trace (one row per resource).

    Intended for examples and debugging output; rendering never affects
    simulation results.
    """
    if isinstance(schedule_or_trace, ExecutionTrace):
        rows = schedule_or_trace.to_rows()
        span = schedule_or_trace.makespan()
    else:
        rows = schedule_or_trace.gantt_rows()
        span = schedule_or_trace.makespan()
    if span <= 0 or not rows:
        return "(empty schedule)"
    by_resource: Dict[str, List[Tuple[str, float, float]]] = {}
    for resource, job, start, finish in rows:
        by_resource.setdefault(resource, []).append((job, start, finish))
    resource_ids = resources or sorted(by_resource)
    lines = []
    scale = width / span
    for rid in resource_ids:
        bar = [" "] * width
        for job, start, finish in by_resource.get(rid, []):
            left = min(width - 1, int(start * scale))
            right = min(width, max(left + 1, int(finish * scale)))
            token = (job[-1] if job else "#")
            for pos in range(left, right):
                bar[pos] = token
        lines.append(f"{rid:>8} |{''.join(bar)}|")
    lines.append(f"{'':>8}  0{'':{width - 10}}{span:>8.1f}")
    return "\n".join(lines)
