"""Evaluation metrics.

The paper reports average makespans and the *improvement rate* of AHEFT over
HEFT.  This module also provides the standard DAG-scheduling metrics (SLR,
speedup, utilisation) used in the broader literature and by the extension
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.scheduling.base import Schedule
from repro.workflow.analysis import critical_path_length
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "average",
    "percentile",
    "exceedance_rate",
    "improvement_rate",
    "jain_fairness_index",
    "makespan_statistics",
    "schedule_length_ratio",
    "speedup",
    "resource_utilisation",
    "MakespanStatistics",
]


def average(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return float(np.mean(values))


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation; 0.0 when empty).

    ``q = 0`` and ``q = 100`` return the minimum and maximum exactly.  An
    out-of-range ``q`` raises :class:`ValueError` regardless of the input —
    validating after the empty-input shortcut used to let ``percentile([],
    250)`` silently return 0.0, masking caller bugs on empty slices.

    Used for the tail metrics of the multi-tenant experiments (e.g. the
    95th-percentile flow time).
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    values = list(values)
    if not values:
        return 0.0
    if q == 0:
        return float(min(values))
    if q == 100:
        return float(max(values))
    return float(np.percentile(np.asarray(values, dtype=float), q))


def exceedance_rate(values: Iterable[float], limit: float) -> float:
    """Fraction of ``values`` strictly above ``limit`` (0.0 when empty).

    The overload experiments report this over achieved stretches — the
    share of workflows whose service blew the configured stretch limit.
    """
    values = list(values)
    if not values:
        return 0.0
    return sum(1 for v in values if v > limit) / len(values)


def jain_fairness_index(values: Iterable[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)``.

    1.0 when every tenant receives identical service, approaching ``1/n``
    when one tenant monopolises the grid.  Defined as 1.0 for empty input
    or all-zero allocations (nothing was distributed unfairly).
    """
    values = [float(v) for v in values]
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("fairness index is defined for non-negative values")
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def improvement_rate(baseline: float, improved: float) -> float:
    """Relative makespan reduction of ``improved`` over ``baseline``.

    Matches the paper's "improvement rate": ``(HEFT − AHEFT) / HEFT``.
    Returns 0 when the baseline is zero.
    """
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline


@dataclass(frozen=True)
class MakespanStatistics:
    """Summary statistics over a set of makespans.

    ``ci95_low``/``ci95_high`` bound the normal-approximation 95% confidence
    interval of the mean (``mean ± 1.96 · s/√n`` with the sample standard
    deviation ``s``); with fewer than two samples the interval collapses to
    the mean.  ``std`` stays the population standard deviation for backward
    compatibility with the existing ledgers.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci95_low: float = 0.0
    ci95_high: float = 0.0

    @property
    def ci95_half(self) -> float:
        """Half-width of the 95% confidence interval of the mean."""
        return (self.ci95_high - self.ci95_low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"n={self.count}, mean={self.mean:.1f}, std={self.std:.1f}, "
            f"min={self.minimum:.1f}, max={self.maximum:.1f}, "
            f"ci95=[{self.ci95_low:.1f}, {self.ci95_high:.1f}]"
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly form for the benchmark ledgers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "ci95_low": self.ci95_low,
            "ci95_high": self.ci95_high,
        }


#: normal-approximation z for a two-sided 95% confidence interval
_Z_95 = 1.959963984540054


def makespan_statistics(makespans: Sequence[float]) -> MakespanStatistics:
    """Summarise a collection of makespans (or any replicated metric)."""
    if not makespans:
        return MakespanStatistics(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
    array = np.asarray(list(makespans), dtype=float)
    mean = float(array.mean())
    if array.size > 1:
        half = _Z_95 * float(array.std(ddof=1)) / float(np.sqrt(array.size))
    else:
        half = 0.0
    return MakespanStatistics(
        count=int(array.size),
        mean=mean,
        std=float(array.std()),
        minimum=float(array.min()),
        maximum=float(array.max()),
        ci95_low=mean - half,
        ci95_high=mean + half,
    )


def schedule_length_ratio(
    workflow: Workflow,
    costs: CostModel,
    makespan: float,
    resources: Sequence[str],
) -> float:
    """SLR: makespan normalised by the minimum-cost critical path length.

    An SLR of 1 would mean the schedule is as short as the critical path
    executed on the fastest resources with free communication — the usual
    lower-bound normalisation in the HEFT literature.

    An empty ``resources`` pool has no defined lower bound; 0.0 is returned,
    matching the other metrics' empty-input convention (``critical_path_length``
    would otherwise silently fall back to *average* costs, mispricing the
    bound instead of flagging the degenerate input).
    """
    if not resources:
        return 0.0
    lower_bound = critical_path_length(
        workflow,
        costs,
        resources,
        include_communication=False,
        minimum_costs=True,
    )
    if lower_bound <= 0:
        return 0.0
    return makespan / lower_bound


def speedup(
    workflow: Workflow,
    costs: CostModel,
    makespan: float,
    resources: Sequence[str],
) -> float:
    """Sequential-execution time on the single best resource over the makespan.

    Returns 0.0 for an empty ``resources`` pool (no sequential baseline
    exists), matching the other metrics' empty-input convention instead of
    letting ``min()`` raise a bare ``ValueError`` from an empty generator.
    """
    if makespan <= 0 or not resources:
        return 0.0
    best_sequential = min(
        sum(costs.computation_cost(job, rid) for job in workflow.jobs)
        for rid in resources
    )
    return best_sequential / makespan


def resource_utilisation(schedule: Schedule, resources: Sequence[str]) -> Dict[str, float]:
    """Busy fraction of every resource over the schedule's makespan.

    Counts *all* work booked on a resource — primary assignments and
    duplicate copies placed by duplication strategies alike.  Summing
    ``assignments_on`` only would make ``heft_dup``'s extra copies invisible
    and understate busy fractions (the same bug class as the multi-tenant
    ``consumed_time`` fix).
    """
    span = schedule.makespan()
    out: Dict[str, float] = {rid: 0.0 for rid in resources}
    if span <= 0:
        return out
    for assignment in schedule.all_assignments():
        if assignment.resource_id in out:
            out[assignment.resource_id] += assignment.duration
    return {rid: busy / span for rid, busy in out.items()}
