"""Run one experiment case under the competing strategies.

A *case* is a priced workflow (:class:`~repro.generators.costs.WorkflowCase`)
plus a resource-change model.  :func:`run_case` evaluates the strategies the
paper compares — static HEFT, adaptive AHEFT and dynamic Min-Min — and
returns their makespans together with the improvement rate of AHEFT over
HEFT, which is the paper's headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments.metrics import improvement_rate
from repro.facade import RunResult, run as facade_run
from repro.generators.costs import WorkflowCase
from repro.resources.dynamics import ResourceChangeModel, StaticResourceModel
from repro.resources.pool import ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.baselines import MaxMinScheduler, SufferageScheduler
from repro.scheduling.heft import HEFTScheduler
from repro.scheduling.minmin import MinMinScheduler

__all__ = [
    "ExperimentCase",
    "CaseResult",
    "run_case",
    "run_case_batch",
    "available_strategy_names",
    "resolve_strategy_runner",
    "STRATEGY_RUNNERS",
]

#: strategy name -> runner(workflow, costs, pool, **kwargs) -> RunResult
#: (``perf_profile=...`` is forwarded for scenario runs).  These legacy
#: capitalised names predate the scheduling registry and are kept because
#: committed benchmark baselines key on them; every *registry* name
#: (``heft``, ``cpop``, ``heft_dup``, ...) resolves through
#: :func:`resolve_strategy_runner` as well, plus the ``adaptive:<name>``
#: prefix that runs any replanning-capable strategy inside the adaptive
#: loop (the AHEFT ablation hook).
STRATEGY_RUNNERS: Dict[str, Callable] = {
    "HEFT": lambda wf, costs, pool, **kw: facade_run(
        wf, pool, mode="static", costs=costs, strategy=HEFTScheduler(), **kw
    ),
    "AHEFT": lambda wf, costs, pool, **kw: facade_run(
        wf, pool, mode="adaptive", costs=costs, strategy=AHEFTScheduler(), **kw
    ),
    "MinMin": lambda wf, costs, pool, **kw: facade_run(
        wf, pool, mode="dynamic", costs=costs, strategy=MinMinScheduler(), **kw
    ),
    "MaxMin": lambda wf, costs, pool, **kw: facade_run(
        wf, pool, mode="dynamic", costs=costs, strategy=MaxMinScheduler(), **kw
    ),
    "Sufferage": lambda wf, costs, pool, **kw: facade_run(
        wf, pool, mode="dynamic", costs=costs, strategy=SufferageScheduler(), **kw
    ),
    "AHEFT-always": lambda wf, costs, pool, **kw: facade_run(
        wf,
        pool,
        mode="adaptive",
        costs=costs,
        strategy=AHEFTScheduler(),
        accept_only_if_better=False,
        **kw,
    ),
}

#: prefix that forces a registry strategy through the adaptive loop
ADAPTIVE_PREFIX = "adaptive:"


def resolve_strategy_runner(name: str) -> Callable:
    """Runner for a legacy name, a registry name, or ``adaptive:<name>``."""
    if name in STRATEGY_RUNNERS:
        return STRATEGY_RUNNERS[name]
    from repro.scheduling.registry import SCHEDULERS

    base = name
    force_adaptive = False
    if name.startswith(ADAPTIVE_PREFIX):
        base = name[len(ADAPTIVE_PREFIX):]
        force_adaptive = True
    info = SCHEDULERS.get(base)
    if info is None:
        raise KeyError(
            f"unknown strategy {name!r}; available: {available_strategy_names()}"
        )
    if force_adaptive or info.kind == "adaptive":
        from repro.scheduling.registry import make_scheduler

        if not hasattr(make_scheduler(base), "reschedule"):
            # reject at resolution time so callers (the CLI in particular)
            # fail fast instead of crashing mid-sweep
            raise KeyError(
                f"strategy {name!r}: {base!r} cannot replan "
                "(no reschedule interface)"
            )
        mode = "adaptive"
    else:
        mode = info.kind
    return lambda wf, costs, pool, **kw: facade_run(
        wf, pool, mode=mode, costs=costs, strategy=base, **kw
    )


def available_strategy_names() -> List[str]:
    """Every name :func:`resolve_strategy_runner` accepts (prefix aside)."""
    from repro.scheduling.registry import available_schedulers

    return sorted(set(STRATEGY_RUNNERS) | set(available_schedulers()))


@dataclass
class ExperimentCase:
    """One workload instance paired with its resource dynamics.

    ``resource_model`` provides the initial pool size (the paper's ``R``)
    and, when no ``scenario`` is set, the full pool dynamics.  With a
    ``scenario`` the scenario engine materialises the dynamics instead:
    the pool, the departure schedule and the performance profile all come
    from ``materialize(scenario, initial_size=R, seed=scenario_seed)``.
    """

    case: WorkflowCase
    resource_model: ResourceChangeModel | StaticResourceModel
    label: str = ""
    scenario: Optional[object] = None
    scenario_seed: int = 0

    @property
    def initial_size(self) -> int:
        if isinstance(self.resource_model, ResourceChangeModel):
            return self.resource_model.initial_size
        return self.resource_model.size

    def build_pool(self) -> ResourcePool:
        if self.scenario is not None:
            return self.build_scenario_run().pool
        return self.resource_model.build_pool()

    def build_scenario_run(self):
        """Materialise the scenario into a pool + performance profile."""
        if self.scenario is None:
            raise ValueError("experiment case has no scenario")
        from repro.scenarios import materialize

        return materialize(
            self.scenario, initial_size=self.initial_size, seed=self.scenario_seed
        )

    def params(self) -> Dict[str, object]:
        params = dict(self.case.params)
        params["resources"] = self.initial_size
        if self.scenario is not None:
            # the scenario drives the dynamics: report *its* parameters, not
            # the inactive (R, Δ, δ) settings of the resource model
            params["scenario"] = getattr(self.scenario, "name", str(self.scenario))
            params["scenario_params"] = self.scenario.params()
            params["scenario_seed"] = self.scenario_seed
        elif isinstance(self.resource_model, ResourceChangeModel):
            params.update(
                {
                    "interval": self.resource_model.interval,
                    "fraction": self.resource_model.fraction,
                }
            )
        return params


@dataclass
class CaseResult:
    """Makespans (and recovery metrics) of every strategy on one case."""

    params: Dict[str, object]
    makespans: Dict[str, float]
    rescheduling_counts: Dict[str, int] = field(default_factory=dict)
    wasted_work: Dict[str, float] = field(default_factory=dict)
    killed_jobs: Dict[str, int] = field(default_factory=dict)

    def makespan(self, strategy: str) -> float:
        return self.makespans[strategy]

    def improvement(self, baseline: str = "HEFT", improved: str = "AHEFT") -> float:
        """Improvement rate of ``improved`` over ``baseline`` on this case."""
        if baseline not in self.makespans or improved not in self.makespans:
            raise KeyError(
                f"strategies {baseline!r}/{improved!r} not present; "
                f"available: {sorted(self.makespans)}"
            )
        return improvement_rate(self.makespans[baseline], self.makespans[improved])

    def strategies(self) -> List[str]:
        return list(self.makespans.keys())


def run_case(
    experiment: ExperimentCase,
    *,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    runners: Optional[Mapping[str, Callable]] = None,
    error_model=None,
) -> CaseResult:
    """Evaluate one case under the requested strategies.

    Each strategy gets its own freshly built resource pool from the case's
    resource model, so strategies never interfere with each other.  With an
    ``error_model`` (see :class:`~repro.workflow.costs.ErrorModel`) every
    strategy executes against the *same* sampled ground-truth durations
    while planning on the unperturbed estimates — the estimate-error
    dimension of the uncertainty experiments.
    """
    if runners is None:
        runners = {name: resolve_strategy_runner(name) for name in strategies}
    else:
        runners = dict(runners)
        unknown = [s for s in strategies if s not in runners]
        if unknown:
            raise KeyError(
                f"unknown strategies: {unknown}; available: {sorted(runners)}"
            )

    makespans: Dict[str, float] = {}
    rescheduling_counts: Dict[str, int] = {}
    wasted_work: Dict[str, float] = {}
    killed_jobs: Dict[str, int] = {}
    extra: Dict[str, object] = {}
    if error_model is not None:
        extra["error_model"] = error_model
    for strategy in strategies:
        if experiment.scenario is not None:
            scenario_run = experiment.build_scenario_run()
            result: RunResult = runners[strategy](
                experiment.case.workflow,
                experiment.case.costs,
                scenario_run.pool,
                perf_profile=scenario_run.profile,
                **extra,
            )
        else:
            pool = experiment.build_pool()
            result = runners[strategy](
                experiment.case.workflow, experiment.case.costs, pool, **extra
            )
        makespans[strategy] = result.makespan
        rescheduling_counts[strategy] = result.rescheduling_count
        wasted_work[strategy] = getattr(result, "wasted_work", 0.0)
        killed_jobs[strategy] = getattr(result, "killed_jobs", 0)
    params = experiment.params()
    if error_model is not None:
        params["error_model"] = error_model.name
        params["error_magnitude"] = error_model.magnitude
        params["replication"] = error_model.replication
    return CaseResult(
        params=params,
        makespans=makespans,
        rescheduling_counts=rescheduling_counts,
        wasted_work=wasted_work,
        killed_jobs=killed_jobs,
    )


def _run_case_worker(payload) -> CaseResult:
    """Top-level worker so :class:`ProcessPoolExecutor` can pickle it."""
    experiment, strategies, error_model = payload
    return run_case(experiment, strategies=strategies, error_model=error_model)


def run_case_batch(
    experiments: Sequence[ExperimentCase],
    *,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    runners: Optional[Mapping[str, Callable]] = None,
    workers: Optional[int] = None,
    error_models: Optional[Sequence] = None,
) -> List[CaseResult]:
    """Run a batch of cases, optionally across ``workers`` processes.

    Cases are fully self-contained (every case builds its own pool and all
    randomness is derived from per-case seeds stored in the configs), so
    parallel execution is deterministic: the result list is always in
    submission order and every case produces the same result it would
    serially, regardless of worker count or completion order.

    ``error_models`` (aligned with ``experiments``) attaches a sampled
    ground truth to each case — the Monte Carlo replication harness passes
    one :class:`~repro.workflow.costs.ErrorModel` per (case, replication)
    pair.  Error models are frozen dataclasses and every draw derives from
    their ``(seed, replication, scope)``, so they cross process boundaries
    without losing determinism.

    ``workers=None`` (or ``<= 1``) runs serially.  Custom ``runners``
    mappings typically hold lambdas, which cannot cross a process boundary,
    so they also force the serial path.
    """
    experiments = list(experiments)
    if error_models is None:
        error_models = [None] * len(experiments)
    else:
        error_models = list(error_models)
        if len(error_models) != len(experiments):
            raise ValueError(
                f"error_models length {len(error_models)} does not match "
                f"{len(experiments)} experiments"
            )
    if runners is not None or not workers or workers <= 1 or len(experiments) < 2:
        return [
            run_case(
                experiment,
                strategies=strategies,
                runners=runners,
                error_model=error_model,
            )
            for experiment, error_model in zip(experiments, error_models)
        ]
    from concurrent.futures import ProcessPoolExecutor

    payloads = [
        (experiment, tuple(strategies), error_model)
        for experiment, error_model in zip(experiments, error_models)
    ]
    with ProcessPoolExecutor(max_workers=int(workers)) as executor:
        return list(executor.map(_run_case_worker, payloads))
