"""Run one experiment case under the competing strategies.

A *case* is a priced workflow (:class:`~repro.generators.costs.WorkflowCase`)
plus a resource-change model.  :func:`run_case` evaluates the strategies the
paper compares — static HEFT, adaptive AHEFT and dynamic Min-Min — and
returns their makespans together with the improvement rate of AHEFT over
HEFT, which is the paper's headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.adaptive import AdaptiveRunResult, run_adaptive, run_dynamic, run_static
from repro.experiments.metrics import improvement_rate
from repro.generators.costs import WorkflowCase
from repro.resources.dynamics import ResourceChangeModel, StaticResourceModel
from repro.resources.pool import ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.baselines import MaxMinScheduler, SufferageScheduler
from repro.scheduling.heft import HEFTScheduler
from repro.scheduling.minmin import MinMinScheduler

__all__ = [
    "ExperimentCase",
    "CaseResult",
    "run_case",
    "run_case_batch",
    "STRATEGY_RUNNERS",
]

#: strategy name -> runner(workflow, costs, pool) -> AdaptiveRunResult
STRATEGY_RUNNERS: Dict[str, Callable] = {
    "HEFT": lambda wf, costs, pool: run_static(wf, costs, pool, scheduler=HEFTScheduler()),
    "AHEFT": lambda wf, costs, pool: run_adaptive(wf, costs, pool, scheduler=AHEFTScheduler()),
    "MinMin": lambda wf, costs, pool: run_dynamic(wf, costs, pool, mapper=MinMinScheduler()),
    "MaxMin": lambda wf, costs, pool: run_dynamic(wf, costs, pool, mapper=MaxMinScheduler()),
    "Sufferage": lambda wf, costs, pool: run_dynamic(wf, costs, pool, mapper=SufferageScheduler()),
    "AHEFT-always": lambda wf, costs, pool: run_adaptive(
        wf, costs, pool, scheduler=AHEFTScheduler(), accept_only_if_better=False
    ),
}


@dataclass
class ExperimentCase:
    """One workload instance paired with its resource dynamics."""

    case: WorkflowCase
    resource_model: ResourceChangeModel | StaticResourceModel
    label: str = ""

    def build_pool(self) -> ResourcePool:
        return self.resource_model.build_pool()

    def params(self) -> Dict[str, object]:
        params = dict(self.case.params)
        if isinstance(self.resource_model, ResourceChangeModel):
            params.update(
                {
                    "resources": self.resource_model.initial_size,
                    "interval": self.resource_model.interval,
                    "fraction": self.resource_model.fraction,
                }
            )
        else:
            params.update({"resources": self.resource_model.size})
        return params


@dataclass
class CaseResult:
    """Makespans of every strategy on one case."""

    params: Dict[str, object]
    makespans: Dict[str, float]
    rescheduling_counts: Dict[str, int] = field(default_factory=dict)

    def makespan(self, strategy: str) -> float:
        return self.makespans[strategy]

    def improvement(self, baseline: str = "HEFT", improved: str = "AHEFT") -> float:
        """Improvement rate of ``improved`` over ``baseline`` on this case."""
        if baseline not in self.makespans or improved not in self.makespans:
            raise KeyError(
                f"strategies {baseline!r}/{improved!r} not present; "
                f"available: {sorted(self.makespans)}"
            )
        return improvement_rate(self.makespans[baseline], self.makespans[improved])

    def strategies(self) -> List[str]:
        return list(self.makespans.keys())


def run_case(
    experiment: ExperimentCase,
    *,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    runners: Optional[Mapping[str, Callable]] = None,
) -> CaseResult:
    """Evaluate one case under the requested strategies.

    Each strategy gets its own freshly built resource pool from the case's
    resource model, so strategies never interfere with each other.
    """
    runners = dict(runners or STRATEGY_RUNNERS)
    unknown = [s for s in strategies if s not in runners]
    if unknown:
        raise KeyError(f"unknown strategies: {unknown}; available: {sorted(runners)}")

    makespans: Dict[str, float] = {}
    rescheduling_counts: Dict[str, int] = {}
    for strategy in strategies:
        pool = experiment.build_pool()
        result: AdaptiveRunResult = runners[strategy](
            experiment.case.workflow, experiment.case.costs, pool
        )
        makespans[strategy] = result.makespan
        rescheduling_counts[strategy] = result.rescheduling_count
    return CaseResult(
        params=experiment.params(),
        makespans=makespans,
        rescheduling_counts=rescheduling_counts,
    )


def _run_case_worker(payload) -> CaseResult:
    """Top-level worker so :class:`ProcessPoolExecutor` can pickle it."""
    experiment, strategies = payload
    return run_case(experiment, strategies=strategies)


def run_case_batch(
    experiments: Sequence[ExperimentCase],
    *,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    runners: Optional[Mapping[str, Callable]] = None,
    workers: Optional[int] = None,
) -> List[CaseResult]:
    """Run a batch of cases, optionally across ``workers`` processes.

    Cases are fully self-contained (every case builds its own pool and all
    randomness is derived from per-case seeds stored in the configs), so
    parallel execution is deterministic: the result list is always in
    submission order and every case produces the same result it would
    serially, regardless of worker count or completion order.

    ``workers=None`` (or ``<= 1``) runs serially.  Custom ``runners``
    mappings typically hold lambdas, which cannot cross a process boundary,
    so they also force the serial path.
    """
    experiments = list(experiments)
    if runners is not None or not workers or workers <= 1 or len(experiments) < 2:
        return [
            run_case(experiment, strategies=strategies, runners=runners)
            for experiment in experiments
        ]
    from concurrent.futures import ProcessPoolExecutor

    payloads = [(experiment, tuple(strategies)) for experiment in experiments]
    with ProcessPoolExecutor(max_workers=int(workers)) as executor:
        return list(executor.map(_run_case_worker, payloads))
