"""Experiment parameter grids (paper Tables 2 and 5).

``RANDOM_DAG_GRID`` reproduces Table 2 (parametric random DAGs) and
``APPLICATION_GRID`` reproduces Table 5 (BLAST and WIEN2K).  The full cross
products are enormous (the paper runs 500,000 cases); the configuration
dataclasses therefore support deterministic *sampling* of the grid so that
benchmarks can run a representative subset on a laptop while the full grid
remains available through the same API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.generators.blast import generate_blast_case
from repro.generators.costs import WorkflowCase
from repro.generators.montage import generate_montage_case
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.generators.wien2k import generate_wien2k_case
from repro.resources.dynamics import ResourceChangeModel
from repro.utils.rng import spawn_rng

__all__ = [
    "RANDOM_DAG_GRID",
    "APPLICATION_GRID",
    "RandomExperimentConfig",
    "ApplicationExperimentConfig",
]

#: Paper Table 2 — parameter values for randomly generated DAGs.
RANDOM_DAG_GRID: Dict[str, Tuple] = {
    "v": (20, 40, 60, 80, 100),
    "ccr": (0.1, 0.5, 1.0, 5.0, 10.0),
    "out_degree": (0.1, 0.2, 0.3, 0.4, 1.0),
    "beta": (0.1, 0.25, 0.5, 0.75, 1.0),
    "resources": (10, 20, 30, 40, 50),
    "interval": (400, 800, 1200, 1600),
    "fraction": (0.10, 0.15, 0.20, 0.25),
}

#: Paper Table 5 — parameter values for BLAST and WIEN2K DAGs.
APPLICATION_GRID: Dict[str, Tuple] = {
    "parallelism": (200, 400, 600, 800, 1000),
    "ccr": (0.1, 0.5, 1.0, 5.0, 10.0),
    "beta": (0.1, 0.25, 0.5, 0.75, 1.0),
    "resources": (20, 40, 60, 80, 100),
    "interval": (400, 800, 1200, 1600),
    "fraction": (0.10, 0.15, 0.20, 0.25),
}

_APPLICATION_GENERATORS = {
    "blast": generate_blast_case,
    "wien2k": generate_wien2k_case,
    "montage": generate_montage_case,
}


class _ScenarioConfigMixin:
    """Scenario-engine wiring shared by the experiment configs.

    A config carries the scenario as data (registry name + parameter
    overrides) so configs stay frozen, hashable and picklable; the mixin
    turns that data into live objects for the runner.
    """

    def build_scenario(self):
        """The configured scenario instance, or ``None``."""
        if self.scenario is None:
            return None
        from repro.scenarios import make_scenario

        return make_scenario(self.scenario, **dict(self.scenario_params))

    def to_experiment_case(self):
        """An :class:`~repro.experiments.runner.ExperimentCase` for this point."""
        from repro.experiments.runner import ExperimentCase

        return ExperimentCase(
            case=self.build_case(),
            resource_model=self.build_resource_model(),
            scenario=self.build_scenario(),
            scenario_seed=self.seed,
        )


@dataclass(frozen=True)
class RandomExperimentConfig(_ScenarioConfigMixin):
    """One fully specified random-DAG experiment point."""

    v: int = 40
    ccr: float = 1.0
    out_degree: float = 0.2
    beta: float = 0.5
    resources: int = 10
    interval: float = 400.0
    fraction: float = 0.15
    #: ω_DAG is calibrated so simulated makespans land in the same range as
    #: the paper's reported averages (a few thousand logical time units),
    #: which keeps the number of resource-change events per run comparable.
    omega_dag: float = 300.0
    instance: int = 0
    seed: int = 0
    #: optional scenario-engine dynamics (registry name + keyword overrides);
    #: when set, sweeps materialise the scenario instead of the (R, Δ, δ)
    #: model — see :mod:`repro.scenarios`.
    scenario: Optional[str] = None
    scenario_params: Tuple[Tuple[str, object], ...] = ()

    def build_case(self) -> WorkflowCase:
        params = RandomDAGParameters(
            v=self.v,
            out_degree=self.out_degree,
            ccr=self.ccr,
            beta=self.beta,
            omega_dag=self.omega_dag,
        )
        return generate_random_case(params, seed=self.seed, instance=self.instance)

    def build_resource_model(self) -> ResourceChangeModel:
        return ResourceChangeModel(
            initial_size=self.resources,
            interval=self.interval,
            fraction=self.fraction,
        )

    def as_params(self) -> Dict[str, object]:
        params = {
            "v": self.v,
            "ccr": self.ccr,
            "out_degree": self.out_degree,
            "beta": self.beta,
            "resources": self.resources,
            "interval": self.interval,
            "fraction": self.fraction,
            "instance": self.instance,
        }
        if self.scenario is not None:
            params["scenario"] = self.scenario
            params["scenario_params"] = dict(self.scenario_params)
        return params


@dataclass(frozen=True)
class ApplicationExperimentConfig(_ScenarioConfigMixin):
    """One fully specified application (BLAST / WIEN2K / Montage) point."""

    application: str = "blast"
    parallelism: int = 200
    ccr: float = 1.0
    beta: float = 0.5
    resources: int = 40
    interval: float = 800.0
    fraction: float = 0.15
    #: see RandomExperimentConfig.omega_dag — calibrated to the paper's
    #: makespan range so Δ intervals per run are comparable.
    omega_dag: float = 300.0
    instance: int = 0
    seed: int = 0
    #: see :attr:`RandomExperimentConfig.scenario`
    scenario: Optional[str] = None
    scenario_params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.application not in _APPLICATION_GENERATORS:
            raise ValueError(
                f"unknown application {self.application!r}; "
                f"choose from {sorted(_APPLICATION_GENERATORS)}"
            )

    def build_case(self) -> WorkflowCase:
        generator = _APPLICATION_GENERATORS[self.application]
        case_seed = int(
            spawn_rng(self.seed, self.application, self.parallelism, self.ccr,
                      self.beta, self.instance).integers(0, 2**62)
        )
        return generator(
            self.parallelism,
            ccr=self.ccr,
            beta=self.beta,
            omega_dag=self.omega_dag,
            seed=case_seed,
        )

    def build_resource_model(self) -> ResourceChangeModel:
        return ResourceChangeModel(
            initial_size=self.resources,
            interval=self.interval,
            fraction=self.fraction,
        )

    def as_params(self) -> Dict[str, object]:
        params = {
            "application": self.application,
            "parallelism": self.parallelism,
            "ccr": self.ccr,
            "beta": self.beta,
            "resources": self.resources,
            "interval": self.interval,
            "fraction": self.fraction,
            "instance": self.instance,
        }
        if self.scenario is not None:
            params["scenario"] = self.scenario
            params["scenario_params"] = dict(self.scenario_params)
        return params


def iter_random_grid(
    grid: Optional[Mapping[str, Sequence]] = None,
) -> Iterator[RandomExperimentConfig]:
    """Iterate the full cross product of the random-DAG grid (Table 2)."""
    grid = dict(grid or RANDOM_DAG_GRID)
    keys = ["v", "ccr", "out_degree", "beta", "resources", "interval", "fraction"]
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield RandomExperimentConfig(**dict(zip(keys, combo)))


def sample_random_grid(
    count: int,
    *,
    seed: int = 0,
    grid: Optional[Mapping[str, Sequence]] = None,
    instances: int = 1,
) -> List[RandomExperimentConfig]:
    """Deterministically sample ``count`` points from the Table 2 grid."""
    grid = dict(grid or RANDOM_DAG_GRID)
    rng = spawn_rng(seed, "sample-random-grid", count)
    configs: List[RandomExperimentConfig] = []
    for index in range(count):
        choice = {
            key: values[int(rng.integers(0, len(values)))]
            for key, values in grid.items()
        }
        for instance in range(instances):
            configs.append(
                RandomExperimentConfig(
                    v=int(choice["v"]),
                    ccr=float(choice["ccr"]),
                    out_degree=float(choice["out_degree"]),
                    beta=float(choice["beta"]),
                    resources=int(choice["resources"]),
                    interval=float(choice["interval"]),
                    fraction=float(choice["fraction"]),
                    instance=instance,
                    seed=seed + index,
                )
            )
    return configs


def sample_application_grid(
    application: str,
    count: int,
    *,
    seed: int = 0,
    grid: Optional[Mapping[str, Sequence]] = None,
    instances: int = 1,
) -> List[ApplicationExperimentConfig]:
    """Deterministically sample ``count`` points from the Table 5 grid."""
    grid = dict(grid or APPLICATION_GRID)
    rng = spawn_rng(seed, "sample-application-grid", application, count)
    configs: List[ApplicationExperimentConfig] = []
    for index in range(count):
        choice = {
            key: values[int(rng.integers(0, len(values)))]
            for key, values in grid.items()
        }
        for instance in range(instances):
            configs.append(
                ApplicationExperimentConfig(
                    application=application,
                    parallelism=int(choice["parallelism"]),
                    ccr=float(choice["ccr"]),
                    beta=float(choice["beta"]),
                    resources=int(choice["resources"]),
                    interval=float(choice["interval"]),
                    fraction=float(choice["fraction"]),
                    instance=instance,
                    seed=seed + index,
                )
            )
    return configs
