"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper reports:
improvement-rate tables (Tables 3, 4, 7, 8), average-makespan tables
(Table 6) and makespan-vs-parameter series (the six panels of Fig. 8).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.runner import CaseResult
from repro.experiments.sweep import MultiWorkflowPoint, ScenarioPoint, SweepPoint
from repro.experiments.uncertainty import UncertaintyPoint

__all__ = [
    "format_table",
    "render_improvement_table",
    "render_series",
    "render_case_results",
    "render_scenario_matrix",
    "render_multi_tenant_matrix",
    "render_uncertainty_matrix",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.1f}",
) -> str:
    """Render an aligned plain-text table."""

    def render_cell(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_improvement_table(
    points: Sequence[SweepPoint],
    *,
    baseline: str = "HEFT",
    improved: str = "AHEFT",
    title: Optional[str] = None,
    value_label: Optional[str] = None,
) -> str:
    """A Table 3/4/7/8-style row: parameter values vs improvement rate."""
    if not points:
        return "(no data)"
    label = value_label or points[0].parameter
    headers = [label] + [str(point.value) for point in points]
    row = ["Imprv. rate"] + [
        f"{100.0 * point.improvement(baseline, improved):.1f}%" for point in points
    ]
    table = format_table(headers, [row])
    if title:
        return f"{title}\n{table}"
    return table


def render_series(
    series: Mapping[str, Sequence[SweepPoint]],
    *,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    title: Optional[str] = None,
) -> str:
    """A Fig. 8-style series table: one row per parameter value.

    ``series`` maps a workload label (e.g. ``"BLAST"``, ``"WIEN2K"``) to its
    sweep points; columns are ``<strategy><label>`` averages, mirroring the
    paper's HEFT1/AHEFT1/HEFT2/AHEFT2 legend.
    """
    labels = list(series.keys())
    if not labels:
        return "(no data)"
    reference = series[labels[0]]
    parameter = reference[0].parameter if reference else "value"
    headers = [parameter]
    for index, label in enumerate(labels, start=1):
        for strategy in strategies:
            headers.append(f"{strategy}{index}({label})")
    rows: List[List[object]] = []
    for point_index, point in enumerate(reference):
        row: List[object] = [point.value]
        for label in labels:
            labelled_point = series[label][point_index]
            for strategy in strategies:
                row.append(labelled_point.mean_makespans[strategy])
        rows.append(row)
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def render_scenario_matrix(
    points: Sequence[ScenarioPoint],
    *,
    strategies: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """One row per scenario: makespans, AHEFT-vs-HEFT, reschedules, waste."""
    if not points:
        return "(no data)"
    strategies = list(strategies or points[0].mean_makespans.keys())
    headers = ["scenario"] + list(strategies)
    has_pair = "HEFT" in strategies and "AHEFT" in strategies
    if has_pair:
        headers.append("AHEFT vs HEFT")
    if "AHEFT" in strategies:
        headers.append("resched(AHEFT)")
    headers.append("wasted(max)")
    rows: List[List[object]] = []
    for point in points:
        row: List[object] = [point.scenario]
        for strategy in strategies:
            row.append(point.mean_makespans.get(strategy, float("nan")))
        if has_pair:
            if "HEFT" in point.mean_makespans and "AHEFT" in point.mean_makespans:
                row.append(f"{100.0 * point.improvement():.1f}%")
            else:
                row.append("-")
        if "AHEFT" in strategies:
            row.append(f"{point.mean_reschedules.get('AHEFT', 0.0):.1f}")
        row.append(max(point.mean_wasted_work.values(), default=0.0))
        rows.append(row)
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def render_multi_tenant_matrix(
    points: Sequence[MultiWorkflowPoint],
    *,
    title: Optional[str] = None,
) -> str:
    """One row per multi-tenant cell: flow/stretch/throughput/fairness.

    The overload columns (``adm``/``p99 str``/``rej``/``defer``) show the
    admission controller's effect; without it they read ``off``/tail/0/0.
    """
    if not points:
        return "(no data)"
    headers = [
        "scenario",
        "policy",
        "strategy",
        "adm",
        "tenants",
        "rate",
        "wfs",
        "mean flow",
        "p95 flow",
        "stretch",
        "p99 str",
        "rej",
        "defer",
        "thru/1k",
        "fairness",
        "wasted",
    ]
    rows: List[List[object]] = []
    for point in points:
        rows.append(
            [
                point.scenario,
                point.policy,
                point.strategy,
                "on" if point.admission else "off",
                point.tenants,
                f"{point.arrival_rate:g}",
                point.workflows,
                point.mean_flow_time,
                point.p95_flow_time,
                f"{point.mean_stretch:.2f}",
                f"{point.p99_stretch:.2f}",
                point.rejected,
                point.deferrals,
                f"{point.throughput:.3f}",
                f"{point.fairness:.3f}",
                point.wasted_work,
            ]
        )
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def render_uncertainty_matrix(
    points: Sequence[UncertaintyPoint],
    *,
    strategies: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """One row per (scenario, error magnitude) with mean±CI95 makespans.

    The last two columns report the improvement rate of AHEFT over HEFT —
    once on the mean makespans (the paper's convention) and once as the
    mean of the paired per-replication rates with its CI95 half-width.
    """
    if not points:
        return "(no data)"
    strategies = list(strategies or points[0].stats.keys())
    headers = ["scenario", "error", "magnitude", "n"]
    for strategy in strategies:
        headers.append(f"{strategy} mean±ci95")
    headers.extend(["imprv(means)", "imprv(paired)"])
    rows: List[List[object]] = []
    for point in points:
        row: List[object] = [
            point.scenario,
            point.error_model,
            f"{point.magnitude:g}",
            point.instances * point.replications,
        ]
        for strategy in strategies:
            stat = point.stats[strategy]
            row.append(f"{stat.mean:.1f}±{stat.ci95_half:.1f}")
        row.append(f"{100.0 * point.improvement:.1f}%")
        row.append(
            f"{100.0 * point.improvement_stats.mean:.1f}%"
            f"±{100.0 * point.improvement_stats.ci95_half:.1f}"
        )
        rows.append(row)
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def render_case_results(
    results: Sequence[CaseResult],
    *,
    strategies: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """One row per case listing the makespans of every strategy."""
    if not results:
        return "(no data)"
    strategies = list(strategies or results[0].strategies())
    headers = ["case"] + list(strategies) + ["AHEFT vs HEFT"]
    rows = []
    for index, result in enumerate(results):
        row: List[object] = [index]
        for strategy in strategies:
            row.append(result.makespans.get(strategy, float("nan")))
        if "HEFT" in result.makespans and "AHEFT" in result.makespans:
            row.append(f"{100.0 * result.improvement():.1f}%")
        else:
            row.append("-")
        rows.append(row)
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table
