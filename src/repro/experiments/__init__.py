"""Experiment harness: the paper's evaluation (§4) as reusable code.

* :mod:`~repro.experiments.config` — the parameter grids of Tables 2 and 5,
* :mod:`~repro.experiments.runner` — run one case under the three
  strategies (static HEFT, adaptive AHEFT, dynamic Min-Min),
* :mod:`~repro.experiments.sweep` — parameter sweeps and aggregation,
* :mod:`~repro.experiments.uncertainty` — Monte Carlo replication over
  stochastic ground-truth runtimes (the estimate-error dimension),
* :mod:`~repro.experiments.metrics` — makespan, improvement rate, CI95,
  SLR, speedup, utilisation,
* :mod:`~repro.experiments.reporting` — plain-text tables and series that
  mirror the paper's tables and figures.
"""

from repro.experiments.config import (
    RANDOM_DAG_GRID,
    APPLICATION_GRID,
    RandomExperimentConfig,
    ApplicationExperimentConfig,
)
from repro.experiments.runner import CaseResult, ExperimentCase, run_case, STRATEGY_RUNNERS
from repro.experiments.sweep import (
    MultiWorkflowPoint,
    ScenarioPoint,
    SweepPoint,
    aggregate_results,
    improvement_rate_by,
    run_cases,
    sweep_application_parameter,
    sweep_multi_workflow,
    sweep_random_parameter,
    sweep_scenarios,
)
from repro.experiments.metrics import (
    improvement_rate,
    jain_fairness_index,
    makespan_statistics,
    percentile,
    schedule_length_ratio,
    speedup,
    average,
)
from repro.experiments.multi_tenant import (
    MultiTenantCaseResult,
    MultiTenantConfig,
    TenantMetrics,
    run_multi_tenant_case,
)
from repro.experiments.uncertainty import (
    ReplicationSummary,
    UncertaintyPoint,
    run_replicated,
    sweep_uncertainty,
)
from repro.experiments.reporting import (
    format_table,
    render_improvement_table,
    render_series,
    render_case_results,
    render_scenario_matrix,
    render_multi_tenant_matrix,
    render_uncertainty_matrix,
)

__all__ = [
    "RANDOM_DAG_GRID",
    "APPLICATION_GRID",
    "RandomExperimentConfig",
    "ApplicationExperimentConfig",
    "CaseResult",
    "ExperimentCase",
    "run_case",
    "STRATEGY_RUNNERS",
    "MultiWorkflowPoint",
    "ScenarioPoint",
    "SweepPoint",
    "aggregate_results",
    "improvement_rate_by",
    "run_cases",
    "sweep_application_parameter",
    "sweep_multi_workflow",
    "sweep_random_parameter",
    "sweep_scenarios",
    "improvement_rate",
    "jain_fairness_index",
    "makespan_statistics",
    "percentile",
    "schedule_length_ratio",
    "speedup",
    "average",
    "MultiTenantCaseResult",
    "MultiTenantConfig",
    "TenantMetrics",
    "run_multi_tenant_case",
    "ReplicationSummary",
    "UncertaintyPoint",
    "run_replicated",
    "sweep_uncertainty",
    "format_table",
    "render_improvement_table",
    "render_series",
    "render_case_results",
    "render_scenario_matrix",
    "render_multi_tenant_matrix",
    "render_uncertainty_matrix",
]
