"""Monte Carlo replication over stochastic ground-truth runtimes.

The paper's architecture exists because execution-time estimates are
wrong; this module measures how wrong they can get before each strategy
breaks.  :func:`run_replicated` executes one experiment case many times,
each replication drawing an independent sampled truth from an
:class:`~repro.workflow.costs.ErrorModel`, and summarises the achieved
makespans with mean/std/CI95 (:func:`~repro.experiments.metrics
.makespan_statistics`).  :func:`sweep_uncertainty` runs the full
error-magnitude × scenario × strategy matrix — the committed smoke
baseline of this sweep pins the paper's qualitative claim that AHEFT's
improvement over static HEFT *grows* with estimate error.

Every replication is deterministic in ``(seed, instance, replication)``
(the error model's hierarchical streams do not depend on query order), so
the sweep fans out over the PR-1 parallel case runner without changing a
single digit: ledgers are byte-identical for ``workers=1`` and
``workers=N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import RandomExperimentConfig
from repro.experiments.metrics import (
    MakespanStatistics,
    improvement_rate,
    makespan_statistics,
)
from repro.experiments.runner import CaseResult, ExperimentCase, run_case_batch
from repro.workflow.costs import ErrorModel, make_error_model

__all__ = [
    "ReplicationSummary",
    "UncertaintyPoint",
    "run_replicated",
    "sweep_uncertainty",
]


@dataclass
class ReplicationSummary:
    """All replications of one case set under one error model."""

    error_model: str
    magnitude: float
    replications: int
    #: strategy -> achieved makespan per (instance, replication), in order
    makespans: Dict[str, List[float]]
    #: strategy -> mean/std/CI95 over those makespans
    stats: Dict[str, MakespanStatistics]
    #: paired per-replication improvement rates of ``improved`` over
    #: ``baseline`` (empty when either strategy was not run)
    improvements: List[float] = field(default_factory=list)
    improvement_stats: MakespanStatistics = field(
        default_factory=lambda: makespan_statistics([])
    )
    results: List[CaseResult] = field(default_factory=list)

    def improvement_of_means(
        self, baseline: str = "HEFT", improved: str = "AHEFT"
    ) -> float:
        """The paper-style improvement rate computed on mean makespans."""
        return improvement_rate(
            self.stats[baseline].mean, self.stats[improved].mean
        )


def summarize_results(
    results: Sequence[CaseResult],
    *,
    error_model: ErrorModel,
    replications: int,
    strategies: Sequence[str],
    baseline: str = "HEFT",
    improved: str = "AHEFT",
) -> ReplicationSummary:
    """Aggregate per-replication case results into a :class:`ReplicationSummary`."""
    makespans: Dict[str, List[float]] = {
        strategy: [result.makespans[strategy] for result in results]
        for strategy in strategies
    }
    stats = {
        strategy: makespan_statistics(values)
        for strategy, values in makespans.items()
    }
    improvements: List[float] = []
    if baseline in makespans and improved in makespans:
        improvements = [
            improvement_rate(b, a)
            for b, a in zip(makespans[baseline], makespans[improved])
        ]
    return ReplicationSummary(
        error_model=error_model.name,
        magnitude=error_model.magnitude,
        replications=replications,
        makespans=makespans,
        stats=stats,
        improvements=improvements,
        improvement_stats=makespan_statistics(improvements),
        results=list(results),
    )


def run_replicated(
    experiment: ExperimentCase,
    *,
    error_model: ErrorModel,
    replications: int,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    workers: Optional[int] = None,
) -> ReplicationSummary:
    """Run one case ``replications`` times under independent sampled truths.

    Replication ``r`` perturbs actual durations with
    ``error_model.for_replication(r)``; the scheduler always plans on the
    unperturbed estimates.  Replications are independent, so ``workers=N``
    fans them out over processes with byte-identical results.
    """
    if replications <= 0:
        raise ValueError("replications must be positive")
    models = [error_model.for_replication(r) for r in range(replications)]
    results = run_case_batch(
        [experiment] * replications,
        strategies=strategies,
        workers=workers,
        error_models=models,
    )
    return summarize_results(
        results,
        error_model=error_model,
        replications=replications,
        strategies=strategies,
    )


@dataclass
class UncertaintyPoint:
    """One cell of the uncertainty matrix: (scenario, error family, magnitude)."""

    scenario: str
    error_model: str
    magnitude: float
    instances: int
    replications: int
    #: strategy -> mean/std/CI95 of the achieved makespans
    stats: Dict[str, MakespanStatistics]
    #: paper-style improvement rate on the mean makespans
    improvement: float
    #: mean and CI95 of the paired per-replication improvement rates
    improvement_stats: MakespanStatistics
    results: List[CaseResult] = field(default_factory=list)

    @property
    def mean_makespans(self) -> Dict[str, float]:
        return {strategy: stat.mean for strategy, stat in self.stats.items()}

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for the benchmark ledgers."""
        return {
            "scenario": self.scenario,
            "error_model": self.error_model,
            "magnitude": self.magnitude,
            "instances": self.instances,
            "replications": self.replications,
            "stats": {
                strategy: stat.as_dict()
                for strategy, stat in sorted(self.stats.items())
            },
            "improvement": self.improvement,
            "improvement_mean": self.improvement_stats.mean,
            "improvement_ci95_low": self.improvement_stats.ci95_low,
            "improvement_ci95_high": self.improvement_stats.ci95_high,
        }


def sweep_uncertainty(
    magnitudes: Sequence[float],
    *,
    error_model: str = "gaussian",
    scenarios: Sequence[str] = ("paper",),
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    base_config: Optional[RandomExperimentConfig] = None,
    instances: int = 1,
    replications: int = 3,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[UncertaintyPoint]:
    """The uncertainty matrix: error magnitude × scenario × strategy.

    Every cell runs ``instances`` workflow instances × ``replications``
    sampled truths.  The *same* workloads and — because a truth draw
    depends only on ``(seed, instance, replication)``, never on the
    scenario or the magnitude's distribution shape — maximally correlated
    truths recur across cells, so differences between rows measure the
    error magnitude and the dynamics, not sampling noise.  All cells of a
    sweep fan out over the PR-1 parallel case runner; results are
    byte-identical for any ``workers`` setting.
    """
    if not magnitudes:
        raise ValueError("at least one error magnitude is required")
    base = base_config or RandomExperimentConfig(v=30, resources=8, seed=seed)
    points: List[UncertaintyPoint] = []
    for scenario in scenarios:
        for magnitude in magnitudes:
            model = make_error_model(error_model, float(magnitude), seed=seed)
            experiments: List[ExperimentCase] = []
            models: List[ErrorModel] = []
            for instance in range(instances):
                config = replace(
                    base,
                    instance=instance,
                    seed=seed + instance,
                    scenario=scenario,
                )
                experiment = config.to_experiment_case()
                for replication in range(replications):
                    experiments.append(experiment)
                    models.append(
                        model.for_replication(replication).scoped(f"i{instance}")
                    )
            results = run_case_batch(
                experiments,
                strategies=strategies,
                workers=workers,
                error_models=models,
            )
            summary = summarize_results(
                results,
                error_model=model,
                replications=replications,
                strategies=strategies,
            )
            points.append(
                UncertaintyPoint(
                    scenario=scenario,
                    error_model=model.name,
                    magnitude=float(magnitude),
                    instances=instances,
                    replications=replications,
                    stats=summary.stats,
                    improvement=summary.improvement_of_means()
                    if "HEFT" in summary.stats and "AHEFT" in summary.stats
                    else 0.0,
                    improvement_stats=summary.improvement_stats,
                    results=results,
                )
            )
    return points
