"""Multi-tenant experiment cases and their metrics.

One *multi-tenant case* is: ``N`` tenants submitting Poisson streams of
heterogeneous workflows to one shared grid whose dynamics come from a named
scenario.  :func:`run_multi_tenant_case` wires the workload layer, the
scenario engine and the shared-grid executor together and reduces the
outcomes to the metrics multi-tenant schedulers are judged by:

* **flow time** — completion minus arrival (mean and 95th percentile),
* **stretch** — flow time over the span the workflow was predicted to need
  alone on the pool it arrived to (mean; 1.0 = zero contention),
* **throughput** — completed workflows per 1000 logical time units of the
  whole run,
* **fairness** — Jain's index over the tenants' mean stretches (1.0 =
  every tenant slowed down equally),
* **wasted work / kills** — departure damage, attributed to the tenant
  whose job was killed,
* **overload management** — p99 stretch, rejection/deferral counts from
  the admission controller (``admission=True``), deadline/SLO violation
  counts and the final per-tenant credit scores.

Everything derives from the case's seed, so results are deterministic and
ledger-comparable across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.admission import AdmissionConfig
from repro.experiments.metrics import average, jain_fairness_index, percentile
from repro.facade import run as facade_run
from repro.simulation.shared_grid import SharedGridResult
from repro.workload.streams import TenantSpec, WorkloadStream, default_tenants

__all__ = [
    "MultiTenantConfig",
    "TenantMetrics",
    "MultiTenantCaseResult",
    "run_multi_tenant_case",
]


@dataclass(frozen=True)
class MultiTenantConfig:
    """One fully specified multi-tenant experiment point."""

    tenants: int = 4
    arrival_rate: float = 0.005
    policy: str = "fifo"
    #: registered scheduler every tenant replans with (``reschedule`` kinds)
    strategy: str = "aheft"
    resources: int = 10
    scenario: str = "static"
    scenario_params: Tuple[Tuple[str, object], ...] = ()
    v: int = 24
    parallelism: int = 12
    ccr: float = 1.0
    beta: float = 0.5
    omega_dag: float = 300.0
    max_arrivals: int = 6
    horizon: float = 8000.0
    seed: int = 0
    #: overload management (off by default — bit-identical to before)
    admission: bool = False
    saturation_threshold: float = 0.85
    stretch_limit: float = 4.0
    max_deferrals: int = 4
    #: optional service targets handed to every tenant
    deadline_factor: Optional[float] = None
    slo_stretch: Optional[float] = None

    def build_tenants(self) -> List[TenantSpec]:
        return default_tenants(
            self.tenants,
            arrival_rate=self.arrival_rate,
            max_arrivals=self.max_arrivals,
            v=self.v,
            parallelism=self.parallelism,
            ccr=self.ccr,
            beta=self.beta,
            omega_dag=self.omega_dag,
            deadline_factor=self.deadline_factor,
            slo_stretch=self.slo_stretch,
        )

    def build_admission(self) -> Optional[AdmissionConfig]:
        if not self.admission:
            return None
        return AdmissionConfig(
            saturation_threshold=self.saturation_threshold,
            stretch_limit=self.stretch_limit,
            max_deferrals=self.max_deferrals,
        )

    def build_stream(self) -> WorkloadStream:
        return WorkloadStream(
            self.build_tenants(), seed=self.seed, horizon=self.horizon
        )

    def build_scenario_run(self):
        """Materialise the scenario into the shared pool + perf profile."""
        from repro.scenarios import make_scenario, materialize

        scenario = make_scenario(self.scenario, **dict(self.scenario_params))
        return materialize(
            scenario,
            initial_size=self.resources,
            seed=self.seed,
            horizon=self.horizon,
        )

    def as_params(self) -> Dict[str, object]:
        return {
            "tenants": self.tenants,
            "arrival_rate": self.arrival_rate,
            "policy": self.policy,
            "strategy": self.strategy,
            "resources": self.resources,
            "scenario": self.scenario,
            "scenario_params": dict(self.scenario_params),
            "v": self.v,
            "parallelism": self.parallelism,
            "ccr": self.ccr,
            "beta": self.beta,
            "omega_dag": self.omega_dag,
            "max_arrivals": self.max_arrivals,
            "horizon": self.horizon,
            "seed": self.seed,
            "admission": self.admission,
            "saturation_threshold": self.saturation_threshold,
            "stretch_limit": self.stretch_limit,
            "max_deferrals": self.max_deferrals,
            "deadline_factor": self.deadline_factor,
            "slo_stretch": self.slo_stretch,
        }


@dataclass
class TenantMetrics:
    """Service metrics of one tenant over one multi-tenant run."""

    tenant: str
    workflows: int
    mean_flow_time: float
    p95_flow_time: float
    mean_stretch: float
    throughput: float
    wasted_work: float
    killed_jobs: int
    deadline_violations: int = 0
    slo_violations: int = 0
    credit: float = 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "workflows": self.workflows,
            "mean_flow_time": self.mean_flow_time,
            "p95_flow_time": self.p95_flow_time,
            "mean_stretch": self.mean_stretch,
            "throughput": self.throughput,
            "wasted_work": self.wasted_work,
            "killed_jobs": self.killed_jobs,
            "deadline_violations": self.deadline_violations,
            "slo_violations": self.slo_violations,
            "credit": self.credit,
        }


@dataclass
class MultiTenantCaseResult:
    """Aggregated multi-tenant metrics for one configuration."""

    config: MultiTenantConfig
    result: SharedGridResult
    per_tenant: Dict[str, TenantMetrics] = field(default_factory=dict)

    @property
    def workflows(self) -> int:
        return len(self.result.outcomes)

    @property
    def run_makespan(self) -> float:
        return self.result.makespan()

    @property
    def mean_flow_time(self) -> float:
        return average(o.flow_time for o in self.result.outcomes)

    @property
    def p95_flow_time(self) -> float:
        return percentile([o.flow_time for o in self.result.outcomes], 95.0)

    @property
    def mean_stretch(self) -> float:
        return average(o.stretch for o in self.result.outcomes)

    @property
    def p99_stretch(self) -> float:
        """Tail stretch — the overload-management headline metric."""
        return percentile([o.stretch for o in self.result.outcomes], 99.0)

    @property
    def rejected(self) -> int:
        return self.result.rejected_count

    @property
    def deferrals(self) -> int:
        return self.result.deferral_count

    @property
    def rejection_rate(self) -> float:
        """Rejected over offered (admitted + rejected) workflows."""
        offered = self.workflows + self.rejected
        return 0.0 if offered == 0 else self.rejected / offered

    @property
    def deadline_violations(self) -> int:
        return self.result.deadline_violations()

    @property
    def slo_violations(self) -> int:
        return self.result.slo_violations()

    @property
    def throughput(self) -> float:
        """Completed workflows per 1000 logical time units."""
        span = self.run_makespan
        if span <= 0:
            return 0.0
        return 1000.0 * self.workflows / span

    @property
    def fairness(self) -> float:
        """Jain's index over the tenants' mean stretches."""
        return jain_fairness_index(
            metrics.mean_stretch for metrics in self.per_tenant.values()
        )

    @property
    def wasted_work(self) -> float:
        return self.result.total_wasted_work()

    @property
    def killed_jobs(self) -> int:
        return self.result.total_killed_jobs()

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for the benchmark ledgers."""
        return {
            "params": self.config.as_params(),
            "workflows": self.workflows,
            "run_makespan": self.run_makespan,
            "mean_flow_time": self.mean_flow_time,
            "p95_flow_time": self.p95_flow_time,
            "mean_stretch": self.mean_stretch,
            "p99_stretch": self.p99_stretch,
            "throughput": self.throughput,
            "fairness": self.fairness,
            "wasted_work": self.wasted_work,
            "killed_jobs": self.killed_jobs,
            "rejected": self.rejected,
            "deferrals": self.deferrals,
            "rejection_rate": self.rejection_rate,
            "deadline_violations": self.deadline_violations,
            "slo_violations": self.slo_violations,
            "credits": dict(sorted(self.result.credits.items())),
            "per_tenant": {
                tenant: metrics.as_dict()
                for tenant, metrics in sorted(self.per_tenant.items())
            },
        }


def _tenant_metrics(result: SharedGridResult, tenant: str) -> TenantMetrics:
    outcomes = result.for_tenant(tenant)
    span = result.makespan()
    return TenantMetrics(
        tenant=tenant,
        workflows=len(outcomes),
        mean_flow_time=average(o.flow_time for o in outcomes),
        p95_flow_time=percentile([o.flow_time for o in outcomes], 95.0),
        mean_stretch=average(o.stretch for o in outcomes),
        throughput=0.0 if span <= 0 else 1000.0 * len(outcomes) / span,
        wasted_work=sum(o.wasted_work for o in outcomes),
        killed_jobs=sum(o.killed_jobs for o in outcomes),
        deadline_violations=sum(1 for o in outcomes if o.deadline_violated),
        slo_violations=sum(1 for o in outcomes if o.slo_violated),
        credit=result.credits.get(tenant, 1.0),
    )


def run_multi_tenant_case(
    config: MultiTenantConfig,
    *,
    tenants: Optional[List[TenantSpec]] = None,
) -> MultiTenantCaseResult:
    """Run one multi-tenant case end to end.

    ``tenants`` overrides the default tenant specs (e.g. for trace-replay
    workloads); everything else — arrival stream, scenario materialisation,
    shared-grid execution — derives deterministically from ``config``.
    """
    specs = tenants if tenants is not None else config.build_tenants()
    stream = WorkloadStream(specs, seed=config.seed, horizon=config.horizon)
    scenario_run = config.build_scenario_run()
    options: Dict[str, object] = {}
    admission = config.build_admission()
    if admission is not None:
        options["admission"] = admission
    if config.admission or config.deadline_factor is not None or (
        config.slo_stretch is not None
    ):
        # overload runs always score tenant behaviour, whatever the policy
        # (credit_drf brings its own ledger otherwise)
        from repro.core.credit import CreditLedger

        options["credit_ledger"] = CreditLedger()
    result = facade_run(
        stream,
        scenario_run.pool,
        mode="multi",
        perf_profile=scenario_run.profile,
        policy=config.policy,
        tenant_weights=stream.weights(),
        strategy=config.strategy,
        **options,
    ).raw
    per_tenant = {
        tenant: _tenant_metrics(result, tenant) for tenant in result.tenants()
    }
    return MultiTenantCaseResult(config=config, result=result, per_tenant=per_tenant)


def with_policy(config: MultiTenantConfig, policy: str) -> MultiTenantConfig:
    """The same case under a different interleave policy."""
    return replace(config, policy=policy)
