"""Parameter sweeps and aggregation.

The paper's tables and figures all have the same shape: vary one parameter
(CCR, number of jobs, β, initial pool size, Δ, δ), average the makespan of
each strategy over many generated instances, and report either the average
makespans (Fig. 8) or the improvement rate of AHEFT over HEFT (Tables 3, 4,
7, 8).  :func:`sweep_random_parameter` and
:func:`sweep_application_parameter` implement exactly that pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.config import (
    ApplicationExperimentConfig,
    RandomExperimentConfig,
)
from repro.experiments.metrics import average, improvement_rate
from repro.experiments.runner import CaseResult, ExperimentCase, run_case_batch

__all__ = [
    "SweepPoint",
    "ScenarioPoint",
    "MultiWorkflowPoint",
    "run_cases",
    "aggregate_results",
    "improvement_rate_by",
    "sweep_random_parameter",
    "sweep_application_parameter",
    "sweep_scenarios",
    "sweep_multi_workflow",
]


@dataclass
class MultiWorkflowPoint:
    """One cell of the multi-tenant matrix: (strategy, scenario, tenants, rate, policy)."""

    scenario: str
    tenants: int
    arrival_rate: float
    policy: str
    strategy: str
    workflows: int
    run_makespan: float
    mean_flow_time: float
    p95_flow_time: float
    mean_stretch: float
    throughput: float
    fairness: float
    wasted_work: float
    killed_jobs: int
    #: overload-management columns (zeros when admission control is off)
    p99_stretch: float = 0.0
    rejected: int = 0
    deferrals: int = 0
    deadline_violations: int = 0
    slo_violations: int = 0
    admission: bool = False
    per_tenant: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for the benchmark ledgers."""
        return {
            "scenario": self.scenario,
            "tenants": self.tenants,
            "arrival_rate": self.arrival_rate,
            "policy": self.policy,
            "strategy": self.strategy,
            "workflows": self.workflows,
            "run_makespan": self.run_makespan,
            "mean_flow_time": self.mean_flow_time,
            "p95_flow_time": self.p95_flow_time,
            "mean_stretch": self.mean_stretch,
            "throughput": self.throughput,
            "fairness": self.fairness,
            "wasted_work": self.wasted_work,
            "killed_jobs": self.killed_jobs,
            "p99_stretch": self.p99_stretch,
            "rejected": self.rejected,
            "deferrals": self.deferrals,
            "deadline_violations": self.deadline_violations,
            "slo_violations": self.slo_violations,
            "admission": self.admission,
            "per_tenant": self.per_tenant,
        }


@dataclass
class ScenarioPoint:
    """Aggregated strategy comparison under one named scenario."""

    scenario: str
    description: str
    mean_makespans: Dict[str, float]
    mean_reschedules: Dict[str, float]
    mean_wasted_work: Dict[str, float]
    case_count: int
    results: List[CaseResult] = field(default_factory=list)

    def improvement(self, baseline: str = "HEFT", improved: str = "AHEFT") -> float:
        """Improvement rate computed on the averaged makespans."""
        return improvement_rate(
            self.mean_makespans[baseline], self.mean_makespans[improved]
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for the benchmark ledgers."""
        return {
            "scenario": self.scenario,
            "description": self.description,
            "case_count": self.case_count,
            "mean_makespans": dict(self.mean_makespans),
            "mean_reschedules": dict(self.mean_reschedules),
            "mean_wasted_work": dict(self.mean_wasted_work),
        }


@dataclass
class SweepPoint:
    """Aggregated result at one value of the swept parameter."""

    parameter: str
    value: object
    mean_makespans: Dict[str, float]
    case_count: int
    results: List[CaseResult] = field(default_factory=list)

    def improvement(self, baseline: str = "HEFT", improved: str = "AHEFT") -> float:
        """Improvement rate computed on the averaged makespans (as the paper does)."""
        return improvement_rate(
            self.mean_makespans[baseline], self.mean_makespans[improved]
        )


def run_cases(
    experiments: Iterable[ExperimentCase],
    *,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    workers: Optional[int] = None,
) -> List[CaseResult]:
    """Run every experiment case and collect the results (in order).

    ``workers=N`` (opt-in) fans the independent cases out over N processes;
    per-case seeds live inside the cases, so results are identical to a
    serial run.
    """
    return run_case_batch(list(experiments), strategies=strategies, workers=workers)


def aggregate_results(
    results: Sequence[CaseResult],
    *,
    group_key: str,
) -> Dict[object, Dict[str, float]]:
    """Mean makespan per strategy, grouped by one case parameter."""
    grouped: Dict[object, List[CaseResult]] = {}
    for result in results:
        grouped.setdefault(result.params.get(group_key), []).append(result)
    out: Dict[object, Dict[str, float]] = {}
    for value, members in sorted(grouped.items(), key=lambda kv: str(kv[0])):
        strategies = members[0].strategies()
        out[value] = {
            strategy: average(m.makespans[strategy] for m in members)
            for strategy in strategies
        }
    return out


def improvement_rate_by(
    results: Sequence[CaseResult],
    *,
    group_key: str,
    baseline: str = "HEFT",
    improved: str = "AHEFT",
) -> Dict[object, float]:
    """Improvement rate of averaged makespans, grouped by one parameter."""
    aggregated = aggregate_results(results, group_key=group_key)
    return {
        value: improvement_rate(means[baseline], means[improved])
        for value, means in aggregated.items()
    }


# ----------------------------------------------------------------------
# one-parameter sweeps
# ----------------------------------------------------------------------
def _sweep(
    configs_for_value: Callable[[object, int], List],
    parameter: str,
    values: Sequence[object],
    *,
    instances: int,
    strategies: Sequence[str],
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    points: List[SweepPoint] = []
    for value in values:
        experiments: List[ExperimentCase] = []
        for config in configs_for_value(value, instances):
            experiments.append(
                ExperimentCase(
                    case=config.build_case(),
                    resource_model=config.build_resource_model(),
                )
            )
        results = run_cases(experiments, strategies=strategies, workers=workers)
        mean_makespans = {
            strategy: average(result.makespans[strategy] for result in results)
            for strategy in strategies
        }
        points.append(
            SweepPoint(
                parameter=parameter,
                value=value,
                mean_makespans=mean_makespans,
                case_count=len(results),
                results=results,
            )
        )
    return points


def sweep_random_parameter(
    parameter: str,
    values: Sequence[object],
    *,
    base_config: Optional[RandomExperimentConfig] = None,
    instances: int = 3,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    """Sweep one Table 2 parameter on random DAGs, averaging over instances."""
    base = base_config or RandomExperimentConfig(seed=seed)
    if not hasattr(base, parameter):
        raise ValueError(f"unknown random-DAG parameter: {parameter!r}")

    def configs_for_value(value, count):
        return [
            replace(base, **{parameter: value}, instance=i, seed=seed + i)
            for i in range(count)
        ]

    return _sweep(
        configs_for_value,
        parameter,
        values,
        instances=instances,
        strategies=strategies,
        workers=workers,
    )


def sweep_scenarios(
    scenarios: Sequence[object],
    *,
    base_config: Optional[RandomExperimentConfig] = None,
    instances: int = 3,
    strategies: Sequence[str] = ("HEFT", "AHEFT", "MinMin"),
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[ScenarioPoint]:
    """Compare the strategies under each scenario on the same workloads.

    ``scenarios`` may mix registry names (``"churn"``) and
    :class:`~repro.scenarios.base.Scenario` instances.  Every scenario runs
    the *same* ``instances`` workflow instances (derived from
    ``base_config``), so differences between scenario rows are caused by
    the dynamics, not by workload sampling noise.  Reported per strategy:
    mean makespan, mean adopted-reschedule count, and mean wasted work
    (execution time thrown away when departures kill running jobs).
    """
    from repro.scenarios import make_scenario

    base = base_config or RandomExperimentConfig()
    if seed is None:
        seed = base.seed
    points: List[ScenarioPoint] = []
    for entry in scenarios:
        scenario = make_scenario(entry) if isinstance(entry, str) else entry
        experiments: List[ExperimentCase] = []
        for instance in range(instances):
            config = replace(base, instance=instance, seed=seed + instance)
            if isinstance(entry, str):
                # registry names flow through the config layer, so the
                # scenario choice is recorded in the config's params
                config = replace(config, scenario=entry)
                experiments.append(config.to_experiment_case())
            else:
                experiments.append(
                    ExperimentCase(
                        case=config.build_case(),
                        resource_model=config.build_resource_model(),
                        scenario=scenario,
                        scenario_seed=config.seed,
                    )
                )
        results = run_cases(experiments, strategies=strategies, workers=workers)
        points.append(
            ScenarioPoint(
                scenario=scenario.name,
                description=scenario.describe(),
                mean_makespans={
                    strategy: average(r.makespans[strategy] for r in results)
                    for strategy in strategies
                },
                mean_reschedules={
                    strategy: average(
                        r.rescheduling_counts.get(strategy, 0) for r in results
                    )
                    for strategy in strategies
                },
                mean_wasted_work={
                    strategy: average(
                        r.wasted_work.get(strategy, 0.0) for r in results
                    )
                    for strategy in strategies
                },
                case_count=len(results),
                results=results,
            )
        )
    return points


def sweep_multi_workflow(
    *,
    arrival_rates: Sequence[float] = (0.005,),
    tenant_counts: Sequence[int] = (4,),
    scenarios: Sequence[str] = ("static",),
    policies: Sequence[str] = ("fifo",),
    strategies: Sequence[str] = ("aheft",),
    base_config=None,
    seed: Optional[int] = None,
) -> List["MultiWorkflowPoint"]:
    """The multi-tenant matrix: rate × tenants × scenario × policy × strategy.

    Every cell runs one deterministic multi-tenant case (see
    :func:`~repro.experiments.multi_tenant.run_multi_tenant_case`) derived
    from ``base_config`` with the cell's parameters substituted.  The same
    seed is used across cells, so a tenant's arrival stream is identical in
    every scenario/policy/strategy cell with the same tenant count —
    differences between rows are caused by the dynamics, the policy and
    the replanning heuristic, not by workload sampling noise.

    ``strategies`` names registered schedulers with the ``reschedule``
    interface (``aheft``, ``cpop``, ``heft_dup``, ...): every tenant in a
    cell replans with that heuristic.
    """
    from repro.experiments.multi_tenant import (
        MultiTenantConfig,
        run_multi_tenant_case,
    )

    base = base_config or MultiTenantConfig()
    if seed is not None:
        base = replace(base, seed=seed)
    points: List[MultiWorkflowPoint] = []
    for scenario in scenarios:
        for tenants in tenant_counts:
            for rate in arrival_rates:
                for policy in policies:
                    for strategy in strategies:
                        config = replace(
                            base,
                            scenario=scenario,
                            tenants=int(tenants),
                            arrival_rate=float(rate),
                            policy=policy,
                            strategy=strategy,
                        )
                        outcome = run_multi_tenant_case(config)
                        points.append(
                            MultiWorkflowPoint(
                                scenario=scenario,
                                tenants=int(tenants),
                                arrival_rate=float(rate),
                                policy=policy,
                                strategy=strategy,
                                workflows=outcome.workflows,
                                run_makespan=outcome.run_makespan,
                                mean_flow_time=outcome.mean_flow_time,
                                p95_flow_time=outcome.p95_flow_time,
                                mean_stretch=outcome.mean_stretch,
                                throughput=outcome.throughput,
                                fairness=outcome.fairness,
                                wasted_work=outcome.wasted_work,
                                killed_jobs=outcome.killed_jobs,
                                p99_stretch=outcome.p99_stretch,
                                rejected=outcome.rejected,
                                deferrals=outcome.deferrals,
                                deadline_violations=outcome.deadline_violations,
                                slo_violations=outcome.slo_violations,
                                admission=config.admission,
                                per_tenant={
                                    tenant: metrics.as_dict()
                                    for tenant, metrics in sorted(
                                        outcome.per_tenant.items()
                                    )
                                },
                            )
                        )
    return points


def sweep_application_parameter(
    application: str,
    parameter: str,
    values: Sequence[object],
    *,
    base_config: Optional[ApplicationExperimentConfig] = None,
    instances: int = 3,
    strategies: Sequence[str] = ("HEFT", "AHEFT"),
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    """Sweep one Table 5 parameter on an application DAG (BLAST/WIEN2K/Montage)."""
    base = base_config or ApplicationExperimentConfig(application=application, seed=seed)
    if base.application != application:
        base = replace(base, application=application)
    if not hasattr(base, parameter):
        raise ValueError(f"unknown application parameter: {parameter!r}")

    def configs_for_value(value, count):
        return [
            replace(base, **{parameter: value}, instance=i, seed=seed + i)
            for i in range(count)
        ]

    return _sweep(
        configs_for_value,
        parameter,
        values,
        instances=instances,
        strategies=strategies,
        workers=workers,
    )
