"""'What ... if ...' analysis of hypothetical resource changes.

Paper §3.3 sketches this as future work: *"What will be the expected
performance if an additional resource A is added (removed)?"*.  The
evaluation machinery AHEFT already provides makes this straightforward —
build the hypothetical resource set, reschedule the unfinished part of the
workflow at the query time, and compare the predicted makespans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import ExecutionState, Schedule
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["WhatIfResult", "WhatIfAnalyzer"]


@dataclass(frozen=True)
class WhatIfResult:
    """Answer to a what-if query."""

    query: str
    time: float
    baseline_makespan: float
    predicted_makespan: float
    schedule: Schedule

    @property
    def predicted_gain(self) -> float:
        """Positive when the hypothetical change shortens the workflow."""
        return self.baseline_makespan - self.predicted_makespan

    @property
    def relative_gain(self) -> float:
        if self.baseline_makespan == 0:
            return 0.0
        return self.predicted_gain / self.baseline_makespan

    @property
    def is_beneficial(self) -> bool:
        return self.predicted_gain > 0


class WhatIfAnalyzer:
    """Evaluate hypothetical resource additions/removals for a running DAG."""

    def __init__(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        scheduler: Optional[AHEFTScheduler] = None,
    ) -> None:
        self.workflow = workflow
        self.costs = costs
        self.pool = pool
        self.scheduler = scheduler or AHEFTScheduler()

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        resources: Sequence[str],
        *,
        clock: float,
        current_schedule: Schedule,
        execution_state: Optional[ExecutionState],
        query: str,
    ) -> WhatIfResult:
        state = execution_state or ExecutionState.from_schedule(
            current_schedule, clock, jobs=self.workflow.jobs
        )
        candidate = self.scheduler.reschedule(
            self.workflow,
            self.costs,
            resources,
            clock=clock,
            previous_schedule=current_schedule,
            execution_state=state,
        )
        return WhatIfResult(
            query=query,
            time=clock,
            baseline_makespan=current_schedule.makespan(),
            predicted_makespan=candidate.makespan(),
            schedule=candidate,
        )

    # ------------------------------------------------------------------
    def if_resources_added(
        self,
        new_resources: Sequence[Resource],
        *,
        clock: float,
        current_schedule: Schedule,
        execution_state: Optional[ExecutionState] = None,
    ) -> WhatIfResult:
        """Predicted makespan if ``new_resources`` joined at ``clock``."""
        if not new_resources:
            raise ValueError("at least one hypothetical resource is required")
        existing = self.pool.available_at(clock)
        hypothetical = existing + [r.resource_id for r in new_resources]
        names = ",".join(r.resource_id for r in new_resources)
        return self._evaluate(
            hypothetical,
            clock=clock,
            current_schedule=current_schedule,
            execution_state=execution_state,
            query=f"add {names} at {clock:g}",
        )

    def if_resources_removed(
        self,
        resource_ids: Sequence[str],
        *,
        clock: float,
        current_schedule: Schedule,
        execution_state: Optional[ExecutionState] = None,
    ) -> WhatIfResult:
        """Predicted makespan if ``resource_ids`` left the grid at ``clock``.

        Jobs already finished or running on the removed resources keep their
        history; only future placements avoid them.
        """
        removed = set(resource_ids)
        remaining = [r for r in self.pool.available_at(clock) if r not in removed]
        if not remaining:
            raise ValueError("cannot remove every resource")
        names = ",".join(sorted(removed))
        return self._evaluate(
            remaining,
            clock=clock,
            current_schedule=current_schedule,
            execution_state=execution_state,
            query=f"remove {names} at {clock:g}",
        )

    def rank_candidate_additions(
        self,
        candidates: Sequence[Resource],
        *,
        clock: float,
        current_schedule: Schedule,
    ) -> List[WhatIfResult]:
        """Evaluate each candidate addition separately, best gain first.

        Supports the proactive tuning use-case of §3.3: which single
        additional resource would help this workflow the most right now?
        """
        results = [
            self.if_resources_added(
                [candidate], clock=clock, current_schedule=current_schedule
            )
            for candidate in candidates
        ]
        results.sort(key=lambda r: (-r.predicted_gain, r.query))
        return results
