"""The Planner component and its per-workflow Scheduler instances.

Paper §3.2: *"For each workflow application represented as a DAG, the
Planner instantiates a Scheduler instance.  Based on the performance history
and resource availability, the Scheduler inquires the Predictor to estimate
the communication and computation cost with the given resource set.  It then
decides on resource mapping ... and submits the schedule to the Executor.
During the execution, the Scheduler instance listens to the pre-defined
events of interest ... evaluates the event and reschedules the application
if necessary."*

:class:`Planner` manages the shared Performance History Repository and
Predictor and creates one :class:`WorkflowPlan` per submitted DAG.  The
``WorkflowPlan`` owns the current schedule, reacts to
:class:`~repro.core.events.GridEvent` notifications with the
accept-if-better rule, and feeds completed-job observations back into the
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.events import (
    EventBus,
    GridEvent,
    PerformanceVarianceEvent,
    ResourcePoolChangeEvent,
)
from repro.core.history import PerformanceHistoryRepository
from repro.core.predictor import Predictor
from repro.resources.pool import ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import ExecutionState, Schedule, TIME_EPS
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["PlannerDecision", "WorkflowPlan", "Planner"]


@dataclass(frozen=True)
class PlannerDecision:
    """Outcome of the Planner evaluating one event for one workflow."""

    event: GridEvent
    previous_makespan: float
    candidate_makespan: float
    adopted: bool
    schedule: Schedule

    @property
    def predicted_gain(self) -> float:
        return self.previous_makespan - self.candidate_makespan


class WorkflowPlan:
    """The Scheduler instance the Planner creates per DAG (paper §3.2)."""

    def __init__(
        self,
        workflow: Workflow,
        prior_costs: CostModel,
        pool: ResourcePool,
        *,
        predictor: Predictor,
        history: PerformanceHistoryRepository,
        scheduler: Optional[AHEFTScheduler] = None,
        variance_threshold: float = 0.10,
        epsilon: float = 1e-9,
    ) -> None:
        self.workflow = workflow
        self.prior_costs = prior_costs
        self.pool = pool
        self.predictor = predictor
        self.history = history
        self.scheduler = scheduler or AHEFTScheduler()
        self.variance_threshold = float(variance_threshold)
        self.epsilon = float(epsilon)
        self.current_schedule: Optional[Schedule] = None
        self.decisions: List[PlannerDecision] = []
        self.execution_state = ExecutionState.initial(workflow.jobs)

    # ------------------------------------------------------------------
    def make_initial_schedule(self, *, clock: float = 0.0) -> Schedule:
        """Plan the whole DAG on the currently available resources."""
        resources = self.pool.available_at(clock)
        if not resources:
            raise ValueError(f"no resources available at time {clock}")
        estimates = self.predictor.estimate(self.prior_costs)
        self.current_schedule = self.scheduler.schedule(
            self.workflow, estimates, resources
        )
        return self.current_schedule

    # ------------------------------------------------------------------
    def predicted_makespan(self) -> float:
        if self.current_schedule is None:
            raise RuntimeError("no schedule yet; call make_initial_schedule() first")
        return self.current_schedule.makespan()

    def is_finished(self) -> bool:
        return self.execution_state.all_finished()

    # ------------------------------------------------------------------
    # Executor feedback
    # ------------------------------------------------------------------
    def record_job_started(self, job_id: str, resource_id: str, time: float) -> None:
        self.execution_state.clock = max(self.execution_state.clock, time)
        self.execution_state.record_start(job_id, resource_id, time)

    def record_job_finished(self, job_id: str, time: float) -> None:
        """Record completion and update the Performance History Repository."""
        self.execution_state.clock = max(self.execution_state.clock, time)
        self.execution_state.record_finish(job_id, time)
        started = self.execution_state.actual_start[job_id]
        resource = self.execution_state.executed_on[job_id]
        self.history.record_execution(
            self.workflow.job(job_id).operation,
            resource,
            duration=time - started,
            job_id=job_id,
            finished_at=time,
        )

    # ------------------------------------------------------------------
    # event handling (the adaptive part)
    # ------------------------------------------------------------------
    def handle_event(
        self,
        event: GridEvent,
        *,
        execution_state: Optional[ExecutionState] = None,
    ) -> PlannerDecision:
        """Evaluate an event: reschedule the remaining jobs if it pays off."""
        if self.current_schedule is None:
            raise RuntimeError("cannot handle events before the initial schedule")
        if isinstance(event, PerformanceVarianceEvent) and not self._significant(event):
            decision = PlannerDecision(
                event=event,
                previous_makespan=self.current_schedule.makespan(),
                candidate_makespan=self.current_schedule.makespan(),
                adopted=False,
                schedule=self.current_schedule,
            )
            self.decisions.append(decision)
            return decision

        clock = event.time
        state = execution_state or ExecutionState.from_schedule(
            self.current_schedule, clock, jobs=self.workflow.jobs
        )
        resources = self.pool.available_at(clock)
        estimates = self.predictor.estimate(self.prior_costs)
        candidate = self.scheduler.reschedule(
            self.workflow,
            estimates,
            resources,
            clock=clock,
            previous_schedule=self.current_schedule,
            execution_state=state,
        )
        previous_makespan = self.current_schedule.makespan()
        adopted = candidate.makespan() < previous_makespan - self.epsilon
        if adopted:
            self.current_schedule = candidate
        decision = PlannerDecision(
            event=event,
            previous_makespan=previous_makespan,
            candidate_makespan=candidate.makespan(),
            adopted=adopted,
            schedule=self.current_schedule,
        )
        self.decisions.append(decision)
        return decision

    def _significant(self, event: PerformanceVarianceEvent) -> bool:
        return abs(event.relative_deviation) >= self.variance_threshold


class Planner:
    """Top-level Planner: shared history/predictor, one plan per workflow."""

    def __init__(
        self,
        *,
        history: Optional[PerformanceHistoryRepository] = None,
        predictor: Optional[Predictor] = None,
        scheduler_factory=AHEFTScheduler,
        event_bus: Optional[EventBus] = None,
    ) -> None:
        self.history = history or PerformanceHistoryRepository()
        self.predictor = predictor or Predictor(self.history)
        self.scheduler_factory = scheduler_factory
        self.plans: Dict[str, WorkflowPlan] = {}
        self.event_bus = event_bus
        if event_bus is not None:
            event_bus.subscribe(ResourcePoolChangeEvent, self._on_event)
            event_bus.subscribe(PerformanceVarianceEvent, self._on_event)

    # ------------------------------------------------------------------
    def submit(
        self,
        workflow: Workflow,
        prior_costs: CostModel,
        pool: ResourcePool,
        **plan_kwargs,
    ) -> WorkflowPlan:
        """Register a workflow and produce its initial schedule."""
        if workflow.name in self.plans:
            raise ValueError(f"workflow {workflow.name!r} already submitted")
        plan = WorkflowPlan(
            workflow,
            prior_costs,
            pool,
            predictor=self.predictor,
            history=self.history,
            scheduler=self.scheduler_factory(),
            **plan_kwargs,
        )
        plan.make_initial_schedule()
        self.plans[workflow.name] = plan
        return plan

    def plan_for(self, workflow_name: str) -> WorkflowPlan:
        return self.plans[workflow_name]

    def _on_event(self, event: GridEvent) -> None:
        for plan in self.plans.values():
            if not plan.is_finished() and plan.current_schedule is not None:
                plan.handle_event(event)

    # ------------------------------------------------------------------
    def decisions(self) -> List[PlannerDecision]:
        out: List[PlannerDecision] = []
        for plan in self.plans.values():
            out.extend(plan.decisions)
        out.sort(key=lambda d: d.event.time)
        return out
