"""The paper's contribution: adaptive rescheduling (Planner side).

This package implements the collaboration between Planner and Executor that
the paper proposes (§3):

* :mod:`~repro.core.events` — the run-time events the Planner subscribes to
  (resource-pool changes, performance variance),
* :mod:`~repro.core.history` — the Performance History Repository,
* :mod:`~repro.core.predictor` — the Predictor producing the estimation
  matrix ``P`` from prior costs and observed history,
* :mod:`~repro.core.planner` — the Planner / per-DAG Scheduler instance,
* :mod:`~repro.core.adaptive` — the generic adaptive rescheduling loop of
  paper Fig. 2 and the strategy runners (static / adaptive / dynamic),
* :mod:`~repro.core.whatif` — "what … if …" queries (§3.3, future work in
  the paper, implemented here as an extension).
"""

from repro.core.events import (
    GridEvent,
    ResourcePoolChangeEvent,
    PerformanceVarianceEvent,
    WorkflowFinishedEvent,
    EventBus,
)
from repro.core.history import PerformanceHistoryRepository, PerformanceRecord
from repro.core.predictor import (
    Predictor,
    HistoryAdjustedCostModel,
    RatioAdjustedCostModel,
)
from repro.core.planner import Planner, PlannerDecision, WorkflowPlan
from repro.core.adaptive import (
    AdaptiveReschedulingLoop,
    AdaptiveRunResult,
    ReschedulingDecision,
    apply_departure_kills,
    project_actuals,
    run_adaptive,
    run_static,
    run_dynamic,
)
from repro.core.multi_tenant import POLICIES, ActiveWorkflow, MultiTenantPlanner
from repro.core.whatif import WhatIfAnalyzer, WhatIfResult

__all__ = [
    "GridEvent",
    "ResourcePoolChangeEvent",
    "PerformanceVarianceEvent",
    "WorkflowFinishedEvent",
    "EventBus",
    "PerformanceHistoryRepository",
    "PerformanceRecord",
    "Predictor",
    "HistoryAdjustedCostModel",
    "RatioAdjustedCostModel",
    "Planner",
    "PlannerDecision",
    "WorkflowPlan",
    "AdaptiveReschedulingLoop",
    "AdaptiveRunResult",
    "ReschedulingDecision",
    "apply_departure_kills",
    "project_actuals",
    "run_adaptive",
    "run_static",
    "run_dynamic",
    "POLICIES",
    "ActiveWorkflow",
    "MultiTenantPlanner",
    "WhatIfAnalyzer",
    "WhatIfResult",
]
