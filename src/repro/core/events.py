"""Run-time grid events and the Planner/Executor event channel.

The paper's collaboration model (§3.2–3.3) has the Executor notify the
Planner of "pre-defined events of interest":

* **Resource pool change** — new resources discovered (or a predictable
  failure/departure),
* **Resource performance variance** — a job finishing significantly earlier
  or later than its scheduled finish time,
* **Workflow finished** — the terminating condition of the adaptive loop.

Events are plain frozen dataclasses; :class:`EventBus` is a tiny synchronous
publish/subscribe channel used by the Planner/Executor pair so that the
collaboration is expressed with the same vocabulary as the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, DefaultDict, Dict, List, Tuple, Type

__all__ = [
    "GridEvent",
    "ResourcePoolChangeEvent",
    "PerformanceVarianceEvent",
    "WorkflowFinishedEvent",
    "EventBus",
]


@dataclass(frozen=True)
class GridEvent:
    """Base class of every run-time event (carries the logical time)."""

    time: float

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class ResourcePoolChangeEvent(GridEvent):
    """Resources joined and/or left the grid at ``time``."""

    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.added and not self.removed:
            raise ValueError("a pool-change event must add or remove something")


@dataclass(frozen=True)
class PerformanceVarianceEvent(GridEvent):
    """A job's actual finish deviated from its scheduled finish.

    ``relative_deviation`` is positive when the job ran *longer* than
    scheduled.  The Planner typically reacts only when the absolute
    deviation exceeds a threshold.
    """

    job_id: str = ""
    scheduled_finish: float = 0.0
    actual_finish: float = 0.0

    @property
    def deviation(self) -> float:
        return self.actual_finish - self.scheduled_finish

    @property
    def relative_deviation(self) -> float:
        if self.scheduled_finish == 0:
            return 0.0
        return self.deviation / self.scheduled_finish


@dataclass(frozen=True)
class WorkflowFinishedEvent(GridEvent):
    """The workflow completed; the adaptive loop terminates."""

    makespan: float = 0.0


class EventBus:
    """Synchronous publish/subscribe channel between Executor and Planner."""

    def __init__(self) -> None:
        self._subscribers: Dict[Type[GridEvent], List[Callable[[GridEvent], None]]] = {}
        self._log: List[GridEvent] = []

    def subscribe(
        self, event_type: Type[GridEvent], handler: Callable[[GridEvent], None]
    ) -> None:
        """Register ``handler`` for events of ``event_type`` (and subclasses)."""
        self._subscribers.setdefault(event_type, []).append(handler)

    def publish(self, event: GridEvent) -> int:
        """Deliver ``event`` to matching subscribers; returns delivery count."""
        self._log.append(event)
        delivered = 0
        for event_type, handlers in self._subscribers.items():
            if isinstance(event, event_type):
                for handler in handlers:
                    handler(event)
                    delivered += 1
        return delivered

    @property
    def log(self) -> List[GridEvent]:
        """Every event ever published, in publication order."""
        return list(self._log)

    def events_of(self, event_type: Type[GridEvent]) -> List[GridEvent]:
        return [event for event in self._log if isinstance(event, event_type)]
