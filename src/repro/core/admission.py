"""Admission control in front of the multi-tenant planner.

The shared grid (:mod:`repro.simulation.shared_grid`) admits every arrival
unconditionally: under a flash crowd the planner keeps booking ever-later
slots and the stretch of late arrivals grows without bound.  The
:class:`AdmissionController` sits in front of
:meth:`~repro.core.multi_tenant.MultiTenantPlanner.admit` and turns that
regime into a measured one.  For each arrival it plans tentatively
(without registering) and gates on two predictions:

* **predicted saturation** — the fraction of the grid's capacity over the
  lookahead window ``[clock, clock + dedicated_span]`` already booked by
  admitted workflows.  Saturation above ``saturation_threshold`` means the
  newcomer would mostly queue, not run;
* **predicted stretch** — the tentative plan's completion relative to the
  span the workflow would need alone (``(makespan - arrival.time) /
  dedicated_span``).  A value above ``stretch_limit`` means the grid
  cannot give the workflow acceptable service *right now* even if a slot
  exists.

An arrival failing either gate is **deferred** — the executor re-offers
it when capacity is predicted to free up (the earliest incumbent
completion, or the next pool membership change) — and after
``max_deferrals`` unsuccessful offers it is **rejected** outright.
Every decision is recorded as an :class:`AdmissionDecision`, so
rejection/deferral rates and the observed saturation are first-class run
metrics rather than post-hoc reconstructions.

The controller only *reads* planner state (via
:meth:`~repro.core.multi_tenant.MultiTenantPlanner.plan_arrival` and
:meth:`~repro.core.multi_tenant.MultiTenantPlanner.busy_view`); admitting
remains the planner's job, so disabling admission control leaves the
planner's behaviour bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.scheduling.base import TIME_EPS
from repro.workload.streams import WorkflowArrival

__all__ = [
    "AdmissionConfig",
    "AdmissionDecision",
    "AdmissionController",
    "predicted_saturation",
]


@dataclass(frozen=True)
class AdmissionConfig:
    """Gates of the admission controller.

    Parameters
    ----------
    saturation_threshold:
        Booked fraction of the lookahead window above which the grid
        counts as saturated (0.85 = arrivals are deferred once >85% of
        the near-term capacity is spoken for).
    stretch_limit:
        Maximum acceptable predicted stretch of the tentative plan.
    max_deferrals:
        Offers an arrival may fail before it is rejected outright.
    min_window:
        Floor of the saturation lookahead window, guarding against
        degenerate (near-zero) dedicated spans.
    """

    saturation_threshold: float = 0.85
    stretch_limit: float = 4.0
    max_deferrals: int = 4
    min_window: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise ValueError("saturation_threshold must be in (0, 1]")
        if self.stretch_limit < 1.0:
            raise ValueError("stretch_limit must be at least 1.0")
        if self.max_deferrals < 0:
            raise ValueError("max_deferrals must be non-negative")
        if self.min_window <= 0.0:
            raise ValueError("min_window must be positive")


@dataclass(frozen=True)
class AdmissionDecision:
    """One admit/defer/reject verdict, with the evidence it rested on."""

    time: float
    key: str
    tenant: str
    action: str  # "admit" | "defer" | "reject"
    saturation: float
    predicted_stretch: float
    #: failed offers *before* this decision (0 on the first offer)
    deferrals: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "key": self.key,
            "tenant": self.tenant,
            "action": self.action,
            "saturation": self.saturation,
            "predicted_stretch": self.predicted_stretch,
            "deferrals": self.deferrals,
        }


def _merge_spans(spans: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, finish in sorted(spans):
        if merged and start <= merged[-1][1] + TIME_EPS:
            last_start, last_finish = merged[-1]
            merged[-1] = (last_start, max(last_finish, finish))
        else:
            merged.append((start, finish))
    return merged


def predicted_saturation(
    busy: Dict[str, Sequence[Tuple[float, float]]],
    resource_count: int,
    clock: float,
    window: float,
) -> float:
    """Booked fraction of ``resource_count`` resources over ``[clock, clock+window]``.

    ``busy`` is the planner's busy view (bookings per resource id);
    same-resource spans are merged before clipping so perf-repair
    transients cannot count a slot twice.  Returns a value in ``[0, 1]``
    (0.0 for an empty grid or a degenerate window).
    """
    if resource_count <= 0 or window <= TIME_EPS:
        return 0.0
    horizon = clock + window
    booked = 0.0
    for spans in busy.values():
        for start, finish in _merge_spans(spans):
            booked += max(0.0, min(finish, horizon) - max(start, clock))
    return min(1.0, booked / (resource_count * window))


class AdmissionController:
    """Stateful admit/defer/reject gate over one shared-grid run."""

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self.decisions: List[AdmissionDecision] = []
        #: open deferral chains: key -> (submission time, failed offers).
        #: The submission time identifies the arrival *instance*: an entry
        #: left behind by an abandoned chain (a deferred arrival that was
        #: never re-offered) must not bias a later arrival reusing the
        #: same key, and terminal decisions (admit/reject/supersession)
        #: prune the entry so long arrival streams cannot grow this dict
        #: without bound.
        self._deferrals: Dict[str, Tuple[float, int]] = {}

    # ------------------------------------------------------------------
    def evaluate(
        self,
        planner,
        arrival: WorkflowArrival,
        clock: float,
        *,
        can_defer: bool = True,
    ):
        """Offer ``arrival`` to the grid at ``clock``.

        Returns ``(action, planned)`` where ``action`` is ``"admit"``,
        ``"defer"`` or ``"reject"`` and ``planned`` is the tentative
        :class:`~repro.core.multi_tenant.PlannedArrival` (``None`` when
        the pool was empty).  On ``"admit"`` the caller registers the
        plan with the planner; on ``"defer"`` it re-offers later.
        ``can_defer=False`` (no retry point exists) escalates a deferral
        to a rejection.
        """
        config = self.config
        entry = self._deferrals.get(arrival.key)
        if entry is not None and entry[0] != arrival.time:
            # stale chain: a different arrival instance (re-submission or
            # replayed stream) reuses the key, so the abandoned entry is
            # terminal — prune it instead of inheriting its offer count
            del self._deferrals[arrival.key]
            entry = None
        prior = entry[1] if entry is not None else 0
        resources = planner.pool.available_at(clock)
        if not resources:
            # momentarily empty pool: nothing to plan against, so the
            # saturation evidence is definitional (everything is booked)
            action = self._throttle_action(arrival, prior, can_defer)
            self._record(arrival, clock, action, 1.0, float("inf"), prior)
            return action, None
        planned = planner.plan_arrival(arrival, clock)
        window = max(planned.dedicated_span, config.min_window)
        saturation = predicted_saturation(
            planner.busy_view(None, clock), len(resources), clock, window
        )
        predicted_stretch = (planned.schedule.makespan() - arrival.time) / max(
            planned.dedicated_span, TIME_EPS
        )
        overloaded = (
            saturation > config.saturation_threshold
            or predicted_stretch > config.stretch_limit
        )
        if not overloaded:
            action = "admit"
            self._deferrals.pop(arrival.key, None)
        else:
            action = self._throttle_action(arrival, prior, can_defer)
        self._record(arrival, clock, action, saturation, predicted_stretch, prior)
        return action, planned

    def _throttle_action(
        self, arrival: WorkflowArrival, prior: int, can_defer: bool
    ) -> str:
        if not can_defer or prior >= self.config.max_deferrals:
            self._deferrals.pop(arrival.key, None)
            return "reject"
        self._deferrals[arrival.key] = (arrival.time, prior + 1)
        return "defer"

    # ------------------------------------------------------------------
    # deferral-chain bookkeeping
    # ------------------------------------------------------------------
    @property
    def pending_deferrals(self) -> Dict[str, int]:
        """Open deferral chains: key -> failed offers so far.

        Terminal decisions (admit, reject) prune their entry, so outside
        a defer→re-offer window this is empty; anything lingering here is
        an arrival the caller deferred and never brought back.
        """
        return {key: count for key, (_, count) in self._deferrals.items()}

    def forget(self, key: str) -> None:
        """Drop the open deferral chain for ``key``, if any.

        Callers driving :meth:`evaluate` directly (outside
        :class:`~repro.simulation.shared_grid.SharedGridExecutor`, which
        always re-offers) must call this when they abandon a deferred
        arrival, so the controller's per-key state cannot grow without
        bound over a long-lived stream.
        """
        self._deferrals.pop(key, None)

    def _record(
        self,
        arrival: WorkflowArrival,
        clock: float,
        action: str,
        saturation: float,
        predicted_stretch: float,
        prior: int,
    ) -> None:
        self.decisions.append(
            AdmissionDecision(
                time=clock,
                key=arrival.key,
                tenant=arrival.tenant,
                action=action,
                saturation=saturation,
                predicted_stretch=predicted_stretch,
                deferrals=prior,
            )
        )

    # ------------------------------------------------------------------
    # run-level summaries
    # ------------------------------------------------------------------
    @property
    def deferral_count(self) -> int:
        """Total failed offers (an arrival deferred twice counts twice)."""
        return sum(1 for d in self.decisions if d.action == "defer")

    @property
    def rejected_keys(self) -> List[str]:
        return [d.key for d in self.decisions if d.action == "reject"]

    @property
    def rejected_count(self) -> int:
        return len(self.rejected_keys)
