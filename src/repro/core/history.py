"""Performance History Repository (paper Fig. 1).

The Planner stores every observed job execution — operation, resource,
duration — and uses the history to improve subsequent estimates ("the
Scheduler updates the Performance History Repository with the latest job
performance information to improve the estimation accuracy subsequently",
§3.2).  The repository aggregates per (operation, resource) and per
operation, with exponential decay available so recent observations dominate
in a drifting grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["PerformanceRecord", "PerformanceHistoryRepository"]


@dataclass(frozen=True)
class PerformanceRecord:
    """One observed job execution.

    ``estimated`` optionally carries the Planner's prior estimate for this
    execution at observation time; ratio-mode re-estimation
    (:class:`~repro.core.predictor.RatioAdjustedCostModel`) prefers it
    because it makes the observed/estimated ratio self-contained — job
    identifiers are not unique across workflows, so dividing by the
    *current* workflow's estimate would mis-price foreign observations.
    """

    operation: str
    resource_id: str
    duration: float
    job_id: str = ""
    finished_at: float = 0.0
    estimated: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.estimated < 0:
            raise ValueError("estimated must be non-negative")


class PerformanceHistoryRepository:
    """Store of observed execution durations with simple aggregation.

    Parameters
    ----------
    decay:
        Exponential decay factor in ``(0, 1]`` applied per *observation*
        when averaging: 1.0 (default) is the plain arithmetic mean, lower
        values weight recent observations more heavily.
    """

    def __init__(self, *, decay: float = 1.0) -> None:
        if not 0 < decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay)
        self._records: List[PerformanceRecord] = []
        self._by_key: Dict[Tuple[str, str], List[float]] = {}
        self._by_operation: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    def record(self, record: PerformanceRecord) -> None:
        """Add one observation."""
        self._records.append(record)
        self._by_key.setdefault((record.operation, record.resource_id), []).append(
            record.duration
        )
        self._by_operation.setdefault(record.operation, []).append(record.duration)

    def record_execution(
        self,
        operation: str,
        resource_id: str,
        duration: float,
        *,
        job_id: str = "",
        finished_at: float = 0.0,
        estimated: float = 0.0,
    ) -> None:
        """Convenience wrapper building the :class:`PerformanceRecord`."""
        self.record(
            PerformanceRecord(
                operation=operation,
                resource_id=resource_id,
                duration=duration,
                job_id=job_id,
                finished_at=finished_at,
                estimated=estimated,
            )
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[PerformanceRecord]:
        return list(self._records)

    def _weighted_mean(self, values: List[float]) -> float:
        if self.decay == 1.0:
            return float(np.mean(values))
        weights = np.array([self.decay ** (len(values) - 1 - i) for i in range(len(values))])
        return float(np.average(np.asarray(values), weights=weights))

    def observed_duration(
        self, operation: str, resource_id: Optional[str] = None
    ) -> Optional[float]:
        """Average observed duration of an operation (optionally per resource).

        Returns ``None`` when no observation exists, signalling the Predictor
        to fall back to its prior estimate.
        """
        if resource_id is not None:
            values = self._by_key.get((operation, resource_id))
            if values:
                return self._weighted_mean(values)
            return None
        values = self._by_operation.get(operation)
        if values:
            return self._weighted_mean(values)
        return None

    def observation_count(self, operation: str, resource_id: Optional[str] = None) -> int:
        if resource_id is not None:
            return len(self._by_key.get((operation, resource_id), []))
        return len(self._by_operation.get(operation, []))

    def operations(self) -> List[str]:
        return sorted(self._by_operation)

    def clear(self) -> None:
        self._records.clear()
        self._by_key.clear()
        self._by_operation.clear()
