"""Per-tenant adaptive planning against shared residual capacity.

The paper's Planner manages one workflow on a dedicated (if changing) grid.
:class:`MultiTenantPlanner` generalises that loop to many concurrent
workflows from many tenants, all booking slots on the *same* resources:

* every workflow keeps its own AHEFT scheduler and its own adaptive plan,
  exactly as in :class:`~repro.core.adaptive.AdaptiveReschedulingLoop`
  (same departure-kill semantics via
  :func:`~repro.core.adaptive.apply_departure_kills`, same perf-change
  repair via :func:`~repro.core.adaptive.repair_schedule`, same
  accept-if-better rule);
* each planning pass sees every *other* workflow's current bookings as
  busy blocks (the ``busy`` parameter of
  :func:`~repro.scheduling.aheft.aheft_reschedule`), so plans are pairwise
  non-overlapping by construction: a workflow always plans around the
  residual capacity left by the rest;
* a **policy** decides the order in which workflows replan when a grid
  event makes everyone move — and therefore who gets first pick of the
  residual gaps:

  ``fifo``
      submission order (earliest arrival first);
  ``fair_share``
      ascending consumed-processor-time per tenant weight — the tenant
      that has received the least service (relative to its entitlement)
      books first;
  ``rank_priority``
      descending remaining predicted span — the workflow with the longest
      remaining critical path books first (an SRPT-inverse interleave that
      protects large workflows from starvation by small ones);
  ``credit_drf``
      ``fair_share`` with credit-coupled weights ``w_t = weight_t *
      (0.5 + 0.5 * credit_t)``: each tenant's entitlement is damped by its
      :class:`~repro.core.credit.CreditLedger` score, which decays as the
      tenant's completions violate their deadlines/SLOs or run at high
      tail stretch.  With one booked resource dimension (processor time)
      this *is* weighted DRF — the dominant share is the time share — so
      misbehaving tenants lose at most half their entitlement and the
      grid degrades their service instead of everyone's.

With a single tenant and a single workflow arriving at time 0, every
policy degenerates to the paper's single-workflow loop and the planner is
bit-identical to :func:`~repro.core.adaptive.run_adaptive` — the
differential test suite (``tests/test_differential.py``) enforces this.

Known approximation: after a performance change, each plan is repaired
independently (:func:`repair_schedule` does not see other tenants), so
repaired plans can transiently contend for the same slot until the next
replanning pass re-books them around each other.  Busy blocks are merged
tolerantly for exactly this reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.adaptive import (
    ReschedulingDecision,
    apply_departure_kills,
    describe_pool_event,
    repair_schedule,
)
from repro.core.credit import CreditLedger
from repro.resources.pool import PoolEvent, ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import ExecutionState, Schedule, TIME_EPS
from repro.workload.streams import WorkflowArrival

__all__ = [
    "POLICIES",
    "ActiveWorkflow",
    "MultiTenantPlanner",
    "PlannedArrival",
]

#: replanning-order policies of the shared grid
POLICIES = ("fifo", "fair_share", "rank_priority", "credit_drf")


@dataclass
class ActiveWorkflow:
    """One workflow's live state inside the multi-tenant planner."""

    key: str
    tenant: str
    seq: int
    arrival_time: float
    kind: str
    workflow: object
    costs: object
    scheduler: AHEFTScheduler
    schedule: Schedule
    #: predicted span had the workflow run alone on the pool it arrived to
    dedicated_span: float
    decisions: List[ReschedulingDecision] = field(default_factory=list)
    wasted_work: float = 0.0
    killed_jobs: Set[str] = field(default_factory=set)
    completed_at: Optional[float] = None
    #: absolute completion deadline (``arrival + deadline_factor * span``)
    deadline: Optional[float] = None
    #: per-workflow stretch SLO target (``TenantSpec.slo_stretch``)
    slo_stretch: Optional[float] = None

    def finished_by(self, clock: float) -> bool:
        return clock >= self.schedule.makespan() - TIME_EPS

    def remaining_span(self, clock: float) -> float:
        return max(0.0, self.schedule.makespan() - clock)

    def consumed_time(self, clock: float) -> float:
        """Processor time this workflow has consumed by ``clock``.

        Counts duplicates too (``all_assignments``): duplication-based
        strategies occupy real slots, and the fair-share/credit ledgers
        must charge the tenant for them exactly as ``busy_view`` books
        them against everyone else.
        """
        return sum(
            max(0.0, min(a.finish, clock) - a.start)
            for a in self.schedule.all_assignments()
        )

    def stretch_at(self, completed_at: float) -> float:
        """Achieved stretch when completing at ``completed_at``."""
        if self.dedicated_span <= TIME_EPS:
            return 1.0
        return (completed_at - self.arrival_time) / self.dedicated_span

    def deadline_violated_at(self, completed_at: float) -> bool:
        return self.deadline is not None and completed_at > self.deadline + TIME_EPS

    def slo_violated_at(self, completed_at: float) -> bool:
        return (
            self.slo_stretch is not None
            and self.stretch_at(completed_at) > self.slo_stretch + TIME_EPS
        )


@dataclass(frozen=True)
class PlannedArrival:
    """A tentative plan for an arrival, not yet registered with the planner."""

    scheduler: AHEFTScheduler
    schedule: Schedule
    #: predicted span had the workflow run alone on the pool it arrived to
    dedicated_span: float


class MultiTenantPlanner:
    """AHEFT rescheduling of many workflows over one shared resource pool.

    Parameters
    ----------
    pool:
        The shared :class:`~repro.resources.pool.ResourcePool` (typically a
        materialised scenario's pool).
    perf_profile:
        Optional scenario :class:`~repro.scenarios.base.PerformanceProfile`
        applied to every tenant's cost model.
    policy:
        One of :data:`POLICIES`; see the module docstring.
    tenant_weights:
        Fair-share weights per tenant (default 1.0 each).
    scheduler_factory:
        Called once per admitted workflow; must produce an object with the
        ``reschedule`` interface of :class:`AHEFTScheduler`.
    strategy:
        Alternative to ``scheduler_factory``: the name of any registered
        scheduler with the ``reschedule`` interface (see
        :data:`repro.scheduling.registry.SCHEDULERS`) — every tenant then
        replans with that heuristic instead of AHEFT, the strategy-ablation
        hook of the multi-tenant tournament.
    accept_only_if_better, epsilon:
        The accept rule of paper Fig. 2 line 7, identical to
        :class:`~repro.core.adaptive.AdaptiveReschedulingLoop`.
    credit_ledger:
        Optional :class:`~repro.core.credit.CreditLedger` fed by every
        completion (deadline/SLO violations and stretch).  The
        ``credit_drf`` policy creates one automatically when omitted; the
        other policies record into it when provided but never read it.
    """

    def __init__(
        self,
        pool: ResourcePool,
        *,
        perf_profile=None,
        policy: str = "fifo",
        tenant_weights: Optional[Dict[str, float]] = None,
        scheduler_factory: Optional[Callable[[], AHEFTScheduler]] = None,
        strategy: Optional[str] = None,
        accept_only_if_better: bool = True,
        epsilon: float = 1e-9,
        credit_ledger: Optional[CreditLedger] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if strategy is not None:
            if scheduler_factory is not None:
                raise ValueError(
                    "pass either strategy= or scheduler_factory=, not both"
                )
            from repro.core.adaptive import resolve_strategy

            resolve_strategy(strategy, None, require="reschedule")  # validate early
            scheduler_factory = self._strategy_factory(strategy)
        elif scheduler_factory is None:
            scheduler_factory = AHEFTScheduler
        self.pool = pool
        self.perf_profile = perf_profile
        self.policy = policy
        self.tenant_weights = dict(tenant_weights or {})
        self.scheduler_factory = scheduler_factory
        self.accept_only_if_better = accept_only_if_better
        self.epsilon = float(epsilon)
        if credit_ledger is None and policy == "credit_drf":
            credit_ledger = CreditLedger()
        self.credit = credit_ledger
        self._active: Dict[str, ActiveWorkflow] = {}
        self._perf_times: Set[float] = (
            set(perf_profile.change_times()) if perf_profile is not None else set()
        )

    @staticmethod
    def _strategy_factory(strategy: str) -> Callable[[], AHEFTScheduler]:
        def factory():
            from repro.scheduling.registry import make_scheduler

            return make_scheduler(strategy)

        return factory

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def workflows(self) -> List[ActiveWorkflow]:
        """Every admitted workflow, in admission order."""
        return list(self._active.values())

    def busy_view(
        self, exclude_key: Optional[str], clock: float
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Every *other* workflow's bookings — the shared-timeline residual.

        Bookings that end at or before ``clock`` cannot constrain placement
        (the schedulers place new work at or after ``clock``) and are
        pruned here to keep the view small over long arrival streams.
        Pruning tolerates ``TIME_EPS``, matching
        :meth:`ActiveWorkflow.finished_by`: a workflow that counts as
        finished never blocks residual capacity.
        """
        busy: Dict[str, List[Tuple[float, float]]] = {}
        for key, wf in self._active.items():
            if key == exclude_key:
                continue
            if wf.finished_by(clock):
                continue
            # duplicates (duplication-based strategies) occupy slots too
            for assignment in wf.schedule.all_assignments():
                if assignment.finish - TIME_EPS <= clock:
                    continue
                busy.setdefault(assignment.resource_id, []).append(
                    (assignment.start, assignment.finish)
                )
        return busy

    def _weight(self, tenant: str) -> float:
        weight = float(self.tenant_weights.get(tenant, 1.0))
        if self.policy == "credit_drf" and self.credit is not None:
            weight *= self.credit.weight(tenant)
        return weight

    def _served_by_tenant(self, clock: float) -> Dict[str, float]:
        served: Dict[str, float] = {}
        for wf in self._active.values():
            served[wf.tenant] = served.get(wf.tenant, 0.0) + wf.consumed_time(clock)
        return served

    def replan_order(
        self, candidates: Sequence[ActiveWorkflow], clock: float
    ) -> List[ActiveWorkflow]:
        """Order in which ``candidates`` replan at ``clock`` (policy-driven)."""
        if self.policy == "fifo":
            return sorted(candidates, key=lambda wf: wf.seq)
        if self.policy in ("fair_share", "credit_drf"):
            served = self._served_by_tenant(clock)
            return sorted(
                candidates,
                key=lambda wf: (
                    served.get(wf.tenant, 0.0) / self._weight(wf.tenant),
                    wf.seq,
                ),
            )
        return sorted(candidates, key=lambda wf: (-wf.remaining_span(clock), wf.seq))

    # ------------------------------------------------------------------
    # arrival
    # ------------------------------------------------------------------
    def plan_arrival(self, arrival: WorkflowArrival, clock: float) -> PlannedArrival:
        """Tentatively plan ``arrival`` against the residual capacity.

        Pure with respect to planner state: nothing is registered, so
        admission control can inspect the plan (predicted stretch,
        dedicated span) and walk away.  Raises ``ValueError`` when the
        pool is momentarily empty.
        """
        resources = self.pool.available_at(clock)
        if not resources:
            raise ValueError(f"no resources available at arrival time {clock}")
        workflow = arrival.case.workflow
        effective = arrival.case.costs
        if self.perf_profile is not None:
            effective = self.perf_profile.scaled_costs(effective, clock)
        scheduler = self.scheduler_factory()
        bind = getattr(scheduler, "bind_tenant_context", None)
        if bind is not None:
            # credit-aware strategies (the flow scheduler's ``credit`` cost
            # model) bid with the tenant's fair-share weight
            weight = (
                self.credit.weight(arrival.tenant)
                if self.credit is not None
                else 1.0
            )
            scheduler = bind(credit_weight=weight)
        busy = self.busy_view(None, clock)
        has_busy = any(busy.values())
        plan = scheduler.reschedule(
            workflow,
            effective,
            resources,
            clock=clock,
            previous_schedule=None,
            busy=busy if has_busy else None,
        )
        if has_busy:
            dedicated = scheduler.reschedule(
                workflow, effective, resources, clock=clock, previous_schedule=None
            )
            dedicated_span = dedicated.makespan() - clock
        else:
            dedicated_span = plan.makespan() - clock
        return PlannedArrival(
            scheduler=scheduler, schedule=plan, dedicated_span=dedicated_span
        )

    def register(
        self, arrival: WorkflowArrival, clock: float, planned: PlannedArrival
    ) -> ActiveWorkflow:
        """Register a previously planned arrival as an active workflow."""
        if arrival.key in self._active:
            raise ValueError(f"workflow {arrival.key!r} was already admitted")
        deadline_factor = getattr(arrival, "deadline_factor", None)
        deadline = (
            None
            if deadline_factor is None
            else arrival.time + deadline_factor * planned.dedicated_span
        )
        active = ActiveWorkflow(
            key=arrival.key,
            tenant=arrival.tenant,
            seq=arrival.seq,
            arrival_time=arrival.time,
            kind=arrival.kind,
            workflow=arrival.case.workflow,
            costs=arrival.case.costs,
            scheduler=planned.scheduler,
            schedule=planned.schedule,
            dedicated_span=planned.dedicated_span,
            deadline=deadline,
            slo_stretch=getattr(arrival, "slo_stretch", None),
        )
        self._active[arrival.key] = active
        return active

    def admit(self, arrival: WorkflowArrival, clock: float) -> ActiveWorkflow:
        """Plan a newly arrived workflow against the residual capacity."""
        if arrival.key in self._active:
            raise ValueError(f"workflow {arrival.key!r} was already admitted")
        return self.register(arrival, clock, self.plan_arrival(arrival, clock))

    # ------------------------------------------------------------------
    # grid events
    # ------------------------------------------------------------------
    def handle_event(self, clock: float, event: Optional[PoolEvent]) -> None:
        """Replan every unfinished workflow at a pool/performance event.

        Per workflow this is exactly one iteration of the single-workflow
        adaptive loop — kills, forced adoptions, perf repair, candidate,
        accept rule — except that the candidate is planned around the other
        workflows' current bookings, and the policy decides who goes first
        (earlier workflows book residual gaps that later ones then avoid).
        """
        resources = self.pool.available_at(clock)
        if not resources:
            return
        removed = frozenset(event.removed) if event is not None else frozenset()
        unfinished = [
            wf for wf in self._active.values() if wf.completed_at is None
        ]
        for wf in self.replan_order(unfinished, clock):
            if wf.finished_by(clock):
                self._mark_completed(wf)
                continue
            state = ExecutionState.from_schedule(
                wf.schedule, clock, jobs=wf.workflow.jobs
            )
            wasted, killed, forced = apply_departure_kills(
                wf.workflow, wf.schedule, state, removed
            )
            wf.wasted_work += wasted
            wf.killed_jobs |= killed
            effective = wf.costs
            if self.perf_profile is not None:
                effective = self.perf_profile.scaled_costs(wf.costs, clock)
                if clock in self._perf_times:
                    wf.schedule = repair_schedule(
                        wf.workflow,
                        wf.schedule,
                        state,
                        effective,
                        clock=clock,
                        resources=resources,
                    )
            candidate = wf.scheduler.reschedule(
                wf.workflow,
                effective,
                resources,
                clock=clock,
                previous_schedule=wf.schedule,
                execution_state=state,
                busy=self.busy_view(wf.key, clock),
            )
            adopt = (
                forced
                or not self.accept_only_if_better
                or candidate.makespan() < wf.schedule.makespan() - self.epsilon
            )
            wf.decisions.append(
                ReschedulingDecision(
                    time=clock,
                    event=describe_pool_event(event)
                    if event is not None
                    else "perf-change",
                    previous_makespan=wf.schedule.makespan(),
                    candidate_makespan=candidate.makespan(),
                    adopted=adopt,
                    forced=forced,
                )
            )
            if adopt:
                wf.schedule = candidate

    # ------------------------------------------------------------------
    def _mark_completed(self, wf: ActiveWorkflow) -> None:
        """Complete ``wf`` at its predicted finish and feed the credit fold."""
        completed_at = wf.schedule.makespan()
        wf.completed_at = completed_at
        if self.credit is not None:
            self.credit.record_completion(
                wf.tenant,
                stretch=wf.stretch_at(completed_at),
                deadline_violated=wf.deadline_violated_at(completed_at),
                slo_violated=wf.slo_violated_at(completed_at),
            )

    def finalize(self) -> List[ActiveWorkflow]:
        """Mark every remaining workflow completed at its predicted finish.

        Stragglers fold into the credit ledger in predicted-completion
        order (ties by admission ``seq``), so end-of-run credit is the
        same as if the run had kept observing completions chronologically.
        """
        pending = sorted(
            (wf for wf in self._active.values() if wf.completed_at is None),
            key=lambda wf: (wf.schedule.makespan(), wf.seq),
        )
        for wf in pending:
            self._mark_completed(wf)
        return self.workflows()
