"""The generic adaptive rescheduling loop (paper Fig. 2) and strategy runners.

:class:`AdaptiveReschedulingLoop` is the paper's algorithm: starting from an
initial static schedule ``S0``, every event of interest triggers a
re-estimation and a candidate schedule ``S1`` for the unfinished part of the
DAG; ``S1`` replaces ``S0`` only if it is an initial schedule or its
predicted makespan is smaller (Fig. 2 lines 7–9).

Three convenience runners give the head-to-head comparison of the paper's
evaluation:

* :func:`run_static` — traditional static scheduling (plan once at t=0 on
  the initial pool; later resources are never used),
* :func:`run_adaptive` — AHEFT: the adaptive loop reacting to every
  resource-pool change,
* :func:`run_dynamic` — just-in-time mapping (Min-Min by default) executed
  on the discrete-event simulator.

All three run under the paper's experiment assumptions (§4.1): accurate
estimates and resource additions as the only pool changes, unless the
caller supplies a perturbed ``actual_costs`` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.resources.pool import PoolEvent, ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    Schedule,
    TIME_EPS,
)
from repro.scheduling.heft import HEFTScheduler
from repro.scheduling.minmin import MinMinScheduler
from repro.simulation.executor import JustInTimeExecutor, StaticScheduleExecutor
from repro.simulation.trace import ExecutionTrace
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "ReschedulingDecision",
    "AdaptiveRunResult",
    "AdaptiveReschedulingLoop",
    "apply_departure_kills",
    "describe_pool_event",
    "repair_schedule",
    "run_static",
    "run_adaptive",
    "run_dynamic",
]


def apply_departure_kills(
    workflow: Workflow,
    schedule: Schedule,
    state: ExecutionState,
    removed: frozenset,
) -> tuple:
    """Apply a departure event to an execution-state snapshot.

    Jobs *running* on a removed resource at ``state.clock`` are killed:
    their partial execution is counted as wasted work and their status is
    reset to not-started (mutating ``state`` in place) so the next
    rescheduling pass re-maps them.  Unfinished work mapped to a removed
    resource — killed or merely planned there — makes the current plan
    infeasible, which forces the caller to adopt the replacement candidate
    regardless of the accept-if-better rule.

    Returns ``(wasted, killed_jobs, forced)``: the execution time thrown
    away, the set of killed job ids, and the infeasibility flag.  Shared by
    the single-workflow :class:`AdaptiveReschedulingLoop` and the
    multi-tenant planner so both apply identical departure semantics.
    """
    wasted = 0.0
    killed: set = set()
    forced = False
    if not removed:
        return wasted, killed, forced
    clock = state.clock
    for job in workflow.jobs:
        status = state.job_status(job)
        if status is JobStatus.FINISHED:
            continue
        if status is JobStatus.RUNNING and state.executed_on.get(job) in removed:
            wasted += clock - state.actual_start[job]
            killed.add(job)
            state.status[job] = JobStatus.NOT_STARTED
            state.actual_start.pop(job, None)
            state.executed_on.pop(job, None)
            forced = True
        elif status is JobStatus.NOT_STARTED:
            assignment = schedule.get(job)
            if assignment is not None and assignment.resource_id in removed:
                forced = True
    return wasted, killed, forced


@dataclass(frozen=True)
class ReschedulingDecision:
    """Outcome of evaluating one event in the adaptive loop.

    ``forced`` marks decisions where the previous plan had become
    *infeasible* — unfinished work was mapped to a resource that departed —
    so the candidate was adopted regardless of the accept-if-better rule.
    """

    time: float
    event: str
    previous_makespan: float
    candidate_makespan: float
    adopted: bool
    forced: bool = False

    @property
    def predicted_gain(self) -> float:
        """Positive when the candidate schedule is shorter."""
        return self.previous_makespan - self.candidate_makespan


@dataclass
class AdaptiveRunResult:
    """Result of running one strategy on one workflow instance."""

    strategy: str
    initial_schedule: Schedule
    final_schedule: Schedule
    decisions: List[ReschedulingDecision] = field(default_factory=list)
    trace: Optional[ExecutionTrace] = None
    killed_jobs: int = 0
    #: wasted work recorded by the analytic planning loop (simulated runs
    #: report it through the trace instead — see :attr:`wasted_work`).
    planned_wasted_work: float = 0.0

    @property
    def makespan(self) -> float:
        """The achieved makespan (actual trace if available, else planned)."""
        if self.trace is not None:
            return self.trace.makespan()
        return self.final_schedule.makespan()

    @property
    def initial_makespan(self) -> float:
        return self.initial_schedule.makespan()

    @property
    def rescheduling_count(self) -> int:
        """Number of *adopted* rescheduling decisions."""
        return sum(1 for decision in self.decisions if decision.adopted)

    @property
    def evaluated_events(self) -> int:
        return len(self.decisions)

    @property
    def wasted_work(self) -> float:
        """Execution time thrown away on departure kills."""
        if self.trace is not None:
            return self.trace.wasted_work()
        return self.planned_wasted_work


class AdaptiveReschedulingLoop:
    """The event-driven planning loop of paper Fig. 2.

    Parameters
    ----------
    scheduler:
        The heuristic ``H`` plugged into ``schedule(S0, P, H)``; AHEFT by
        default (any object with ``schedule``/``reschedule`` methods works).
    accept_only_if_better:
        Fig. 2 line 7: adopt the candidate only when its predicted makespan
        improves on the current plan.  Setting this to ``False`` (always
        adopt) is exposed for the ablation benchmark.
    epsilon:
        Minimum makespan improvement regarded as "better".
    """

    def __init__(
        self,
        scheduler: Optional[AHEFTScheduler] = None,
        *,
        accept_only_if_better: bool = True,
        epsilon: float = 1e-9,
    ) -> None:
        self.scheduler = scheduler or AHEFTScheduler()
        self.accept_only_if_better = accept_only_if_better
        self.epsilon = float(epsilon)

    # ------------------------------------------------------------------
    def run(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        events: Optional[Sequence[PoolEvent]] = None,
        strategy_name: Optional[str] = None,
        perf_profile=None,
    ) -> AdaptiveRunResult:
        """Plan, then react to every event until the workflow finishes.

        Under the accurate-estimation assumption the execution state at each
        event time can be read directly off the schedule being executed
        (jobs finish exactly when scheduled), so the loop advances
        analytically from event to event — which is also how the paper's
        simulation treats static and adaptive strategies.

        Beyond the paper's join-only events the loop honours the adversarial
        scenario vocabulary:

        * **departures** — jobs running on a departing resource at the event
          time are killed (their partial execution counted as wasted work)
          and return to the unscheduled set; if any unfinished work was
          mapped to a departed resource the previous plan is *infeasible*
          and the candidate is adopted regardless of the accept-if-better
          rule (``forced`` decisions);
        * **performance changes** — when ``perf_profile`` marks a factor
          change at the event time, the current plan's remaining finish
          times are first *repaired* under the new factors (see
          :func:`repair_schedule`) so the accept rule compares the candidate
          against an honest baseline, and the candidate itself is planned
          with the degraded cost model.
        """
        initial_resources = pool.available_at(0.0)
        if not initial_resources:
            raise ValueError("no resources available at time 0")
        current = self.scheduler.schedule(workflow, costs, initial_resources)
        initial = current
        decisions: List[ReschedulingDecision] = []
        wasted = 0.0
        killed_jobs: set = set()

        pool_events = list(events) if events is not None else pool.events()
        # pool.events() aggregates per time point already, but events= is a
        # public parameter: merge same-time entries instead of dropping them
        triggers: Dict[float, Optional[PoolEvent]] = {}
        for event in pool_events:
            existing = triggers.get(event.time)
            if existing is None:
                triggers[event.time] = event
            else:
                triggers[event.time] = PoolEvent(
                    time=event.time,
                    added=tuple(sorted({*existing.added, *event.added})),
                    removed=tuple(sorted({*existing.removed, *event.removed})),
                )
        perf_times = set()
        if perf_profile is not None:
            perf_times = set(perf_profile.change_times())
            for time in perf_times:
                triggers.setdefault(time, None)

        for clock in sorted(triggers):
            event = triggers[clock]
            if clock >= current.makespan() - TIME_EPS:
                break  # the workflow finished before this event
            resources = pool.available_at(clock)
            if not resources:
                continue
            state = ExecutionState.from_schedule(current, clock, jobs=workflow.jobs)

            removed_set = frozenset(event.removed) if event is not None else frozenset()
            wasted_delta, killed, forced = apply_departure_kills(
                workflow, current, state, removed_set
            )
            wasted += wasted_delta
            killed_jobs |= killed

            effective_costs = costs
            if perf_profile is not None:
                effective_costs = perf_profile.scaled_costs(costs, clock)
                if clock in perf_times:
                    current = repair_schedule(
                        workflow,
                        current,
                        state,
                        effective_costs,
                        clock=clock,
                        resources=resources,
                    )

            candidate = self.scheduler.reschedule(
                workflow,
                effective_costs,
                resources,
                clock=clock,
                previous_schedule=current,
                execution_state=state,
            )
            adopt = (
                forced
                or not self.accept_only_if_better
                or candidate.makespan() < current.makespan() - self.epsilon
            )
            decisions.append(
                ReschedulingDecision(
                    time=clock,
                    event=describe_pool_event(event) if event is not None else "perf-change",
                    previous_makespan=current.makespan(),
                    candidate_makespan=candidate.makespan(),
                    adopted=adopt,
                    forced=forced,
                )
            )
            if adopt:
                current = candidate
        return AdaptiveRunResult(
            strategy=strategy_name or getattr(self.scheduler, "name", "adaptive"),
            initial_schedule=initial,
            final_schedule=current,
            decisions=decisions,
            killed_jobs=len(killed_jobs),
            planned_wasted_work=wasted,
        )


def repair_schedule(
    workflow: Workflow,
    schedule: Schedule,
    state: ExecutionState,
    costs: CostModel,
    *,
    clock: float,
    resources: Sequence[str],
) -> Schedule:
    """Re-estimate a plan's remaining finish times under new perf factors.

    Every mapping is kept; only times move.  Finished jobs keep their actual
    history.  A *running* job keeps its scheduled finish time: a job's speed
    is frozen at dispatch — exactly the semantics of the simulation
    executors — so factor changes only affect work dispatched after them.
    Not-started jobs are re-timed in topological order on their mapped
    resource: ready when every predecessor's repaired output arrives
    (average communication cost when crossing resources), durations priced
    by ``costs`` (which already embeds the new factors).  Jobs mapped to
    resources no longer in ``resources`` keep their old times — such a plan
    is infeasible and the caller adopts the replacement candidate
    unconditionally.

    The repaired schedule is the honest comparison baseline for the
    accept-if-better rule: without it a degradation would be invisible (the
    stale plan still *predicts* the old makespan) and the Planner would
    wrongly reject every post-degradation candidate.
    """
    available = set(resources)
    repaired = Schedule(name=schedule.name)
    finish_new: Dict[str, float] = {}
    free: Dict[str, float] = {}

    for job in workflow.jobs:
        if state.is_finished(job):
            assignment = Assignment(
                job,
                state.executed_on[job],
                state.actual_start[job],
                state.actual_finish[job],
            )
            repaired.add(assignment)
            finish_new[job] = assignment.finish

    for job in workflow.jobs:
        if not state.is_running(job):
            continue
        assignment = schedule.get(job)
        if assignment is None:
            continue
        rid = assignment.resource_id
        # speed frozen at dispatch: the in-flight job finishes as scheduled
        repaired.add(assignment)
        finish_new[job] = assignment.finish
        free[rid] = max(free.get(rid, clock), assignment.finish)

    for job in workflow.topological_order():
        if job in finish_new:
            continue
        assignment = schedule.get(job)
        if assignment is None:
            continue
        rid = assignment.resource_id
        if rid not in available:
            # infeasible mapping — keep the stale times; the caller adopts
            # the replacement candidate unconditionally (forced decision).
            repaired.add(assignment)
            finish_new[job] = assignment.finish
            continue
        ready = clock
        for pred in workflow.predecessors(job):
            pred_finish = finish_new.get(pred)
            if pred_finish is None:
                pred_assignment = schedule.get(pred)
                pred_finish = pred_assignment.finish if pred_assignment else clock
            if pred in state.executed_on:
                pred_rid = state.executed_on[pred]
            else:
                pred_assignment = schedule.get(pred)
                pred_rid = pred_assignment.resource_id if pred_assignment else rid
            comm = 0.0 if pred_rid == rid else costs.average_communication_cost(pred, job)
            ready = max(ready, pred_finish + comm)
        start = max(ready, free.get(rid, clock))
        finish = start + costs.computation_cost(job, rid)
        repaired.add(Assignment(job, rid, start, finish))
        finish_new[job] = finish
        free[rid] = finish
    return repaired


def describe_pool_event(event: PoolEvent) -> str:
    """Human-readable ``+joined -left`` rendering of a pool event."""
    parts = []
    if event.added:
        parts.append(f"+{','.join(event.added)}")
    if event.removed:
        parts.append(f"-{','.join(event.removed)}")
    return " ".join(parts) or "pool-change"


# ----------------------------------------------------------------------
# strategy runners
# ----------------------------------------------------------------------
def _pool_has_departures(pool: ResourcePool) -> bool:
    return any(
        pool.resource(rid).available_until is not None
        for rid in pool.all_resource_ids()
    )


def run_static(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[HEFTScheduler] = None,
    actual_costs: Optional[CostModel] = None,
    simulate: bool = False,
    perf_profile=None,
    departure_policy: str = "failover",
) -> AdaptiveRunResult:
    """Traditional static strategy: plan once on the initial pool.

    With ``simulate=True`` (or when ``actual_costs`` differs from the
    estimates) the schedule is executed on the discrete-event simulator and
    the *actual* makespan is reported; otherwise the planned makespan is
    used directly, which is identical under accurate estimates.  Pools with
    departures and non-trivial performance profiles force the simulation:
    the planned makespan is a fiction once resources can leave or slow down
    mid-run.
    """
    scheduler = scheduler or HEFTScheduler()
    initial_resources = pool.available_at(0.0)
    if not initial_resources:
        raise ValueError("no resources available at time 0")
    schedule = scheduler.schedule(workflow, costs, initial_resources)
    trace = None
    needs_simulation = (
        simulate
        or actual_costs is not None
        or (perf_profile is not None and not getattr(perf_profile, "is_trivial", False))
        or _pool_has_departures(pool)
    )
    if needs_simulation:
        executor = StaticScheduleExecutor(
            workflow,
            costs,
            schedule,
            pool,
            actual_costs=actual_costs,
            strategy_name=getattr(scheduler, "name", "static"),
            perf_profile=perf_profile,
            departure_policy=departure_policy,
        )
        trace = executor.run()
    return AdaptiveRunResult(
        strategy=getattr(scheduler, "name", "static"),
        initial_schedule=schedule,
        final_schedule=schedule,
        trace=trace,
        killed_jobs=len({k.job_id for k in trace.kills}) if trace is not None else 0,
    )


def run_adaptive(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[AHEFTScheduler] = None,
    accept_only_if_better: bool = True,
    perf_profile=None,
) -> AdaptiveRunResult:
    """AHEFT adaptive rescheduling reacting to every pool/performance change."""
    loop = AdaptiveReschedulingLoop(
        scheduler or AHEFTScheduler(), accept_only_if_better=accept_only_if_better
    )
    return loop.run(workflow, costs, pool, perf_profile=perf_profile)


def run_dynamic(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    mapper=None,
    actual_costs: Optional[CostModel] = None,
    perf_profile=None,
) -> AdaptiveRunResult:
    """Dynamic just-in-time strategy executed on the event simulator."""
    executor = JustInTimeExecutor(
        workflow,
        costs,
        pool,
        mapper=mapper or MinMinScheduler(),
        actual_costs=actual_costs,
        perf_profile=perf_profile,
    )
    trace = executor.run()
    schedule = trace.to_schedule()
    return AdaptiveRunResult(
        strategy=executor.strategy_name,
        initial_schedule=schedule,
        final_schedule=schedule,
        trace=trace,
        killed_jobs=len({k.job_id for k in trace.kills}),
    )
