"""The generic adaptive rescheduling loop (paper Fig. 2) and strategy runners.

:class:`AdaptiveReschedulingLoop` is the paper's algorithm: starting from an
initial static schedule ``S0``, every event of interest triggers a
re-estimation and a candidate schedule ``S1`` for the unfinished part of the
DAG; ``S1`` replaces ``S0`` only if it is an initial schedule or its
predicted makespan is smaller (Fig. 2 lines 7–9).

Three convenience runners give the head-to-head comparison of the paper's
evaluation:

* :func:`run_static` — traditional static scheduling (plan once at t=0 on
  the initial pool; later resources are never used),
* :func:`run_adaptive` — AHEFT: the adaptive loop reacting to every
  resource-pool change,
* :func:`run_dynamic` — just-in-time mapping (Min-Min by default) executed
  on the discrete-event simulator.

All three run under the paper's experiment assumptions (§4.1): accurate
estimates and resource additions as the only pool changes, unless the
caller supplies a perturbed ``actual_costs`` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.history import PerformanceHistoryRepository
from repro.core.predictor import Predictor
from repro.resources.pool import PoolEvent, ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    Schedule,
    TIME_EPS,
)
from repro.scheduling.heft import HEFTScheduler
from repro.scheduling.minmin import MinMinScheduler
from repro.simulation.event_core import Event, EventCore, EventKind
from repro.simulation.executor import JustInTimeExecutor, StaticScheduleExecutor
from repro.simulation.trace import ExecutionTrace
from repro.workflow.costs import CostModel, ErrorModel, PerturbedCostModel
from repro.workflow.dag import Workflow

__all__ = [
    "ReschedulingDecision",
    "AdaptiveRunResult",
    "AdaptiveReschedulingLoop",
    "apply_departure_kills",
    "describe_pool_event",
    "project_actuals",
    "repair_schedule",
    "resolve_strategy",
    "run_static",
    "run_adaptive",
    "run_dynamic",
]


def apply_departure_kills(
    workflow: Workflow,
    schedule: Schedule,
    state: ExecutionState,
    removed: frozenset,
) -> tuple:
    """Apply a departure event to an execution-state snapshot.

    Jobs *running* on a removed resource at ``state.clock`` are killed:
    their partial execution is counted as wasted work and their status is
    reset to not-started (mutating ``state`` in place) so the next
    rescheduling pass re-maps them.  Unfinished work mapped to a removed
    resource — killed or merely planned there — makes the current plan
    infeasible, which forces the caller to adopt the replacement candidate
    regardless of the accept-if-better rule.

    Returns ``(wasted, killed_jobs, forced)``: the execution time thrown
    away, the set of killed job ids, and the infeasibility flag.  Shared by
    the single-workflow :class:`AdaptiveReschedulingLoop` and the
    multi-tenant planner so both apply identical departure semantics.

    Duplicate copies (HEFT with task duplication) count towards
    infeasibility too: an unfinished duplicate stranded on a departing
    resource invalidates the consumers planned around its local data, so
    the replacement candidate — which re-derives duplicates from scratch
    on the surviving pool — must be adopted unconditionally.
    """
    wasted = 0.0
    killed: set = set()
    forced = False
    if not removed:
        return wasted, killed, forced
    clock = state.clock
    for job in workflow.jobs:
        status = state.job_status(job)
        if status is JobStatus.FINISHED:
            continue
        if status is JobStatus.RUNNING and state.executed_on.get(job) in removed:
            wasted += clock - state.actual_start[job]
            killed.add(job)
            state.status[job] = JobStatus.NOT_STARTED
            state.actual_start.pop(job, None)
            state.executed_on.pop(job, None)
            forced = True
        elif status is JobStatus.NOT_STARTED:
            assignment = schedule.get(job)
            if assignment is not None and assignment.resource_id in removed:
                forced = True
    for duplicate in schedule.duplicates:
        if duplicate.resource_id in removed and duplicate.finish > clock + TIME_EPS:
            forced = True
    return wasted, killed, forced


@dataclass(frozen=True)
class ReschedulingDecision:
    """Outcome of evaluating one event in the adaptive loop.

    ``forced`` marks decisions where the previous plan had become
    *infeasible* — unfinished work was mapped to a resource that departed —
    so the candidate was adopted regardless of the accept-if-better rule.
    """

    time: float
    event: str
    previous_makespan: float
    candidate_makespan: float
    adopted: bool
    forced: bool = False

    @property
    def predicted_gain(self) -> float:
        """Positive when the candidate schedule is shorter."""
        return self.previous_makespan - self.candidate_makespan


@dataclass
class AdaptiveRunResult:
    """Result of running one strategy on one workflow instance."""

    strategy: str
    initial_schedule: Schedule
    final_schedule: Schedule
    decisions: List[ReschedulingDecision] = field(default_factory=list)
    trace: Optional[ExecutionTrace] = None
    killed_jobs: int = 0
    #: wasted work recorded by the analytic planning loop (simulated runs
    #: report it through the trace instead — see :attr:`wasted_work`).
    planned_wasted_work: float = 0.0

    @property
    def makespan(self) -> float:
        """The achieved makespan (actual trace if available, else planned)."""
        if self.trace is not None:
            return self.trace.makespan()
        return self.final_schedule.makespan()

    @property
    def initial_makespan(self) -> float:
        return self.initial_schedule.makespan()

    @property
    def rescheduling_count(self) -> int:
        """Number of *adopted* rescheduling decisions."""
        return sum(1 for decision in self.decisions if decision.adopted)

    @property
    def evaluated_events(self) -> int:
        return len(self.decisions)

    @property
    def wasted_work(self) -> float:
        """Execution time thrown away on departure kills."""
        if self.trace is not None:
            return self.trace.wasted_work()
        return self.planned_wasted_work


class AdaptiveReschedulingLoop:
    """The event-driven planning loop of paper Fig. 2.

    Parameters
    ----------
    scheduler:
        The heuristic ``H`` plugged into ``schedule(S0, P, H)``; AHEFT by
        default (any object with ``schedule``/``reschedule`` methods works).
    accept_only_if_better:
        Fig. 2 line 7: adopt the candidate only when its predicted makespan
        improves on the current plan.  Setting this to ``False`` (always
        adopt) is exposed for the ablation benchmark.
    epsilon:
        Minimum makespan improvement regarded as "better".
    """

    def __init__(
        self,
        scheduler: Optional[AHEFTScheduler] = None,
        *,
        accept_only_if_better: bool = True,
        epsilon: float = 1e-9,
    ) -> None:
        self.scheduler = scheduler or AHEFTScheduler()
        self.accept_only_if_better = accept_only_if_better
        self.epsilon = float(epsilon)

    # ------------------------------------------------------------------
    def run(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        events: Optional[Sequence[PoolEvent]] = None,
        strategy_name: Optional[str] = None,
        perf_profile=None,
        actual_costs: Optional[CostModel] = None,
        predictor: Optional[Predictor] = None,
        observe: bool = True,
        replan_on_deviation: Optional[float] = 0.1,
    ) -> AdaptiveRunResult:
        """Plan, then react to every event until the workflow finishes.

        Under the accurate-estimation assumption the execution state at each
        event time can be read directly off the schedule being executed
        (jobs finish exactly when scheduled), so the loop advances
        analytically from event to event — which is also how the paper's
        simulation treats static and adaptive strategies.

        Beyond the paper's join-only events the loop honours the adversarial
        scenario vocabulary:

        * **departures** — jobs running on a departing resource at the event
          time are killed (their partial execution counted as wasted work)
          and return to the unscheduled set; if any unfinished work was
          mapped to a departed resource the previous plan is *infeasible*
          and the candidate is adopted regardless of the accept-if-better
          rule (``forced`` decisions);
        * **performance changes** — when ``perf_profile`` marks a factor
          change at the event time, the current plan's remaining finish
          times are first *repaired* under the new factors (see
          :func:`repair_schedule`) so the accept rule compares the candidate
          against an honest baseline, and the candidate itself is planned
          with the degraded cost model.

        With ``actual_costs`` (a sampled ground truth, typically a
        :class:`~repro.workflow.costs.PerturbedCostModel`) and/or a
        ``predictor`` the loop leaves the accurate-estimation regime and
        closes the paper's Fig. 1 feedback cycle instead — see
        :meth:`_run_uncertain`.
        """
        if actual_costs is None and predictor is None:
            return self._run_analytic(
                workflow,
                costs,
                pool,
                events=events,
                strategy_name=strategy_name,
                perf_profile=perf_profile,
            )
        return self._run_uncertain(
            workflow,
            costs,
            pool,
            events=events,
            strategy_name=strategy_name,
            perf_profile=perf_profile,
            actual_costs=actual_costs,
            predictor=predictor,
            observe=observe,
            replan_on_deviation=replan_on_deviation,
        )

    # ------------------------------------------------------------------
    def _run_analytic(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        events: Optional[Sequence[PoolEvent]],
        strategy_name: Optional[str],
        perf_profile,
    ) -> AdaptiveRunResult:
        """The paper's analytic loop: actual durations equal the estimates."""
        initial_resources = pool.available_at(0.0)
        if not initial_resources:
            raise ValueError("no resources available at time 0")
        current = self.scheduler.schedule(workflow, costs, initial_resources)
        initial = current
        decisions: List[ReschedulingDecision] = []
        wasted = 0.0
        killed_jobs: set = set()

        triggers, perf_times = _merge_triggers(
            list(events) if events is not None else pool.events(), perf_profile
        )

        core = EventCore()

        def on_trigger(clock: float, event: Optional[PoolEvent]) -> None:
            nonlocal current, wasted, killed_jobs
            if clock >= current.makespan() - TIME_EPS:
                core.stop()  # the workflow finished before this event
                return
            resources = pool.available_at(clock)
            if not resources:
                return
            state = ExecutionState.from_schedule(current, clock, jobs=workflow.jobs)

            removed_set = frozenset(event.removed) if event is not None else frozenset()
            wasted_delta, killed, forced = apply_departure_kills(
                workflow, current, state, removed_set
            )
            wasted += wasted_delta
            killed_jobs |= killed

            effective_costs = costs
            if perf_profile is not None:
                effective_costs = perf_profile.scaled_costs(costs, clock)
                if clock in perf_times:
                    current = repair_schedule(
                        workflow,
                        current,
                        state,
                        effective_costs,
                        clock=clock,
                        resources=resources,
                    )

            candidate = self.scheduler.reschedule(
                workflow,
                effective_costs,
                resources,
                clock=clock,
                previous_schedule=current,
                execution_state=state,
            )
            adopt = (
                forced
                or not self.accept_only_if_better
                or candidate.makespan() < current.makespan() - self.epsilon
            )
            decisions.append(
                ReschedulingDecision(
                    time=clock,
                    event=describe_pool_event(event) if event is not None else "perf-change",
                    previous_makespan=current.makespan(),
                    candidate_makespan=candidate.makespan(),
                    adopted=adopt,
                    forced=forced,
                )
            )
            if adopt:
                current = candidate

        for clock in sorted(triggers):
            event = triggers[clock]
            core.post(
                clock,
                lambda c=clock, e=event: on_trigger(c, e),
                kind=EventKind.POOL_CHANGE if event is not None else EventKind.PERF_CHANGE,
                label=describe_pool_event(event) if event is not None else "perf-change",
            )
        core.run()
        return AdaptiveRunResult(
            strategy=strategy_name or getattr(self.scheduler, "name", "adaptive"),
            initial_schedule=initial,
            final_schedule=current,
            decisions=decisions,
            killed_jobs=len(killed_jobs),
            planned_wasted_work=wasted,
        )

    # ------------------------------------------------------------------
    def _run_uncertain(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        events: Optional[Sequence[PoolEvent]],
        strategy_name: Optional[str],
        perf_profile,
        actual_costs: Optional[CostModel],
        predictor: Optional[Predictor],
        observe: bool,
        replan_on_deviation: Optional[float],
    ) -> AdaptiveRunResult:
        """The Fig. 1 loop under *inaccurate* estimates.

        The Planner keeps planning on estimates (optionally re-estimated by
        the ``predictor`` from accumulated history), while the simulated
        grid executes the adopted bookings with the sampled ground-truth
        durations of ``actual_costs``.  Bookings are *reservations*: a job
        never starts before its booked start, and deviations push it (and
        its successors, and everything queued behind it on the resource)
        later — with a null error model the replay therefore reproduces the
        analytic loop bit for bit.

        At every trigger (pool change or performance change) the loop:

        1. advances the ground truth to the trigger time, committing actual
           starts/finishes (the Performance Monitor's report);
        2. records each newly finished job's observed duration in the
           predictor's history repository (Fig. 1: Scheduler → Performance
           History Repository);
        3. applies departure kills against the *actual* execution state;
        4. re-estimates the cost matrix via the predictor (history-blended
           prior) and the performance profile;
        5. syncs the belief plan with the observed facts and, when anything
           deviated, repairs its remaining timings under the re-estimated
           model so the accept rule has an honest baseline;
        6. asks the scheduler for a candidate and applies the usual
           accept-if-better (or forced) rule.

        Beyond the grid events, ``replan_on_deviation`` arms the monitor's
        own trigger: when a job's observed completion deviates from its
        booked one by more than the given fraction of its booked duration,
        the Planner re-evaluates at that completion instant (an extra
        decision with event label ``"deviation"``).  This is how the
        adaptive strategy *absorbs* estimate error between grid events —
        without it, accumulated delays would just push the reservation
        timeline back.  Zero noise produces zero deviations, so the trigger
        never fires on accurate estimates and bit-identity with the
        analytic loop is preserved.  ``None`` disables it.

        The returned result carries an :class:`ExecutionTrace` of the
        actual execution, so ``result.makespan`` is the achieved (not the
        predicted) makespan.
        """
        initial_resources = pool.available_at(0.0)
        if not initial_resources:
            raise ValueError("no resources available at time 0")
        truth = actual_costs if actual_costs is not None else costs
        history = predictor.history if predictor is not None else None

        def estimated(clock: float) -> CostModel:
            model = costs
            if predictor is not None:
                model = predictor.estimate(costs)
            if perf_profile is not None:
                model = perf_profile.scaled_costs(model, clock)
            return model

        current = self.scheduler.schedule(workflow, estimated(0.0), initial_resources)
        initial = current
        decisions: List[ReschedulingDecision] = []
        wasted = 0.0
        killed_jobs: set = set()
        name = strategy_name or getattr(self.scheduler, "name", "adaptive")
        trace = ExecutionTrace(workflow_name=workflow.name, strategy=name)

        job_index = {job: i for i, job in enumerate(workflow.jobs)}
        #: ground truth of every job that has started (running or finished)
        truth_assign: Dict[str, Assignment] = {}
        finished: set = set()
        recorded: set = set()

        def record_observation(assignment: Assignment) -> None:
            """Report a completed execution to the history repository.

            The observed wall-clock duration is normalised by the (known)
            performance factor at dispatch, so the history isolates the
            *estimate error* from the slowdown the profile already told the
            Planner about — otherwise the predictor would double-count
            degradations it replans around anyway.
            """
            if history is None or not observe or assignment.job_id in recorded:
                return
            duration = assignment.finish - assignment.start
            if perf_profile is not None:
                factor = perf_profile.factor_at(
                    assignment.resource_id, assignment.start
                )
                if factor != 1.0:
                    duration /= factor
            history.record_execution(
                workflow.job(assignment.job_id).operation,
                assignment.resource_id,
                duration,
                job_id=assignment.job_id,
                finished_at=assignment.finish,
                estimated=costs.computation_cost(
                    assignment.job_id, assignment.resource_id
                ),
            )
            recorded.add(assignment.job_id)

        def project(plan: Schedule) -> Dict[str, Assignment]:
            return project_actuals(
                workflow,
                plan,
                truth_assign,
                truth,
                perf_profile=perf_profile,
            )

        def commit(projection: Dict[str, Assignment], clock: float) -> None:
            """Advance the ground truth to ``clock`` (the monitor's report)."""
            started = [
                a for a in projection.values()
                if a.job_id not in truth_assign and a.start <= clock + TIME_EPS
            ]
            started.sort(key=lambda a: (a.start, a.finish, job_index[a.job_id]))
            for assignment in started:
                truth_assign[assignment.job_id] = assignment
            newly_finished = [
                a for job, a in truth_assign.items()
                if job not in finished and a.finish <= clock + TIME_EPS
            ]
            newly_finished.sort(key=lambda a: (a.finish, a.start, job_index[a.job_id]))
            for assignment in newly_finished:
                finished.add(assignment.job_id)
                record_observation(assignment)

        def snapshot(clock: float) -> ExecutionState:
            """The actual execution state at ``clock`` (mirrors
            :meth:`ExecutionState.from_schedule` conventions exactly)."""
            state = ExecutionState(clock=float(clock))
            for job in workflow.jobs:
                assignment = truth_assign.get(job)
                if assignment is None:
                    state.status[job] = JobStatus.NOT_STARTED
                    continue
                state.executed_on[job] = assignment.resource_id
                state.actual_start[job] = assignment.start
                if job in finished:
                    state.status[job] = JobStatus.FINISHED
                    state.actual_finish[job] = assignment.finish
                    state.data_arrivals[(job, assignment.resource_id)] = assignment.finish
                else:
                    state.status[job] = JobStatus.RUNNING
            return state

        def sync_belief(plan: Schedule, state: ExecutionState) -> tuple:
            """Substitute observed facts into the plan; never re-time futures.

            Returns ``(synced, changed)`` where ``changed`` flags any
            deviation between the plan and the observed actuals.  A running
            job keeps its *booked duration* shifted to its actual start
            (speed frozen at dispatch, estimate unchanged), floored at the
            clock — the planner knows an overdue job cannot finish in the
            past.
            """
            synced = Schedule(name=plan.name)
            changed = False
            clock = state.clock
            for duplicate in plan.duplicates:
                # started duplicate executions are facts (see repair_schedule)
                if duplicate.start <= clock + TIME_EPS:
                    synced.add_duplicate(duplicate)
            for job in workflow.jobs:
                booked = plan.get(job)
                if state.is_finished(job):
                    actual = Assignment(
                        job,
                        state.executed_on[job],
                        state.actual_start[job],
                        state.actual_finish[job],
                    )
                    synced.add(actual)
                    if (
                        booked is None
                        or booked.resource_id != actual.resource_id
                        or booked.start != actual.start
                        or booked.finish != actual.finish
                    ):
                        changed = True
                elif state.is_running(job):
                    rid = state.executed_on[job]
                    start = state.actual_start[job]
                    if booked is not None and booked.resource_id == rid:
                        if start == booked.start:
                            belief_finish = booked.finish
                        else:
                            belief_finish = start + (booked.finish - booked.start)
                            changed = True
                    else:
                        belief_finish = start + estimated(clock).computation_cost(job, rid)
                        changed = True
                    belief_finish = max(belief_finish, clock)
                    synced.add(Assignment(job, rid, start, belief_finish))
                elif booked is not None:
                    synced.add(booked)
            return synced, changed

        triggers, perf_times = _merge_triggers(
            list(events) if events is not None else pool.events(), perf_profile
        )

        def next_deviation(projection: Dict[str, Assignment], after: float) -> Optional[float]:
            """Earliest future completion deviating beyond the threshold.

            The monitor learns a job's actual duration when it completes;
            a completion whose time differs from the current plan's booked
            finish by more than ``replan_on_deviation`` of the booked
            duration is an event of interest.  Only completions strictly
            after ``after`` (the last processed trigger) can still fire.
            """
            if replan_on_deviation is None:
                return None
            earliest: Optional[float] = None
            for job, actual in list(truth_assign.items()) + list(projection.items()):
                if actual.finish <= after + TIME_EPS:
                    continue
                booked = current.get(job)
                if booked is None:
                    continue
                slack = replan_on_deviation * max(booked.duration, TIME_EPS)
                if abs(actual.finish - booked.finish) <= slack:
                    continue
                if earliest is None or actual.finish < earliest:
                    earliest = actual.finish
            return earliest

        static_times = sorted(triggers)
        static_index = 0
        last_clock = float("-inf")
        projection = project(current)

        core = EventCore()
        deviation_event: Optional[Event] = None

        def arm_deviation() -> None:
            """(Re)arm the monitor's single pending deviation trigger.

            The next deviating completion becomes an event only when it
            *strictly* precedes the next grid event (minus ``TIME_EPS``):
            on a tie the grid event is the trigger and the deviation is
            absorbed into its re-evaluation.  Recomputed after every
            processed trigger, because each adoption moves the projected
            completions.
            """
            nonlocal deviation_event
            if deviation_event is not None:
                deviation_event.cancel()
                deviation_event = None
            deviation_at = next_deviation(projection, last_clock)
            if deviation_at is None:
                return
            next_static = (
                static_times[static_index]
                if static_index < len(static_times)
                else None
            )
            if next_static is not None and not (deviation_at < next_static - TIME_EPS):
                return
            deviation_event = core.post(
                deviation_at,
                lambda t=deviation_at: on_trigger(t, None, True),
                kind=EventKind.DEVIATION,
                label="deviation",
            )

        def on_trigger(
            clock: float, event: Optional[PoolEvent], is_deviation: bool
        ) -> None:
            nonlocal current, wasted, killed_jobs, last_clock, static_index, projection
            if not is_deviation:
                static_index += 1
            completion = max(
                [a.finish for a in truth_assign.values()]
                + [a.finish for a in projection.values()],
                default=0.0,
            )
            if clock >= completion - TIME_EPS:
                core.stop()  # the workflow actually finished before this event
                return
            last_clock = clock
            resources = pool.available_at(clock)
            if not resources:
                arm_deviation()
                return
            commit(projection, clock)
            state = snapshot(clock)

            removed_set = frozenset(event.removed) if event is not None else frozenset()
            wasted_delta, killed, forced = apply_departure_kills(
                workflow, current, state, removed_set
            )
            wasted += wasted_delta
            killed_jobs |= killed
            for job in sorted(killed, key=job_index.__getitem__):
                killed_assignment = truth_assign.pop(job)
                trace.record_kill(
                    job, killed_assignment.resource_id, killed_assignment.start, clock
                )

            effective = estimated(clock)
            synced, changed = sync_belief(current, state)
            if changed or clock in perf_times:
                current = repair_schedule(
                    workflow,
                    synced if changed else current,
                    state,
                    effective,
                    clock=clock,
                    resources=resources,
                )

            candidate = self.scheduler.reschedule(
                workflow,
                effective,
                resources,
                clock=clock,
                previous_schedule=current,
                execution_state=state,
            )
            adopt = (
                forced
                or not self.accept_only_if_better
                or candidate.makespan() < current.makespan() - self.epsilon
            )
            if event is not None:
                label = describe_pool_event(event)
            else:
                label = "deviation" if is_deviation else "perf-change"
            decisions.append(
                ReschedulingDecision(
                    time=clock,
                    event=label,
                    previous_makespan=current.makespan(),
                    candidate_makespan=candidate.makespan(),
                    adopted=adopt,
                    forced=forced,
                )
            )
            if adopt:
                current = candidate
            projection = project(current)
            arm_deviation()

        for trigger_time in static_times:
            trigger = triggers[trigger_time]
            core.post(
                trigger_time,
                lambda c=trigger_time, e=trigger: on_trigger(c, e, False),
                kind=EventKind.POOL_CHANGE if trigger is not None else EventKind.PERF_CHANGE,
                label=describe_pool_event(trigger) if trigger is not None else "perf-change",
            )
        arm_deviation()
        core.run()

        # drain: the remaining projection is the actual tail of the run
        for assignment in projection.values():
            truth_assign.setdefault(assignment.job_id, assignment)
        remaining = [
            a for job, a in truth_assign.items()
            if job not in finished
        ]
        remaining.sort(key=lambda a: (a.finish, a.start, job_index[a.job_id]))
        for assignment in remaining:
            finished.add(assignment.job_id)
            record_observation(assignment)
        for job in workflow.jobs:
            assignment = truth_assign[job]
            trace.record_job(
                job, assignment.resource_id, assignment.start, assignment.finish
            )
        return AdaptiveRunResult(
            strategy=name,
            initial_schedule=initial,
            final_schedule=current,
            decisions=decisions,
            trace=trace,
            killed_jobs=len(killed_jobs),
            planned_wasted_work=wasted,
        )


def repair_schedule(
    workflow: Workflow,
    schedule: Schedule,
    state: ExecutionState,
    costs: CostModel,
    *,
    clock: float,
    resources: Sequence[str],
) -> Schedule:
    """Re-estimate a plan's remaining finish times under new perf factors.

    Every mapping is kept; only times move.  Finished jobs keep their actual
    history.  A *running* job keeps its scheduled finish time: a job's speed
    is frozen at dispatch — exactly the semantics of the simulation
    executors — so factor changes only affect work dispatched after them.
    Not-started jobs are re-timed in topological order on their mapped
    resource: ready when every predecessor's repaired output arrives
    (average communication cost when crossing resources), durations priced
    by ``costs`` (which already embeds the new factors).  Jobs mapped to
    resources no longer in ``resources`` keep their old times — such a plan
    is infeasible and the caller adopts the replacement candidate
    unconditionally.

    The repaired schedule is the honest comparison baseline for the
    accept-if-better rule: without it a degradation would be invisible (the
    stale plan still *predicts* the old makespan) and the Planner would
    wrongly reject every post-degradation candidate.
    """
    available = set(resources)
    repaired = Schedule(name=schedule.name)
    finish_new: Dict[str, float] = {}
    free: Dict[str, float] = {}

    # Historical duplicates (duplication-based strategies) that began
    # executing by ``clock`` are facts: keep them so the pinned history
    # stays precedence-feasible, and block their resources while they run.
    # Future duplicates are dropped — the re-timing below prices every
    # not-started job off the primary copies, which is feasible without
    # them, and the next real replanning pass re-derives duplicates.
    for duplicate in schedule.duplicates:
        if duplicate.start > clock + TIME_EPS:
            continue
        if duplicate.resource_id not in available and duplicate.finish > clock + TIME_EPS:
            continue
        repaired.add_duplicate(duplicate)
        if duplicate.finish > clock + TIME_EPS:
            rid = duplicate.resource_id
            free[rid] = max(free.get(rid, clock), duplicate.finish)

    for job in workflow.jobs:
        if state.is_finished(job):
            assignment = Assignment(
                job,
                state.executed_on[job],
                state.actual_start[job],
                state.actual_finish[job],
            )
            repaired.add(assignment)
            finish_new[job] = assignment.finish

    for job in workflow.jobs:
        if not state.is_running(job):
            continue
        assignment = schedule.get(job)
        if assignment is None:
            continue
        rid = assignment.resource_id
        # speed frozen at dispatch: the in-flight job finishes as scheduled
        repaired.add(assignment)
        finish_new[job] = assignment.finish
        free[rid] = max(free.get(rid, clock), assignment.finish)

    for job in workflow.topological_order():
        if job in finish_new:
            continue
        assignment = schedule.get(job)
        if assignment is None:
            continue
        rid = assignment.resource_id
        if rid not in available:
            # infeasible mapping — keep the stale times; the caller adopts
            # the replacement candidate unconditionally (forced decision).
            repaired.add(assignment)
            finish_new[job] = assignment.finish
            continue
        ready = clock
        for pred in workflow.predecessors(job):
            pred_finish = finish_new.get(pred)
            if pred_finish is None:
                pred_assignment = schedule.get(pred)
                pred_finish = pred_assignment.finish if pred_assignment else clock
            if pred in state.executed_on:
                pred_rid = state.executed_on[pred]
            else:
                pred_assignment = schedule.get(pred)
                pred_rid = pred_assignment.resource_id if pred_assignment else rid
            comm = 0.0 if pred_rid == rid else costs.average_communication_cost(pred, job)
            ready = max(ready, pred_finish + comm)
        start = max(ready, free.get(rid, clock))
        finish = start + costs.computation_cost(job, rid)
        repaired.add(Assignment(job, rid, start, finish))
        finish_new[job] = finish
        free[rid] = finish
    return repaired


def _merge_triggers(
    pool_events: Sequence[PoolEvent], perf_profile
) -> tuple:
    """Merge pool events and perf-change times into one trigger map.

    ``pool.events()`` aggregates per time point already, but callers may
    pass their own event list, so same-time entries are merged instead of
    dropped.  Returns ``(triggers, perf_times)`` where ``triggers`` maps
    time to an optional :class:`PoolEvent` (``None`` marks a pure
    performance change).
    """
    triggers: Dict[float, Optional[PoolEvent]] = {}
    for event in pool_events:
        existing = triggers.get(event.time)
        if existing is None:
            triggers[event.time] = event
        else:
            triggers[event.time] = PoolEvent(
                time=event.time,
                added=tuple(sorted({*existing.added, *event.added})),
                removed=tuple(sorted({*existing.removed, *event.removed})),
            )
    perf_times = set()
    if perf_profile is not None:
        perf_times = set(perf_profile.change_times())
        for time in perf_times:
            triggers.setdefault(time, None)
    return triggers, perf_times


def project_actuals(
    workflow: Workflow,
    plan: Schedule,
    started: Dict[str, Assignment],
    actual_costs: CostModel,
    *,
    perf_profile=None,
) -> Dict[str, Assignment]:
    """Replay a plan's not-yet-started jobs under ground-truth durations.

    Bookings are treated as *reservations*: a job starts at its booked
    start, pushed later if its resource is still busy (the previous booking
    overran) or its inputs have not arrived yet (a predecessor overran).
    Its actual duration is ``actual_costs.computation_cost(job, rid)``
    scaled by the resource's performance factor at the actual start (speed
    frozen at dispatch, matching the simulation executors).  With accurate
    actual costs the replay reproduces the plan bit for bit — the zero-noise
    differential guarantee.

    ``started`` holds the ground truth of every job already dispatched
    (running or finished); those assignments are taken as facts.  Returns
    the actual :class:`~repro.scheduling.base.Assignment` of every other
    job in the plan.

    Per-resource execution order is the plan's booking order; a job only
    starts once every predecessor's output has arrived (transfer priced by
    the actual model, which delegates communication to the estimates).  The
    combined (resource-order + precedence) relation of a feasible plan is
    acyclic, so the fixed-point pass below always terminates with every job
    placed.
    """
    free: Dict[str, float] = {}
    for assignment in started.values():
        rid = assignment.resource_id
        if assignment.finish > free.get(rid, 0.0):
            free[rid] = assignment.finish
    queues: Dict[str, List[Assignment]] = {}
    pending = 0
    for rid in plan.resources_used():
        queue = [a for a in plan.assignments_on(rid) if a.job_id not in started]
        if queue:
            queues[rid] = queue
            pending += len(queue)
    projected: Dict[str, Assignment] = {}

    progress = True
    while pending and progress:
        progress = False
        for rid in sorted(queues):
            queue = queues[rid]
            while queue:
                booked = queue[0]
                job = booked.job_id
                preds = workflow.predecessors(job)
                resolved = True
                ready = max(booked.start, free.get(rid, 0.0))
                for pred in preds:
                    pred_actual = started.get(pred) or projected.get(pred)
                    if pred_actual is None:
                        resolved = False
                        break
                    transfer = actual_costs.communication_cost(
                        pred, job, pred_actual.resource_id, rid
                    )
                    arrival = pred_actual.finish + transfer
                    if arrival > ready:
                        ready = arrival
                if not resolved:
                    break
                duration = actual_costs.computation_cost(job, rid)
                if perf_profile is not None:
                    duration *= perf_profile.factor_at(rid, ready)
                actual = Assignment(job, rid, ready, ready + duration)
                projected[job] = actual
                free[rid] = actual.finish
                queue.pop(0)
                pending -= 1
                progress = True
    if pending:
        stalled = sorted(a.job_id for queue in queues.values() for a in queue)
        raise ValueError(
            f"actual-duration replay stalled; unplaced jobs: {stalled[:10]}"
        )
    return projected


def describe_pool_event(event: PoolEvent) -> str:
    """Human-readable ``+joined -left`` rendering of a pool event."""
    parts = []
    if event.added:
        parts.append(f"+{','.join(event.added)}")
    if event.removed:
        parts.append(f"-{','.join(event.removed)}")
    return " ".join(parts) or "pool-change"


# ----------------------------------------------------------------------
# strategy runners
# ----------------------------------------------------------------------
def resolve_strategy(
    strategy: Optional[str],
    scheduler,
    *,
    require: Optional[str] = None,
    default=None,
):
    """Resolve the ``strategy=`` / ``scheduler=`` pair of a runner.

    ``strategy`` is a name from the scheduling registry
    (:data:`repro.scheduling.registry.SCHEDULERS`); ``scheduler`` is an
    explicit object — passing both is ambiguous and rejected.  ``require``
    names an interface the resolved object must provide (``"reschedule"``
    for the adaptive loop, ``"map_ready_jobs"`` for the just-in-time
    executor, ``"schedule"`` for plan-once execution).
    """
    if strategy is not None and scheduler is not None:
        raise ValueError("pass either strategy= or scheduler=, not both")
    if strategy is not None:
        from repro.scheduling.registry import make_scheduler

        scheduler = make_scheduler(strategy)
    if scheduler is None:
        scheduler = default() if default is not None else None
    if require and scheduler is not None and not hasattr(scheduler, require):
        raise ValueError(
            f"strategy {strategy or getattr(scheduler, 'name', scheduler)!r} "
            f"does not provide the {require!r} interface required here"
        )
    return scheduler


def _pool_has_departures(pool: ResourcePool) -> bool:
    return any(
        pool.resource(rid).available_until is not None
        for rid in pool.all_resource_ids()
    )


def _resolve_actual_costs(
    costs: CostModel,
    actual_costs: Optional[CostModel],
    error_model: Optional[ErrorModel],
) -> Optional[CostModel]:
    """The ground-truth model of a run: explicit override or sampled truth."""
    if actual_costs is not None:
        return actual_costs
    if error_model is not None:
        return PerturbedCostModel(costs, error_model)
    return None


def _run_static_impl(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[HEFTScheduler] = None,
    strategy: Optional[str] = None,
    actual_costs: Optional[CostModel] = None,
    error_model: Optional[ErrorModel] = None,
    history: Optional[PerformanceHistoryRepository] = None,
    simulate: bool = False,
    perf_profile=None,
    departure_policy: str = "failover",
) -> AdaptiveRunResult:
    """Traditional static strategy: plan once on the initial pool.

    With ``simulate=True`` (or when ``actual_costs`` differs from the
    estimates) the schedule is executed on the discrete-event simulator and
    the *actual* makespan is reported; otherwise the planned makespan is
    used directly, which is identical under accurate estimates.  Pools with
    departures and non-trivial performance profiles force the simulation:
    the planned makespan is a fiction once resources can leave or slow down
    mid-run.  ``error_model`` samples a stochastic ground truth around the
    estimates (see :class:`~repro.workflow.costs.ErrorModel`); observed
    executions are reported to the optional ``history`` repository — the
    static strategy never replans, so the history only benefits later runs.
    ``strategy`` names any registered scheduler (see
    :data:`repro.scheduling.registry.SCHEDULERS`) as an alternative to an
    explicit ``scheduler`` object.
    """
    scheduler = resolve_strategy(
        strategy, scheduler, require="schedule", default=HEFTScheduler
    )
    initial_resources = pool.available_at(0.0)
    if not initial_resources:
        raise ValueError("no resources available at time 0")
    schedule = scheduler.schedule(workflow, costs, initial_resources)
    actual_costs = _resolve_actual_costs(costs, actual_costs, error_model)
    trace = None
    needs_simulation = (
        simulate
        or actual_costs is not None
        # a supplied history wants observations, which only the executor's
        # Performance Monitor produces
        or history is not None
        or (perf_profile is not None and not getattr(perf_profile, "is_trivial", False))
        or _pool_has_departures(pool)
    )
    if needs_simulation:
        executor = StaticScheduleExecutor(
            workflow,
            costs,
            schedule,
            pool,
            actual_costs=actual_costs,
            strategy_name=getattr(scheduler, "name", "static"),
            perf_profile=perf_profile,
            departure_policy=departure_policy,
            history=history,
        )
        trace = executor.run()
    return AdaptiveRunResult(
        strategy=getattr(scheduler, "name", "static"),
        initial_schedule=schedule,
        final_schedule=schedule,
        trace=trace,
        killed_jobs=len({k.job_id for k in trace.kills}) if trace is not None else 0,
    )


def _run_adaptive_impl(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[AHEFTScheduler] = None,
    strategy: Optional[str] = None,
    accept_only_if_better: bool = True,
    perf_profile=None,
    actual_costs: Optional[CostModel] = None,
    error_model: Optional[ErrorModel] = None,
    history: Optional[PerformanceHistoryRepository] = None,
    feedback: bool = True,
    blend: float = 1.0,
    predictor_mode: str = "ratio",
    replan_on_deviation: Optional[float] = 0.1,
) -> AdaptiveRunResult:
    """AHEFT adaptive rescheduling reacting to every pool/performance change.

    ``error_model`` (or an explicit ``actual_costs`` truth model) switches
    the loop into the estimate-error regime: adopted bookings execute with
    sampled ground-truth durations, observed actuals are recorded into
    ``history`` (a fresh repository when not supplied), and — with
    ``feedback`` (default) — each replan re-estimates the cost matrix via
    the :class:`~repro.core.predictor.Predictor` before calling AHEFT,
    closing the paper's Fig. 1 loop.  ``predictor_mode`` selects the
    re-estimation semantics (``"ratio"`` learns multiplicative per-resource
    corrections — the default, exact for systematic resource bias;
    ``"absolute"`` overrides per-operation durations).
    ``replan_on_deviation`` additionally triggers a re-evaluation whenever
    an observed completion misses its booking by the given fraction of the
    booked duration (``None`` limits replanning to grid events, as in the
    analytic loop).

    ``strategy`` injects any registered scheduler with the ``reschedule``
    interface into the loop (``run_adaptive(strategy="cpop")`` runs a
    CPOP-based adaptive loop) — the ablation hook that compares the
    paper's AHEFT against every other heuristic run adaptively.
    """
    loop = AdaptiveReschedulingLoop(
        resolve_strategy(
            strategy, scheduler, require="reschedule", default=AHEFTScheduler
        ),
        accept_only_if_better=accept_only_if_better,
    )
    explicit_truth = actual_costs is not None
    actual_costs = _resolve_actual_costs(costs, actual_costs, error_model)
    # A *null* error model means the estimates are the truth: there is
    # nothing for the history to teach, so re-estimation stays off and the
    # run is bit-identical to the analytic loop.  (Re-estimating anyway
    # would still change plans: observations aggregate per operation, which
    # differs from the per-job priors even with zero noise.)  An explicitly
    # supplied history or truth model opts back in.
    noisy_truth = explicit_truth or (error_model is not None and not error_model.is_null)
    predictor = None
    if feedback and (noisy_truth or history is not None):
        predictor = Predictor(
            history if history is not None else PerformanceHistoryRepository(),
            blend=blend,
            mode=predictor_mode,
        )
    return loop.run(
        workflow,
        costs,
        pool,
        perf_profile=perf_profile,
        actual_costs=actual_costs,
        predictor=predictor,
        replan_on_deviation=replan_on_deviation,
    )


def _run_dynamic_impl(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    mapper=None,
    strategy: Optional[str] = None,
    actual_costs: Optional[CostModel] = None,
    error_model: Optional[ErrorModel] = None,
    history: Optional[PerformanceHistoryRepository] = None,
    perf_profile=None,
) -> AdaptiveRunResult:
    """Dynamic just-in-time strategy executed on the event simulator.

    ``strategy`` names any registered scheduler with the batch
    ``map_ready_jobs`` interface (minmin, maxmin, sufferage).
    """
    executor = JustInTimeExecutor(
        workflow,
        costs,
        pool,
        mapper=resolve_strategy(
            strategy, mapper, require="map_ready_jobs", default=MinMinScheduler
        ),
        actual_costs=_resolve_actual_costs(costs, actual_costs, error_model),
        perf_profile=perf_profile,
        history=history,
    )
    trace = executor.run()
    schedule = trace.to_schedule()
    return AdaptiveRunResult(
        strategy=executor.strategy_name,
        initial_schedule=schedule,
        final_schedule=schedule,
        trace=trace,
        killed_jobs=len({k.job_id for k in trace.kills}),
    )


# ----------------------------------------------------------------------
# deprecated public runners: thin shims over the repro.run facade
# ----------------------------------------------------------------------
_DEPRECATION_HINT = (
    "is deprecated; call repro.run(workflow, pool, costs=costs, "
    "mode={mode!r}) instead (bit-identical result via .raw)"
)


def _shim(mode: str, which: str, workflow, costs, pool, strategy, scheduler, options):
    from repro import _deprecation
    from repro.facade import run as _facade_run

    # stacklevel 4: warn_once -> _shim -> run_* wrapper -> user call site
    _deprecation.warn_once(
        which,
        f"{which}() " + _DEPRECATION_HINT.format(mode=mode),
        stacklevel=4,
    )
    if strategy is not None and scheduler is not None:
        raise ValueError("pass either strategy= or scheduler=, not both")
    return _facade_run(
        workflow,
        pool,
        mode=mode,
        costs=costs,
        strategy=strategy if strategy is not None else scheduler,
        **options,
    ).raw


def run_static(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[HEFTScheduler] = None,
    strategy: Optional[str] = None,
    actual_costs: Optional[CostModel] = None,
    error_model: Optional[ErrorModel] = None,
    history: Optional[PerformanceHistoryRepository] = None,
    simulate: bool = False,
    perf_profile=None,
    departure_policy: str = "failover",
) -> AdaptiveRunResult:
    """Deprecated alias of ``repro.run(..., mode="static")``.

    See :func:`_run_static_impl` for the semantics; the shim forwards to
    the facade and returns the identical :class:`AdaptiveRunResult`.
    """
    return _shim(
        "static",
        "run_static",
        workflow,
        costs,
        pool,
        strategy,
        scheduler,
        dict(
            actual_costs=actual_costs,
            error_model=error_model,
            history=history,
            simulate=simulate,
            perf_profile=perf_profile,
            departure_policy=departure_policy,
        ),
    )


def run_adaptive(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[AHEFTScheduler] = None,
    strategy: Optional[str] = None,
    accept_only_if_better: bool = True,
    perf_profile=None,
    actual_costs: Optional[CostModel] = None,
    error_model: Optional[ErrorModel] = None,
    history: Optional[PerformanceHistoryRepository] = None,
    feedback: bool = True,
    blend: float = 1.0,
    predictor_mode: str = "ratio",
    replan_on_deviation: Optional[float] = 0.1,
) -> AdaptiveRunResult:
    """Deprecated alias of ``repro.run(..., mode="adaptive")``.

    See :func:`_run_adaptive_impl` for the semantics; the shim forwards to
    the facade and returns the identical :class:`AdaptiveRunResult`.
    """
    return _shim(
        "adaptive",
        "run_adaptive",
        workflow,
        costs,
        pool,
        strategy,
        scheduler,
        dict(
            accept_only_if_better=accept_only_if_better,
            perf_profile=perf_profile,
            actual_costs=actual_costs,
            error_model=error_model,
            history=history,
            feedback=feedback,
            blend=blend,
            predictor_mode=predictor_mode,
            replan_on_deviation=replan_on_deviation,
        ),
    )


def run_dynamic(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    mapper=None,
    strategy: Optional[str] = None,
    actual_costs: Optional[CostModel] = None,
    error_model: Optional[ErrorModel] = None,
    history: Optional[PerformanceHistoryRepository] = None,
    perf_profile=None,
) -> AdaptiveRunResult:
    """Deprecated alias of ``repro.run(..., mode="dynamic")``.

    See :func:`_run_dynamic_impl` for the semantics; the shim forwards to
    the facade and returns the identical :class:`AdaptiveRunResult`.
    """
    return _shim(
        "dynamic",
        "run_dynamic",
        workflow,
        costs,
        pool,
        strategy,
        mapper,
        dict(
            actual_costs=actual_costs,
            error_model=error_model,
            history=history,
            perf_profile=perf_profile,
        ),
    )
