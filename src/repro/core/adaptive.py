"""The generic adaptive rescheduling loop (paper Fig. 2) and strategy runners.

:class:`AdaptiveReschedulingLoop` is the paper's algorithm: starting from an
initial static schedule ``S0``, every event of interest triggers a
re-estimation and a candidate schedule ``S1`` for the unfinished part of the
DAG; ``S1`` replaces ``S0`` only if it is an initial schedule or its
predicted makespan is smaller (Fig. 2 lines 7–9).

Three convenience runners give the head-to-head comparison of the paper's
evaluation:

* :func:`run_static` — traditional static scheduling (plan once at t=0 on
  the initial pool; later resources are never used),
* :func:`run_adaptive` — AHEFT: the adaptive loop reacting to every
  resource-pool change,
* :func:`run_dynamic` — just-in-time mapping (Min-Min by default) executed
  on the discrete-event simulator.

All three run under the paper's experiment assumptions (§4.1): accurate
estimates and resource additions as the only pool changes, unless the
caller supplies a perturbed ``actual_costs`` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.resources.pool import PoolEvent, ResourcePool
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import ExecutionState, Schedule, TIME_EPS
from repro.scheduling.heft import HEFTScheduler
from repro.scheduling.minmin import MinMinScheduler
from repro.simulation.executor import JustInTimeExecutor, StaticScheduleExecutor
from repro.simulation.trace import ExecutionTrace
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = [
    "ReschedulingDecision",
    "AdaptiveRunResult",
    "AdaptiveReschedulingLoop",
    "run_static",
    "run_adaptive",
    "run_dynamic",
]


@dataclass(frozen=True)
class ReschedulingDecision:
    """Outcome of evaluating one event in the adaptive loop."""

    time: float
    event: str
    previous_makespan: float
    candidate_makespan: float
    adopted: bool

    @property
    def predicted_gain(self) -> float:
        """Positive when the candidate schedule is shorter."""
        return self.previous_makespan - self.candidate_makespan


@dataclass
class AdaptiveRunResult:
    """Result of running one strategy on one workflow instance."""

    strategy: str
    initial_schedule: Schedule
    final_schedule: Schedule
    decisions: List[ReschedulingDecision] = field(default_factory=list)
    trace: Optional[ExecutionTrace] = None

    @property
    def makespan(self) -> float:
        """The achieved makespan (actual trace if available, else planned)."""
        if self.trace is not None:
            return self.trace.makespan()
        return self.final_schedule.makespan()

    @property
    def initial_makespan(self) -> float:
        return self.initial_schedule.makespan()

    @property
    def rescheduling_count(self) -> int:
        """Number of *adopted* rescheduling decisions."""
        return sum(1 for decision in self.decisions if decision.adopted)

    @property
    def evaluated_events(self) -> int:
        return len(self.decisions)


class AdaptiveReschedulingLoop:
    """The event-driven planning loop of paper Fig. 2.

    Parameters
    ----------
    scheduler:
        The heuristic ``H`` plugged into ``schedule(S0, P, H)``; AHEFT by
        default (any object with ``schedule``/``reschedule`` methods works).
    accept_only_if_better:
        Fig. 2 line 7: adopt the candidate only when its predicted makespan
        improves on the current plan.  Setting this to ``False`` (always
        adopt) is exposed for the ablation benchmark.
    epsilon:
        Minimum makespan improvement regarded as "better".
    """

    def __init__(
        self,
        scheduler: Optional[AHEFTScheduler] = None,
        *,
        accept_only_if_better: bool = True,
        epsilon: float = 1e-9,
    ) -> None:
        self.scheduler = scheduler or AHEFTScheduler()
        self.accept_only_if_better = accept_only_if_better
        self.epsilon = float(epsilon)

    # ------------------------------------------------------------------
    def run(
        self,
        workflow: Workflow,
        costs: CostModel,
        pool: ResourcePool,
        *,
        events: Optional[Sequence[PoolEvent]] = None,
        strategy_name: Optional[str] = None,
    ) -> AdaptiveRunResult:
        """Plan, then react to every pool event until the workflow finishes.

        Under the accurate-estimation assumption the execution state at each
        event time can be read directly off the schedule being executed
        (jobs finish exactly when scheduled), so the loop advances
        analytically from event to event — which is also how the paper's
        simulation treats static and adaptive strategies.
        """
        initial_resources = pool.available_at(0.0)
        if not initial_resources:
            raise ValueError("no resources available at time 0")
        current = self.scheduler.schedule(workflow, costs, initial_resources)
        initial = current
        decisions: List[ReschedulingDecision] = []

        pool_events = list(events) if events is not None else pool.events()
        for event in sorted(pool_events, key=lambda e: e.time):
            clock = event.time
            if clock >= current.makespan() - TIME_EPS:
                break  # the workflow finished before this event
            resources = pool.available_at(clock)
            if not resources:
                continue
            state = ExecutionState.from_schedule(current, clock, jobs=workflow.jobs)
            candidate = self.scheduler.reschedule(
                workflow,
                costs,
                resources,
                clock=clock,
                previous_schedule=current,
                execution_state=state,
            )
            adopt = (
                not self.accept_only_if_better
                or candidate.makespan() < current.makespan() - self.epsilon
            )
            decisions.append(
                ReschedulingDecision(
                    time=clock,
                    event=_describe_event(event),
                    previous_makespan=current.makespan(),
                    candidate_makespan=candidate.makespan(),
                    adopted=adopt,
                )
            )
            if adopt:
                current = candidate
        return AdaptiveRunResult(
            strategy=strategy_name or getattr(self.scheduler, "name", "adaptive"),
            initial_schedule=initial,
            final_schedule=current,
            decisions=decisions,
        )


def _describe_event(event: PoolEvent) -> str:
    parts = []
    if event.added:
        parts.append(f"+{','.join(event.added)}")
    if event.removed:
        parts.append(f"-{','.join(event.removed)}")
    return " ".join(parts) or "pool-change"


# ----------------------------------------------------------------------
# strategy runners
# ----------------------------------------------------------------------
def run_static(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[HEFTScheduler] = None,
    actual_costs: Optional[CostModel] = None,
    simulate: bool = False,
) -> AdaptiveRunResult:
    """Traditional static strategy: plan once on the initial pool.

    With ``simulate=True`` (or when ``actual_costs`` differs from the
    estimates) the schedule is executed on the discrete-event simulator and
    the *actual* makespan is reported; otherwise the planned makespan is
    used directly, which is identical under accurate estimates.
    """
    scheduler = scheduler or HEFTScheduler()
    initial_resources = pool.available_at(0.0)
    if not initial_resources:
        raise ValueError("no resources available at time 0")
    schedule = scheduler.schedule(workflow, costs, initial_resources)
    trace = None
    if simulate or actual_costs is not None:
        executor = StaticScheduleExecutor(
            workflow,
            costs,
            schedule,
            pool,
            actual_costs=actual_costs,
            strategy_name=getattr(scheduler, "name", "static"),
        )
        trace = executor.run()
    return AdaptiveRunResult(
        strategy=getattr(scheduler, "name", "static"),
        initial_schedule=schedule,
        final_schedule=schedule,
        trace=trace,
    )


def run_adaptive(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    scheduler: Optional[AHEFTScheduler] = None,
    accept_only_if_better: bool = True,
) -> AdaptiveRunResult:
    """AHEFT adaptive rescheduling reacting to every pool change."""
    loop = AdaptiveReschedulingLoop(
        scheduler or AHEFTScheduler(), accept_only_if_better=accept_only_if_better
    )
    return loop.run(workflow, costs, pool)


def run_dynamic(
    workflow: Workflow,
    costs: CostModel,
    pool: ResourcePool,
    *,
    mapper=None,
    actual_costs: Optional[CostModel] = None,
) -> AdaptiveRunResult:
    """Dynamic just-in-time strategy executed on the event simulator."""
    executor = JustInTimeExecutor(
        workflow,
        costs,
        pool,
        mapper=mapper or MinMinScheduler(),
        actual_costs=actual_costs,
    )
    trace = executor.run()
    schedule = trace.to_schedule()
    return AdaptiveRunResult(
        strategy=executor.strategy_name,
        initial_schedule=schedule,
        final_schedule=schedule,
        trace=trace,
    )
