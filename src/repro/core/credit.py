"""Per-tenant credit scores for overload-safe multi-tenancy.

A *credit score* in ``(0, 1]`` summarises how well a tenant's workflows
have been meeting their service targets on the shared grid.  The score is
recomputed online, one update per completed workflow, from two signals:

* **SLO / deadline violations** — a completion that missed its deadline
  (``TenantSpec.deadline_factor``) or blew its stretch SLO
  (``TenantSpec.slo_stretch``) multiplies the completion's behaviour score
  by ``violation_penalty``;
* **tail-stretch ratio** — the ``tail_quantile`` of the tenant's recent
  stretches (a sliding window of ``tail_window`` completions) relative to
  ``stretch_target``: a tenant whose tail stretch is at or below the
  target scores 1.0, a tenant whose tail runs at twice the target scores
  0.5, and so on.

Scores feed the planner's ``credit_drf`` interleave through
**credit-coupled weights** ``w_t = 0.5 + 0.5 * credit_t``: a tenant can
lose at most half its fair-share entitlement, never starve.  The
interpretation is reputational, as in credit-scheduling systems: a tenant
whose stream keeps violating its own targets is the one saturating the
grid, and damping its weight sheds exactly that load while the compliant
tenants keep their service.  Because the grid books a single resource
dimension (processor time), weighted DRF degenerates to weighted fair
share over consumed time — the dominant share *is* the time share.

Every update is a pure fold over the completion stream (exponential
memory ``memory``, clamped to ``[floor, 1.0]``), so ledgers are
deterministic and replayable; nothing here reads a clock or draws
randomness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional

import numpy as np

__all__ = ["CreditConfig", "CreditLedger"]


@dataclass(frozen=True)
class CreditConfig:
    """Parameters of the online credit fold.

    Parameters
    ----------
    initial:
        Score of a tenant with no history (a fresh tenant is trusted).
    floor:
        Hard lower bound (> 0) — credit stays in ``[floor, 1.0]`` so the
        coupled weight ``0.5 + 0.5 * credit`` never reaches the 0.5
        asymptote and a tenant can always recover.
    memory:
        Exponential memory of the fold: the new credit is
        ``memory * old + (1 - memory) * score``.
    violation_penalty:
        Multiplier applied to a completion's behaviour score when it
        violated its deadline or stretch SLO.
    stretch_target:
        The tail stretch regarded as fully acceptable (score 1.0).
    tail_window:
        Number of recent completions the tail quantile is taken over.
    tail_quantile:
        Quantile in ``(0, 1]`` of the recent-stretch window used as the
        tenant's tail stretch.
    """

    initial: float = 1.0
    floor: float = 0.05
    memory: float = 0.6
    violation_penalty: float = 0.5
    stretch_target: float = 2.0
    tail_window: int = 16
    tail_quantile: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.floor <= self.initial <= 1.0:
            raise ValueError("need 0 < floor <= initial <= 1")
        if not 0.0 <= self.memory < 1.0:
            raise ValueError("memory must be in [0, 1)")
        if not 0.0 < self.violation_penalty <= 1.0:
            raise ValueError("violation_penalty must be in (0, 1]")
        if self.stretch_target < 1.0:
            raise ValueError("stretch_target must be at least 1.0")
        if self.tail_window < 1:
            raise ValueError("tail_window must be positive")
        if not 0.0 < self.tail_quantile <= 1.0:
            raise ValueError("tail_quantile must be in (0, 1]")


@dataclass
class _TenantState:
    credit: float
    stretches: Deque[float]
    completions: int = 0
    deadline_violations: int = 0
    slo_violations: int = 0


class CreditLedger:
    """Online per-tenant credit scores in ``(0, 1]``; see the module docs."""

    def __init__(
        self,
        config: Optional[CreditConfig] = None,
        *,
        tenants: Iterable[str] = (),
    ) -> None:
        self.config = config or CreditConfig()
        self._tenants: Dict[str, _TenantState] = {}
        for tenant in tenants:
            self._state(tenant)

    # ------------------------------------------------------------------
    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                credit=self.config.initial,
                stretches=deque(maxlen=self.config.tail_window),
            )
            self._tenants[tenant] = state
        return state

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def credit(self, tenant: str) -> float:
        """The tenant's current credit (``initial`` without history)."""
        state = self._tenants.get(tenant)
        return self.config.initial if state is None else state.credit

    def weight(self, tenant: str) -> float:
        """The credit-coupled interleave weight ``0.5 + 0.5 * credit``."""
        return 0.5 + 0.5 * self.credit(tenant)

    def tail_stretch(self, tenant: str) -> float:
        """The ``tail_quantile`` of the tenant's recent stretches (0.0 = none)."""
        state = self._tenants.get(tenant)
        if state is None or not state.stretches:
            return 0.0
        return float(
            np.quantile(
                np.asarray(state.stretches, dtype=float), self.config.tail_quantile
            )
        )

    # ------------------------------------------------------------------
    # the online fold
    # ------------------------------------------------------------------
    def record_completion(
        self,
        tenant: str,
        *,
        stretch: float,
        deadline_violated: bool = False,
        slo_violated: bool = False,
    ) -> float:
        """Fold one completed workflow into the tenant's credit.

        Returns the updated credit.  ``stretch`` is the achieved flow time
        over the dedicated-grid span (>= 0; negative values are clamped).
        """
        config = self.config
        state = self._state(tenant)
        state.completions += 1
        state.stretches.append(max(0.0, float(stretch)))
        if deadline_violated:
            state.deadline_violations += 1
        if slo_violated:
            state.slo_violations += 1
        tail = self.tail_stretch(tenant)
        score = 1.0 if tail <= config.stretch_target else config.stretch_target / tail
        if deadline_violated or slo_violated:
            score *= config.violation_penalty
        credit = config.memory * state.credit + (1.0 - config.memory) * score
        state.credit = min(1.0, max(config.floor, credit))
        return state.credit

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-tenant view (credit, counts, tail stretch)."""
        return {
            tenant: {
                "credit": state.credit,
                "weight": self.weight(tenant),
                "completions": state.completions,
                "deadline_violations": state.deadline_violations,
                "slo_violations": state.slo_violations,
                "tail_stretch": self.tail_stretch(tenant),
            }
            for tenant, state in sorted(self._tenants.items())
        }

    def credits(self) -> Dict[str, float]:
        """Current ``tenant -> credit`` mapping (tenants seen so far)."""
        return {
            tenant: state.credit for tenant, state in sorted(self._tenants.items())
        }
