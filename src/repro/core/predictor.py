"""The Predictor: producing the estimation matrix ``P`` (paper Fig. 1/2).

The Predictor combines a *prior* cost model (what the user or the workflow
description claims about job costs) with the Performance History Repository
(what has actually been observed) to produce the estimates the Scheduler
plans with.  With an empty history the Predictor returns the prior
unchanged — which, under the paper's accurate-estimation assumption, is the
common case in the headline experiments.  When history exists, per
(operation, resource) observations override the prior, optionally blended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.history import PerformanceHistoryRepository
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["HistoryAdjustedCostModel", "Predictor"]


class HistoryAdjustedCostModel(CostModel):
    """A cost model that overrides a prior with observed history.

    For a job whose operation has observations on the queried resource, the
    estimate is ``blend · observed + (1 − blend) · prior``; with
    ``blend = 1`` (default) the observation replaces the prior entirely.
    Communication costs are taken from the prior unchanged (the paper's
    history covers job performance, not network performance).
    """

    def __init__(
        self,
        prior: CostModel,
        history: PerformanceHistoryRepository,
        *,
        blend: float = 1.0,
        use_operation_average: bool = True,
    ) -> None:
        if not 0 <= blend <= 1:
            raise ValueError("blend must be in [0, 1]")
        self.workflow: Workflow = prior.workflow
        self.prior = prior
        self.history = history
        self.blend = float(blend)
        self.use_operation_average = bool(use_operation_average)

    def _observed(self, job_id: str, resource_id: Optional[str]) -> Optional[float]:
        operation = self.workflow.job(job_id).operation
        observed = self.history.observed_duration(operation, resource_id)
        if observed is None and self.use_operation_average and resource_id is not None:
            observed = self.history.observed_duration(operation, None)
        return observed

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        prior = self.prior.computation_cost(job_id, resource_id)
        observed = self._observed(job_id, resource_id)
        if observed is None:
            return prior
        return self.blend * observed + (1.0 - self.blend) * prior

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        prior = self.prior.intrinsic_average_computation_cost(job_id)
        observed = self._observed(job_id, None)
        if observed is None:
            return prior
        return self.blend * observed + (1.0 - self.blend) * prior

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        return self.prior.communication_cost(src, dst, src_resource, dst_resource)

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.prior.average_communication_cost(src, dst)

    @property
    def has_uniform_communication(self) -> bool:
        # communication is delegated to the prior unchanged, so its
        # uniformity carries over; computation stays uncached (the default
        # ``cache_token() is None``) because the history can grow between
        # calls without the workflow mutating.
        return self.prior.has_uniform_communication


@dataclass
class Predictor:
    """Builds the estimation matrix ``P = estimate(T, R)`` of paper Fig. 2.

    Parameters
    ----------
    history:
        The Performance History Repository shared with the Planner.
    blend:
        How strongly observations override the prior (1 = replace).
    """

    history: PerformanceHistoryRepository
    blend: float = 1.0

    def estimate(self, prior: CostModel) -> CostModel:
        """Return the cost model the Scheduler should plan with."""
        if len(self.history) == 0 or self.blend == 0:
            return prior
        return HistoryAdjustedCostModel(prior, self.history, blend=self.blend)

    def estimation_matrix(
        self, prior: CostModel, resources: Sequence[str]
    ) -> "np.ndarray":
        """The dense ``v × |R|`` matrix ``P`` (useful for inspection/tests)."""
        model = self.estimate(prior)
        workflow = prior.workflow
        matrix = np.zeros((workflow.num_jobs, len(resources)))
        for i, job in enumerate(workflow.jobs):
            for j, resource in enumerate(resources):
                matrix[i, j] = model.computation_cost(job, resource)
        return matrix
