"""The Predictor: producing the estimation matrix ``P`` (paper Fig. 1/2).

The Predictor combines a *prior* cost model (what the user or the workflow
description claims about job costs) with the Performance History Repository
(what has actually been observed) to produce the estimates the Scheduler
plans with.  With an empty history the Predictor returns the prior
unchanged — which, under the paper's accurate-estimation assumption, is the
common case in the headline experiments.

Two re-estimation modes are provided:

* **absolute** (:class:`HistoryAdjustedCostModel`) — per (operation,
  resource) observations override the prior duration, optionally blended.
  Right when jobs of one operation are interchangeable (the application
  DAGs: every BLAST worker does the same work).
* **ratio** (:class:`RatioAdjustedCostModel`) — the history calibrates a
  multiplicative *correction factor* per resource (mean of
  observed/estimated over that resource's completed jobs) and the prior is
  scaled by it.  Right for heterogeneous job populations, where absolute
  durations do not transfer between jobs but systematic resource bias
  (obsolete benchmarks, misreported speeds) does.  This is the mode the
  uncertainty engine replans with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.history import PerformanceHistoryRepository
from repro.workflow.costs import CostModel
from repro.workflow.dag import Workflow

__all__ = ["HistoryAdjustedCostModel", "RatioAdjustedCostModel", "Predictor"]


class HistoryAdjustedCostModel(CostModel):
    """A cost model that overrides a prior with observed history.

    For a job whose operation has observations on the queried resource, the
    estimate is ``blend · observed + (1 − blend) · prior``; with
    ``blend = 1`` (default) the observation replaces the prior entirely.
    Communication costs are taken from the prior unchanged (the paper's
    history covers job performance, not network performance).
    """

    def __init__(
        self,
        prior: CostModel,
        history: PerformanceHistoryRepository,
        *,
        blend: float = 1.0,
        use_operation_average: bool = True,
    ) -> None:
        if not 0 <= blend <= 1:
            raise ValueError("blend must be in [0, 1]")
        self.workflow: Workflow = prior.workflow
        self.prior = prior
        self.history = history
        self.blend = float(blend)
        self.use_operation_average = bool(use_operation_average)

    def _observed(self, job_id: str, resource_id: Optional[str]) -> Optional[float]:
        operation = self.workflow.job(job_id).operation
        observed = self.history.observed_duration(operation, resource_id)
        if observed is None and self.use_operation_average and resource_id is not None:
            observed = self.history.observed_duration(operation, None)
        return observed

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        prior = self.prior.computation_cost(job_id, resource_id)
        observed = self._observed(job_id, resource_id)
        if observed is None:
            return prior
        return self.blend * observed + (1.0 - self.blend) * prior

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        prior = self.prior.intrinsic_average_computation_cost(job_id)
        observed = self._observed(job_id, None)
        if observed is None:
            return prior
        return self.blend * observed + (1.0 - self.blend) * prior

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        return self.prior.communication_cost(src, dst, src_resource, dst_resource)

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.prior.average_communication_cost(src, dst)

    @property
    def has_uniform_communication(self) -> bool:
        # communication is delegated to the prior unchanged, so its
        # uniformity carries over; computation stays uncached (the default
        # ``cache_token() is None``) because the history can grow between
        # calls without the workflow mutating.
        return self.prior.has_uniform_communication


class RatioAdjustedCostModel(CostModel):
    """A cost model scaling the prior by observed/estimated ratios.

    For every resource with observations, the correction factor is the
    *shrunk* mean of ``observed_duration / prior_estimate`` over that
    resource's recorded executions (jobs whose prior estimate is near zero
    are skipped): ``ratio = (Σ rᵢ + k) / (n + k)`` with ``prior_strength``
    ``k`` pseudo-observations of 1.0.  The estimate is then
    ``prior · (blend · ratio + (1 − blend) · 1)``: ``blend = 1`` applies
    the learned correction fully, ``blend = 0`` keeps the prior.
    Resources without history keep the prior unchanged, and so does every
    communication query.

    Because corrections are multiplicative, the model converges to the
    exact factor for systematic per-resource bias (a machine consistently
    1.4× slower than advertised is re-estimated as 1.4× slower for *every*
    job), while the shrinkage keeps it from chasing independent zero-mean
    noise — one or two unlucky observations must not make the Planner
    abandon a perfectly good resource.
    """

    def __init__(
        self,
        prior: CostModel,
        history: PerformanceHistoryRepository,
        *,
        blend: float = 1.0,
        prior_strength: float = 2.0,
    ) -> None:
        if not 0 <= blend <= 1:
            raise ValueError("blend must be in [0, 1]")
        if prior_strength < 0:
            raise ValueError("prior_strength must be non-negative")
        self.workflow: Workflow = prior.workflow
        self.prior = prior
        self.history = history
        self.blend = float(blend)
        self.prior_strength = float(prior_strength)
        #: per-resource ratio memo, valid while the history does not grow
        self._ratio_cache: Dict[str, float] = {}
        self._ratio_stamp = -1

    def resource_ratio(self, resource_id: str) -> float:
        """The learned correction factor of one resource (1.0 = no history)."""
        stamp = len(self.history)
        if stamp != self._ratio_stamp:
            self._ratio_cache.clear()
            self._ratio_stamp = stamp
        cached = self._ratio_cache.get(resource_id)
        if cached is not None:
            return cached
        ratios = []
        for record in self.history.records:
            if record.resource_id != resource_id:
                continue
            if record.estimated > 1e-12:
                # self-contained observation: the monitor stored the prior
                # estimate at observation time (robust across workflows)
                ratios.append(record.duration / record.estimated)
                continue
            # legacy/hand-recorded observation: divide by the current
            # workflow's estimate, but only when the record demonstrably
            # refers to this workflow's job (ids recur across generated
            # DAGs, so an operation mismatch marks a foreign record)
            if not record.job_id or record.job_id not in self.workflow:
                continue
            if self.workflow.job(record.job_id).operation != record.operation:
                continue
            estimate = self.prior.computation_cost(record.job_id, resource_id)
            if estimate <= 1e-12:
                continue
            ratios.append(record.duration / estimate)
        if ratios:
            # shrunk mean: prior_strength pseudo-observations of ratio 1.0
            ratio = (float(np.sum(ratios)) + self.prior_strength) / (
                len(ratios) + self.prior_strength
            )
        else:
            ratio = 1.0
        self._ratio_cache[resource_id] = ratio
        return ratio

    def _corrected(self, estimate: float, resource_id: str) -> float:
        ratio = self.resource_ratio(resource_id)
        if ratio == 1.0:
            return estimate
        return estimate * (self.blend * ratio + (1.0 - self.blend))

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        return self._corrected(
            self.prior.computation_cost(job_id, resource_id), resource_id
        )

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return self.prior.intrinsic_average_computation_cost(job_id)

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        return self.prior.communication_cost(src, dst, src_resource, dst_resource)

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.prior.average_communication_cost(src, dst)

    @property
    def has_uniform_communication(self) -> bool:
        # communication delegates to the prior; computation stays uncached
        # (default ``cache_token() is None``) because the history grows
        # between calls without the workflow mutating.
        return self.prior.has_uniform_communication


@dataclass
class Predictor:
    """Builds the estimation matrix ``P = estimate(T, R)`` of paper Fig. 2.

    Parameters
    ----------
    history:
        The Performance History Repository shared with the Planner.
    blend:
        How strongly observations override the prior (1 = replace).
    mode:
        ``"absolute"`` (per-operation override,
        :class:`HistoryAdjustedCostModel`) or ``"ratio"`` (per-resource
        multiplicative correction, :class:`RatioAdjustedCostModel`).
    """

    history: PerformanceHistoryRepository
    blend: float = 1.0
    mode: str = "absolute"

    def __post_init__(self) -> None:
        if self.mode not in ("absolute", "ratio"):
            raise ValueError(
                f"unknown predictor mode {self.mode!r}; "
                "choose 'absolute' or 'ratio'"
            )

    def estimate(self, prior: CostModel) -> CostModel:
        """Return the cost model the Scheduler should plan with."""
        if len(self.history) == 0 or self.blend == 0:
            return prior
        if self.mode == "ratio":
            return RatioAdjustedCostModel(prior, self.history, blend=self.blend)
        return HistoryAdjustedCostModel(prior, self.history, blend=self.blend)

    def estimation_matrix(
        self, prior: CostModel, resources: Sequence[str]
    ) -> "np.ndarray":
        """The dense ``v × |R|`` matrix ``P`` (useful for inspection/tests)."""
        model = self.estimate(prior)
        workflow = prior.workflow
        matrix = np.zeros((workflow.num_jobs, len(resources)))
        for i, job in enumerate(workflow.jobs):
            for j, resource in enumerate(resources):
                matrix[i, j] = model.computation_cost(job, resource)
        return matrix
