"""Once-per-process deprecation warnings for the legacy entry points.

The PR that introduced :func:`repro.run` kept the historical runners
(``run_static``/``run_adaptive``/``run_dynamic``) and direct
``SharedGridExecutor`` construction working bit-identically, but they now
announce themselves as deprecated — **exactly once per process** per
name, so sweeps calling a runner thousands of times do not flood stderr.

:func:`suppress` scopes out the warning for internal forwarding: the
facade itself (and other in-package callers) build on the same code
paths, which must not look deprecated to the user.  :func:`reset` clears
the once-per-process memory, for tests that assert warning behaviour.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Iterator, Set

__all__ = ["warn_once", "suppress", "reset"]

_warned: Set[str] = set()
_suppressed = 0


def warn_once(name: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``name`` — only the first time.

    ``stacklevel`` counts from this function (1) through its caller (2)
    to the user's call site; the default of 3 fits a deprecated entry
    point calling :func:`warn_once` directly.  Entry points that forward
    through an intermediate frame (e.g. the ``run_*`` shims funnelling
    into one helper) must pass a larger value so the warning is
    attributed to the user's file and line, not the shim module.
    """
    if _suppressed or name in _warned:
        return
    _warned.add(name)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


@contextlib.contextmanager
def suppress() -> Iterator[None]:
    """Silence :func:`warn_once` inside the block (internal forwarding)."""
    global _suppressed
    _suppressed += 1
    try:
        yield
    finally:
        _suppressed -= 1


def reset() -> None:
    """Forget which names already warned (test hook)."""
    _warned.clear()
