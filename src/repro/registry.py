"""One uniform interface over the repo's three component registries.

The package grew three parallel registries — scheduling strategies
(:data:`repro.scheduling.registry.SCHEDULERS`), scenarios
(:mod:`repro.scenarios.library`) and estimate-error families
(:data:`repro.workflow.costs.ERROR_MODELS`) — each with its own
``available_*`` / ``make_*`` / ``*_summary`` helpers.  This module is the
one front door:

>>> from repro import registry
>>> registry.available("scheduler")       # doctest: +ELLIPSIS
['aheft', 'cpop', ...]
>>> registry.make("error_model", "gaussian", magnitude=0.3, seed=7)
... # doctest: +SKIP
>>> registry.describe("scenario", "paper")["summary"]
"the paper's join-only (R, Δ, δ) model"

The historical module-level helpers (``make_scheduler``,
``make_scenario``, ``make_error_model``, …) remain supported as thin
wrappers over these three functions, and error semantics are preserved
per kind: unknown schedulers and error models raise :class:`KeyError`,
unknown scenarios raise :class:`~repro.scenarios.base.ScenarioError` —
with the same messages the domain helpers always produced.

Imports of the domain registries happen lazily inside each function, so
this module can sit at the package root without creating import cycles.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["KINDS", "available", "make", "describe"]

#: The registry kinds understood by :func:`available`/:func:`make`/:func:`describe`.
KINDS = ("scheduler", "scenario", "error_model")

#: accepted spellings (the CLI and the facade say "strategy")
_ALIASES = {"strategy": "scheduler", "error-model": "error_model"}


def _resolve_kind(kind: str) -> str:
    resolved = _ALIASES.get(kind, kind)
    if resolved not in KINDS:
        raise KeyError(f"unknown registry kind {kind!r}; choose from {KINDS}")
    return resolved


def available(kind: str) -> List[str]:
    """Registered component names of one ``kind``, sorted."""
    kind = _resolve_kind(kind)
    if kind == "scheduler":
        from repro.scheduling.registry import SCHEDULERS

        return sorted(SCHEDULERS)
    if kind == "scenario":
        from repro.scenarios.library import _REGISTRY

        return sorted(_REGISTRY)
    from repro.workflow.costs import ERROR_MODELS

    return sorted(ERROR_MODELS)


def make(kind: str, name: str, **params):
    """Instantiate the registered component ``name`` of ``kind``.

    ``params`` are forwarded to the component's factory.  For error
    models, ``magnitude`` (the family's primary knob) and ``seed`` carry
    the semantics of :func:`repro.workflow.costs.make_error_model`.
    """
    kind = _resolve_kind(kind)
    if kind == "scheduler":
        from repro.scheduling.registry import SCHEDULERS, validate_scheduler_params

        info = SCHEDULERS.get(name)
        if info is None:
            raise KeyError(
                f"unknown scheduler {name!r}; registered: {sorted(SCHEDULERS)}"
            )
        validate_scheduler_params(name, info.factory, params)
        return info.factory(**params)
    if kind == "scenario":
        from repro.scenarios.base import ScenarioError
        from repro.scenarios.library import _REGISTRY

        factory = _REGISTRY.get(name)
        if factory is None:
            raise ScenarioError(
                f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
            )
        return factory(**params)
    from repro.workflow.costs import ERROR_MODELS

    factory = ERROR_MODELS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown error model {name!r}; available: {sorted(ERROR_MODELS)}"
        )
    magnitude = params.pop("magnitude", None)
    seed = params.pop("seed", 0)
    if magnitude is None:
        return factory(seed=seed, **params)
    return factory(magnitude, seed=seed, **params)


def describe(kind: str, name: str) -> Dict[str, object]:
    """Metadata of one registered component, as the CLI renders it.

    Always contains ``name`` and ``summary``; schedulers add their default
    execution ``kind`` (static/adaptive/dynamic) and constructor
    ``params``, scenarios add their factory ``defaults``.
    """
    kind = _resolve_kind(kind)
    if kind == "scheduler":
        from repro.scheduling.registry import SCHEDULERS

        info = SCHEDULERS.get(name)
        if info is None:
            raise KeyError(
                f"unknown scheduler {name!r}; registered: {sorted(SCHEDULERS)}"
            )
        return {
            "name": name,
            "kind": info.kind,
            "summary": info.summary,
            "params": info.parameters(),
        }
    if kind == "scenario":
        from repro.scenarios.base import ScenarioError
        from repro.scenarios.library import _REGISTRY, _SUMMARIES

        factory = _REGISTRY.get(name)
        if factory is None:
            raise ScenarioError(
                f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
            )
        return {
            "name": name,
            "summary": _SUMMARIES.get(name, ""),
            "defaults": factory().params(),
        }
    from repro.workflow.costs import ERROR_MODELS, _ERROR_MODEL_SUMMARIES

    if name not in ERROR_MODELS:
        raise KeyError(
            f"unknown error model {name!r}; available: {sorted(ERROR_MODELS)}"
        )
    return {
        "name": name,
        "summary": _ERROR_MODEL_SUMMARIES.get(name, "(no summary registered)"),
    }
