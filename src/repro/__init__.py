"""repro — reproduction of *An Adaptive Rescheduling Strategy for Grid
Workflow Applications* (Zhifeng Yu & Weisong Shi, IPDPS 2007).

The package implements the paper's contribution — the AHEFT adaptive
rescheduling algorithm and the Planner/Executor collaboration around it —
together with every substrate the evaluation needs: the workflow DAG model,
heterogeneous dynamic resource pools, the HEFT and dynamic Min-Min
baselines, a discrete-event grid simulator, the random/BLAST/WIEN2K workflow
generators and the experiment harness that regenerates the paper's tables
and figures.

Quickstart
----------
Every execution mode goes through one entry point, :func:`repro.run`:

>>> import repro
>>> case = repro.generate_blast_case(50, ccr=5.0, beta=0.5, seed=7)
>>> pool = repro.ResourceChangeModel(initial_size=10, interval=400, fraction=0.2).build_pool()
>>> heft = repro.run(case.workflow, pool, costs=case.costs, mode="static")
>>> aheft = repro.run(case.workflow, pool, costs=case.costs, mode="adaptive")
>>> aheft.makespan <= heft.makespan
True

Strategies, scenarios and error models are addressed by name through one
registry facade (:mod:`repro.registry`): ``repro.registry.available
("scheduler")``, ``repro.run(..., strategy="cpop", scenario="paper",
error_model="gaussian")``.
"""

from repro import registry
from repro.facade import RunResult, run

from repro.workflow import (
    Job,
    Workflow,
    CostModel,
    TabularCostModel,
    HeterogeneousCostModel,
    UniformCostModel,
    upward_ranks,
    critical_path,
    parallelism_profile,
)
from repro.resources import (
    Resource,
    ResourcePool,
    ResourceChangeModel,
    StaticResourceModel,
    ReservationBook,
)
from repro.scheduling import (
    Assignment,
    Schedule,
    ExecutionState,
    JobStatus,
    HEFTScheduler,
    heft_schedule,
    AHEFTScheduler,
    aheft_reschedule,
    MinMinScheduler,
    validate_schedule,
)
from repro.core import (
    Planner,
    Predictor,
    PerformanceHistoryRepository,
    AdaptiveReschedulingLoop,
    run_static,
    run_adaptive,
    run_dynamic,
    WhatIfAnalyzer,
)
from repro.simulation import (
    SimulationEngine,
    StaticScheduleExecutor,
    JustInTimeExecutor,
    ExecutionTrace,
    render_gantt,
)
from repro.generators import (
    WorkflowCase,
    RandomDAGParameters,
    generate_random_case,
    generate_blast_case,
    generate_wien2k_case,
    generate_montage_case,
    sample_dag_case,
    sample_dag_pool,
)
from repro.experiments import (
    ExperimentCase,
    CaseResult,
    run_case,
    sweep_random_parameter,
    sweep_application_parameter,
    improvement_rate,
    render_improvement_table,
    render_series,
)
from repro.scenarios import (
    Scenario,
    ScenarioRun,
    PerformanceProfile,
    ScaledCostModel,
    available_scenarios,
    compose,
    make_scenario,
    materialize,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade
    "run",
    "RunResult",
    "registry",
    # workflow
    "Job",
    "Workflow",
    "CostModel",
    "TabularCostModel",
    "HeterogeneousCostModel",
    "UniformCostModel",
    "upward_ranks",
    "critical_path",
    "parallelism_profile",
    # resources
    "Resource",
    "ResourcePool",
    "ResourceChangeModel",
    "StaticResourceModel",
    "ReservationBook",
    # scheduling
    "Assignment",
    "Schedule",
    "ExecutionState",
    "JobStatus",
    "HEFTScheduler",
    "heft_schedule",
    "AHEFTScheduler",
    "aheft_reschedule",
    "MinMinScheduler",
    "validate_schedule",
    # core
    "Planner",
    "Predictor",
    "PerformanceHistoryRepository",
    "AdaptiveReschedulingLoop",
    "run_static",
    "run_adaptive",
    "run_dynamic",
    "WhatIfAnalyzer",
    # simulation
    "SimulationEngine",
    "StaticScheduleExecutor",
    "JustInTimeExecutor",
    "ExecutionTrace",
    "render_gantt",
    # generators
    "WorkflowCase",
    "RandomDAGParameters",
    "generate_random_case",
    "generate_blast_case",
    "generate_wien2k_case",
    "generate_montage_case",
    "sample_dag_case",
    "sample_dag_pool",
    # experiments
    "ExperimentCase",
    "CaseResult",
    "run_case",
    "sweep_random_parameter",
    "sweep_application_parameter",
    "improvement_rate",
    "render_improvement_table",
    "render_series",
    # scenarios
    "Scenario",
    "ScenarioRun",
    "PerformanceProfile",
    "ScaledCostModel",
    "available_scenarios",
    "compose",
    "make_scenario",
    "materialize",
]
