"""Deterministic ordering helpers.

Scheduling heuristics are full of ties (equal ranks, equal finish times).
The paper does not specify tie-breaking, but reproducibility across runs and
platforms requires that ties are broken deterministically.  These helpers
centralise that policy: ties are always broken by the *secondary key* (job
or resource identifier), never by dict iteration order or float noise.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Sequence, Set, TypeVar

T = TypeVar("T")

__all__ = ["argsort_stable", "stable_min", "topological_order"]


def argsort_stable(values: Mapping[T, float], *, reverse: bool = False) -> List[T]:
    """Sort the keys of ``values`` by value, breaking ties by key.

    Parameters
    ----------
    values:
        Mapping from item to sort value.
    reverse:
        If ``True``, sort by non-increasing value (ties still broken by
        ascending key), which is the order HEFT uses for upward ranks.
    """
    keys = sorted(values.keys(), key=lambda item: str(item))
    return sorted(keys, key=lambda item: values[item], reverse=reverse)


def stable_min(
    candidates: Iterable[T],
    key: Callable[[T], float],
    *,
    tolerance: float = 0.0,
) -> T:
    """Return the candidate minimising ``key`` with deterministic tie-breaks.

    Two candidates whose key values differ by at most ``tolerance`` are
    considered tied and the one with the smaller string representation wins.
    """
    best: T | None = None
    best_value: float | None = None
    for candidate in sorted(candidates, key=lambda item: str(item)):
        value = key(candidate)
        if best is None or value < best_value - tolerance:
            best = candidate
            best_value = value
    if best is None:
        raise ValueError("stable_min() arg is an empty sequence")
    return best


def topological_order(
    nodes: Sequence[T],
    successors: Mapping[T, Iterable[T]],
) -> List[T]:
    """Kahn topological sort with deterministic (sorted-key) tie breaking.

    Raises
    ------
    ValueError
        If the graph contains a cycle.
    """
    nodes = list(nodes)
    node_set: Set[T] = set(nodes)
    indegree: Dict[T, int] = {node: 0 for node in nodes}
    for node in nodes:
        for succ in successors.get(node, ()):  # type: ignore[arg-type]
            if succ not in node_set:
                raise ValueError(f"edge target {succ!r} is not a node")
            indegree[succ] += 1

    ready = sorted((node for node, deg in indegree.items() if deg == 0), key=str)
    order: List[T] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        inserted = []
        for succ in successors.get(node, ()):  # type: ignore[arg-type]
            indegree[succ] -= 1
            if indegree[succ] == 0:
                inserted.append(succ)
        if inserted:
            ready.extend(inserted)
            ready.sort(key=str)
    if len(order) != len(nodes):
        raise ValueError("graph contains a cycle")
    return order
