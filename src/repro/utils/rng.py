"""Deterministic random number stream management.

Experiments in the paper sweep hundreds of thousands of generated cases.  To
keep every case reproducible independently of execution order (and of how
many cases ran before it), each generated artefact — a DAG instance, a
resource pool, a resource-change trace — derives its own seeded
:class:`numpy.random.Generator` from a stable ``(root_seed, *tokens)`` key.

This mirrors common HPC practice of hierarchical seeding: the root seed
identifies the experiment, the tokens identify the artefact, and the derived
stream is independent of all siblings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

Token = Union[int, float, str, bytes]

__all__ = ["derive_seed", "spawn_rng", "RandomSource"]


def _token_bytes(token: Token) -> bytes:
    """Render a seed token to a canonical byte string."""
    if isinstance(token, bytes):
        return b"b:" + token
    if isinstance(token, bool):  # bool before int: bool is a subclass of int
        return b"o:" + (b"1" if token else b"0")
    if isinstance(token, int):
        return b"i:" + str(token).encode("ascii")
    if isinstance(token, float):
        # repr() keeps full precision and distinguishes 1.0 from 1
        return b"f:" + repr(token).encode("ascii")
    if isinstance(token, str):
        return b"s:" + token.encode("utf-8")
    raise TypeError(f"unsupported seed token type: {type(token)!r}")


def derive_seed(root_seed: int, *tokens: Token) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a token path.

    The derivation is a SHA-256 hash over the canonical rendering of the
    root seed and each token, truncated to 63 bits so it stays a positive
    Python int accepted by :func:`numpy.random.default_rng`.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    tokens:
        Any mix of ints, floats, strings or bytes identifying the artefact
        (e.g. ``("dag", v, ccr, instance_index)``).
    """
    digest = hashlib.sha256()
    digest.update(_token_bytes(int(root_seed)))
    for token in tokens:
        digest.update(b"\x00")
        digest.update(_token_bytes(token))
    value = int.from_bytes(digest.digest()[:8], "little")
    return value & ((1 << 63) - 1)


def spawn_rng(root_seed: int, *tokens: Token) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given token path."""
    return np.random.default_rng(derive_seed(root_seed, *tokens))


@dataclass(frozen=True)
class RandomSource:
    """A reusable factory of named, independent random streams.

    Examples
    --------
    >>> src = RandomSource(seed=42)
    >>> rng_costs = src.rng("costs", 3)
    >>> rng_shape = src.rng("shape", 3)
    >>> float(rng_costs.random()) != float(rng_shape.random())
    True
    """

    seed: int

    def rng(self, *tokens: Token) -> np.random.Generator:
        """Return the stream identified by ``tokens``."""
        return spawn_rng(self.seed, *tokens)

    def child(self, *tokens: Token) -> "RandomSource":
        """Return a child source whose streams are namespaced by ``tokens``."""
        return RandomSource(seed=derive_seed(self.seed, *tokens))

    def integers(self, low: int, high: int, *tokens: Token) -> int:
        """Draw a single integer in ``[low, high)`` from the named stream."""
        return int(self.rng(*tokens).integers(low, high))

    def choice(self, options: Iterable, *tokens: Token):
        """Pick one element of ``options`` using the named stream."""
        options = list(options)
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        idx = int(self.rng(*tokens).integers(0, len(options)))
        return options[idx]
