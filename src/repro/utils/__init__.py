"""Small shared utilities used across the :mod:`repro` package.

The utilities are deliberately dependency free (NumPy only) so that every
other subsystem — workflow model, resource model, schedulers, simulation —
can rely on them without import cycles.
"""

from repro.utils.rng import RandomSource, derive_seed, spawn_rng
from repro.utils.ordering import argsort_stable, stable_min, topological_order

__all__ = [
    "RandomSource",
    "derive_seed",
    "spawn_rng",
    "argsort_stable",
    "stable_min",
    "topological_order",
]
