"""Composable scenarios of adversarial grid dynamics.

See :mod:`repro.scenarios.base` for the engine (event streams, validation,
materialisation into pools and performance profiles) and
:mod:`repro.scenarios.library` for the named scenarios the experiment
configs and the ``repro`` CLI accept.
"""

from repro.scenarios.base import (
    ComposedScenario,
    PerformanceProfile,
    ScaledCostModel,
    Scenario,
    ScenarioContext,
    ScenarioError,
    ScenarioEvent,
    ScenarioRun,
    compose,
    materialize,
    validate_events,
)
from repro.scenarios.library import (
    ChurnScenario,
    DegradationScenario,
    DepartureScenario,
    JoinBurstScenario,
    LoadSpikeScenario,
    PaperJoinScenario,
    StaticScenario,
    available_scenarios,
    make_scenario,
    register_scenario,
    scenario_summary,
)

__all__ = [
    "Scenario",
    "ScenarioContext",
    "ScenarioError",
    "ScenarioEvent",
    "ScenarioRun",
    "ComposedScenario",
    "PerformanceProfile",
    "ScaledCostModel",
    "compose",
    "materialize",
    "validate_events",
    "StaticScenario",
    "PaperJoinScenario",
    "DepartureScenario",
    "JoinBurstScenario",
    "ChurnScenario",
    "DegradationScenario",
    "LoadSpikeScenario",
    "available_scenarios",
    "make_scenario",
    "register_scenario",
    "scenario_summary",
]
