"""The scenario engine: composable event streams of resource-pool dynamics.

The paper evaluates AHEFT only under its benign (R, Δ, δ) change model —
resources *join* the grid and nothing else (§4.1 assumption 3).  The
scenario engine generalises that model into a small algebra of *event
streams* so the same sweeps can be re-run under adversarial dynamics:

* a :class:`Scenario` generates an abstract stream of
  :class:`ScenarioEvent` values (joins, departures, per-resource
  performance changes) from a :class:`ScenarioContext`,
* scenarios *compose*: ``a + b`` merges both streams chronologically,
* :func:`materialize` turns a scenario into a concrete
  :class:`ScenarioRun` — a :class:`~repro.resources.pool.ResourcePool`
  with availability windows, a :class:`PerformanceProfile` of
  piecewise-constant per-resource speed factors, and the validated event
  stream the adaptive Planner replans on.

Validation guarantees every materialised stream is *physically possible*:
event times are non-negative and non-decreasing, departures only remove
resources that are present, and the pool never drops below one resource
(the grid never goes empty mid-run).  :func:`validate_events` raises
:class:`ScenarioError` otherwise; the property-based tests in
``tests/test_scenarios.py`` exercise it on random compositions.

Performance changes are modelled as multiplicative *slowdown factors* on a
resource's computation time (1.0 = nominal, 2.0 = twice as slow, 0.5 =
twice as fast).  :class:`ScaledCostModel` exposes a factor snapshot as a
regular :class:`~repro.workflow.costs.CostModel`, so the Planner replans
with degraded estimates through the same fast scheduling kernel.
"""

from __future__ import annotations

import abc
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.resources.pool import PoolEvent, ResourcePool
from repro.resources.resource import Resource
from repro.utils.rng import spawn_rng
from repro.workflow.costs import CostModel

__all__ = [
    "ScenarioError",
    "ScenarioEvent",
    "ScenarioContext",
    "Scenario",
    "ComposedScenario",
    "PerformanceProfile",
    "ScaledCostModel",
    "ScenarioRun",
    "validate_events",
    "materialize",
]


class ScenarioError(ValueError):
    """An event stream that is not physically realisable."""


@dataclass(frozen=True)
class ScenarioEvent:
    """One abstract change of the grid at logical time ``time``.

    Parameters
    ----------
    time:
        Logical time of the change (must be positive: time 0 is the initial
        pool, not an event).
    join:
        Number of new resources joining the grid.
    leave:
        Number of present resources departing.  Which concrete resources
        depart is decided at materialisation time (deterministically, from
        the scenario seed); departures may hit *busy* resources — the
        executors kill the affected jobs and the Planner replans.
    perf:
        ``(count, factor)`` or ``(count, factor, group)`` entries: ``count``
        present resources have their computation-time multiplier set to
        ``factor`` from ``time`` onward (1.0 restores nominal speed).
        ``count = -1`` means *every* present resource (a pool-wide load
        spike).  A non-empty ``group`` names the selection: the first event
        using a group picks (and remembers) the concrete resources, later
        events with the same group re-target exactly that set — how a
        recovery restores precisely the resources that degraded.
    """

    time: float
    join: int = 0
    leave: int = 0
    perf: Tuple[Tuple, ...] = ()

    def __post_init__(self) -> None:
        if self.time <= 0:
            raise ScenarioError("event time must be positive")
        if self.join < 0 or self.leave < 0:
            raise ScenarioError("join/leave counts must be non-negative")
        for entry in self.perf:
            if len(entry) not in (2, 3):
                raise ScenarioError(
                    "perf entries must be (count, factor[, group]) tuples"
                )
            count, factor = entry[0], entry[1]
            if count < -1:
                raise ScenarioError("perf count must be >= -1 (-1 = whole pool)")
            if factor <= 0:
                raise ScenarioError("perf factor must be positive")

    @property
    def is_noop(self) -> bool:
        return self.join == 0 and self.leave == 0 and not self.perf


@dataclass(frozen=True)
class ScenarioContext:
    """Everything a scenario needs to generate its event stream.

    ``initial_size`` is the paper's ``R``; ``horizon`` bounds the stream in
    time (events past the horizon are pointless — the workflow will have
    finished); ``seed`` drives every random choice so a scenario run is
    reproducible from ``(scenario, context)`` alone.
    """

    initial_size: int
    horizon: float = 8000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_size <= 0:
            raise ScenarioError("initial_size must be positive")
        if self.horizon <= 0:
            raise ScenarioError("horizon must be positive")


class Scenario(abc.ABC):
    """A named generator of abstract grid-dynamics event streams."""

    #: registry/CLI identifier; concrete classes override it.
    name: str = "scenario"

    @abc.abstractmethod
    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        """The abstract event stream for ``ctx`` (any order; merged later)."""

    def params(self) -> Dict[str, object]:
        """JSON-friendly parameters for ledgers (dataclass fields by default)."""
        fields = getattr(self, "__dataclass_fields__", None)
        if fields is None:
            return {}
        return {key: getattr(self, key) for key in fields}

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{self.name}({inner})"

    def __add__(self, other: "Scenario") -> "ComposedScenario":
        return compose(self, other)


class ComposedScenario(Scenario):
    """The chronological merge of several scenarios' event streams.

    Same-time events from different parts are merged into one
    :class:`ScenarioEvent` (joins and leaves add up, perf changes
    concatenate in part order), which is how two scenarios interact: e.g.
    ``paper-joins + departures`` yields churn where an event may both add
    and remove resources.
    """

    name = "composed"

    def __init__(self, parts: Sequence[Scenario]) -> None:
        flattened: List[Scenario] = []
        for part in parts:
            if isinstance(part, ComposedScenario):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if not flattened:
            raise ScenarioError("a composed scenario needs at least one part")
        self.parts: Tuple[Scenario, ...] = tuple(flattened)
        self.name = "+".join(part.name for part in self.parts)

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        merged: Dict[float, Dict[str, object]] = {}
        for index, part in enumerate(self.parts):
            # Each part draws from its own seed stream so adding a part
            # never reshuffles the randomness of the others.
            part_ctx = ScenarioContext(
                initial_size=ctx.initial_size,
                horizon=ctx.horizon,
                seed=int(spawn_rng(ctx.seed, "compose", index, part.name).integers(0, 2**62)),
            )
            for event in part.events(part_ctx):
                slot = merged.setdefault(
                    event.time, {"join": 0, "leave": 0, "perf": []}
                )
                slot["join"] += event.join
                slot["leave"] += event.leave
                for entry in event.perf:
                    # namespace selection groups per part so two composed
                    # scenarios never share a resource selection by accident
                    if len(entry) == 3 and entry[2]:
                        entry = (entry[0], entry[1], f"part{index}:{entry[2]}")
                    slot["perf"].append(entry)
        return [
            ScenarioEvent(
                time=time,
                join=int(slot["join"]),
                leave=int(slot["leave"]),
                perf=tuple(slot["perf"]),
            )
            for time, slot in sorted(merged.items())
        ]

    def params(self) -> Dict[str, object]:
        return {
            "parts": [
                {"name": part.name, "params": part.params()} for part in self.parts
            ]
        }

    def describe(self) -> str:
        return " + ".join(part.describe() for part in self.parts)


def compose(*scenarios: Scenario) -> ComposedScenario:
    """Merge scenarios into one chronologically interleaved event stream."""
    return ComposedScenario(scenarios)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def validate_events(
    events: Sequence[ScenarioEvent], *, initial_size: int
) -> None:
    """Check that a stream is physically realisable.

    Raises :class:`ScenarioError` unless event times are positive and
    non-decreasing and the pool size never drops below one (every departure
    removes a *present* resource, and the grid is never left empty).
    """
    if initial_size <= 0:
        raise ScenarioError("initial_size must be positive")
    present = initial_size
    last_time = 0.0
    for event in events:
        if event.time < last_time:
            raise ScenarioError(
                f"event times must be non-decreasing: {event.time} after {last_time}"
            )
        last_time = event.time
        present += event.join
        present -= event.leave
        if present < 1:
            raise ScenarioError(
                f"pool would drop to {present} resources at time {event.time}; "
                "the grid must keep at least one resource"
            )


# ----------------------------------------------------------------------
# performance profile
# ----------------------------------------------------------------------
class PerformanceProfile:
    """Piecewise-constant computation-time multipliers per resource.

    ``factor_at(rid, t)`` is 1.0 until the first change for ``rid`` at or
    before ``t``.  Factors multiply computation *time*: 2.0 halves a
    resource's speed, 1.0 restores it.
    """

    def __init__(self) -> None:
        #: rid -> parallel sorted lists of change times and factors
        self._times: Dict[str, List[float]] = {}
        self._factors: Dict[str, List[float]] = {}

    def set_factor(self, resource_id: str, time: float, factor: float) -> None:
        if factor <= 0:
            raise ScenarioError("perf factor must be positive")
        times = self._times.setdefault(resource_id, [])
        factors = self._factors.setdefault(resource_id, [])
        if times and time < times[-1]:
            raise ScenarioError("perf changes must be recorded chronologically")
        if times and time == times[-1]:
            factors[-1] = float(factor)
            return
        times.append(float(time))
        factors.append(float(factor))

    def factor_at(self, resource_id: str, time: float) -> float:
        times = self._times.get(resource_id)
        if not times:
            return 1.0
        index = bisect_right(times, time) - 1
        if index < 0:
            return 1.0
        return self._factors[resource_id][index]


    def state_at(self, time: float) -> Dict[str, float]:
        """Snapshot ``rid -> factor`` of every non-nominal resource at ``time``."""
        out: Dict[str, float] = {}
        for rid in self._times:
            factor = self.factor_at(rid, time)
            if factor != 1.0:
                out[rid] = factor
        return out

    def change_times(self) -> List[float]:
        """Sorted distinct times at which any factor changes."""
        times = {t for series in self._times.values() for t in series}
        return sorted(times)

    @property
    def is_trivial(self) -> bool:
        return not self._times

    def scaled_costs(self, base: CostModel, time: float) -> CostModel:
        """``base`` with this profile's factors as of ``time`` applied."""
        factors = self.state_at(time)
        if not factors:
            return base
        return ScaledCostModel(base, factors)


class ScaledCostModel(CostModel):
    """A cost model with per-resource computation-time multipliers.

    Communication costs and the intrinsic (resource-free) averages pass
    through unchanged; only ``computation_cost`` is scaled.  The wrapper
    keeps the base model's fast-path capabilities (uniform communication,
    dense-view memoization) so degraded replanning runs on the same kernel.
    """

    def __init__(self, base: CostModel, factors: Mapping[str, float]) -> None:
        for rid, factor in factors.items():
            if factor <= 0:
                raise ScenarioError(f"non-positive factor for {rid!r}")
        self.base = base
        self.workflow = base.workflow
        self.factors: Dict[str, float] = {
            rid: float(f) for rid, f in factors.items() if f != 1.0
        }
        self._signature = tuple(sorted(self.factors.items()))

    def cache_token(self) -> Optional[object]:
        token = self.base.cache_token()
        if token is None:
            return None
        return ("scaled", token, self._signature)

    @property
    def has_uniform_communication(self) -> bool:
        return self.base.has_uniform_communication

    def computation_cost(self, job_id: str, resource_id: str) -> float:
        cost = self.base.computation_cost(job_id, resource_id)
        factor = self.factors.get(resource_id)
        return cost if factor is None else cost * factor

    def intrinsic_average_computation_cost(self, job_id: str) -> float:
        return self.base.intrinsic_average_computation_cost(job_id)

    def communication_cost(
        self, src: str, dst: str, src_resource: str, dst_resource: str
    ) -> float:
        return self.base.communication_cost(src, dst, src_resource, dst_resource)

    def average_communication_cost(self, src: str, dst: str) -> float:
        return self.base.average_communication_cost(src, dst)


# ----------------------------------------------------------------------
# materialisation
# ----------------------------------------------------------------------
@dataclass
class ScenarioRun:
    """A scenario made concrete: pool, performance profile, event stream."""

    scenario: Scenario
    context: ScenarioContext
    pool: ResourcePool
    profile: PerformanceProfile
    events: List[ScenarioEvent] = field(default_factory=list)

    def pool_events(self) -> List[PoolEvent]:
        """Membership-change events of the materialised pool."""
        return self.pool.events()

    def replan_times(self) -> List[float]:
        """Sorted distinct times the Planner should re-evaluate at."""
        times = {event.time for event in self.pool_events()}
        times.update(self.profile.change_times())
        return sorted(times)

    def describe(self) -> str:
        return (
            f"{self.scenario.describe()} on R={self.context.initial_size} "
            f"(seed={self.context.seed})"
        )


def materialize(
    scenario: Scenario,
    *,
    initial_size: int,
    seed: int = 0,
    horizon: float = 8000.0,
    name_prefix: str = "r",
) -> ScenarioRun:
    """Turn an abstract scenario into a concrete, validated :class:`ScenarioRun`.

    The initial pool is ``r1..rR`` at time 0.  Joins mint fresh identifiers
    in arrival order; departures pick uniformly (from the scenario seed)
    among the resources present at the event, preferring the longest-present
    ones only through the uniform draw — *any* resource, busy or idle, can
    depart.  Departure counts that would empty the grid are clamped so at
    least one resource always remains (and the clamp is visible in the
    returned, re-validated event stream).
    """
    ctx = ScenarioContext(initial_size=initial_size, horizon=horizon, seed=seed)
    raw = sorted(scenario.events(ctx), key=lambda event: event.time)
    rng = spawn_rng(seed, "materialize", scenario.name, initial_size)

    pool = ResourcePool()
    counter = 0
    present: List[str] = []
    for _ in range(initial_size):
        counter += 1
        rid = f"{name_prefix}{counter}"
        pool.add(Resource(rid, available_from=0.0))
        present.append(rid)

    profile = PerformanceProfile()
    leave_at: Dict[str, float] = {}
    perf_groups: Dict[str, List[str]] = {}
    realised: List[ScenarioEvent] = []
    for event in raw:
        if event.time > ctx.horizon:
            break
        join = event.join
        for index in range(join):
            counter += 1
            rid = f"{name_prefix}{counter}"
            pool.add(
                Resource(
                    rid,
                    available_from=event.time,
                    metadata={"scenario_event": event.time},
                )
            )
            present.append(rid)
        # Victims must have joined strictly before the event: a resource
        # cannot join and leave at the same instant (its availability
        # window would be empty).
        removable = [
            rid for rid in present if pool.resource(rid).available_from < event.time
        ]
        leave = min(event.leave, len(removable), len(present) - 1)
        for _ in range(leave):
            victim = removable.pop(int(rng.integers(0, len(removable))))
            present.remove(victim)
            leave_at[victim] = event.time
        perf: List[Tuple[int, float]] = []
        for entry in event.perf:
            count, factor = entry[0], entry[1]
            group = entry[2] if len(entry) == 3 else ""
            if group and group in perf_groups:
                targets = [rid for rid in perf_groups[group] if rid in present]
            elif count == -1:
                targets = list(present)
            else:
                hit = min(count, len(present))
                order = sorted(int(i) for i in rng.permutation(len(present))[:hit])
                targets = [present[position] for position in order]
            if group and group not in perf_groups:
                perf_groups[group] = list(targets)
            if not targets:
                continue
            for rid in targets:
                profile.set_factor(rid, event.time, factor)
            perf.append((len(targets), factor))
        realised.append(
            ScenarioEvent(time=event.time, join=join, leave=leave, perf=tuple(perf))
        )

    if leave_at:
        rebuilt = ResourcePool()
        for rid in pool.all_resource_ids():
            res = pool.resource(rid)
            until = leave_at.get(rid)
            if until is None:
                rebuilt.add(res)
            else:
                rebuilt.add(
                    Resource(
                        rid,
                        available_from=res.available_from,
                        available_until=until,
                        site=res.site,
                        metadata=dict(res.metadata),
                    )
                )
        pool = rebuilt

    realised = [event for event in realised if not event.is_noop]
    validate_events(realised, initial_size=initial_size)
    return ScenarioRun(
        scenario=scenario, context=ctx, pool=pool, profile=profile, events=realised
    )
