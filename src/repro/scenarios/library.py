"""Concrete scenarios and the named-scenario registry.

Each scenario relaxes one assumption of the paper's experiment design
(§4.1); the registry names are what ``repro sweep --scenario <name>`` and
the experiment configs accept:

================  ==========================================================
``static``        no events at all — the classic static-scheduling world
``paper``         the paper's (R, Δ, δ) model: joins only (assumption 3)
``departures``    resources *leave* every Δ, including busy ones
``degradation``   a fraction of the pool degrades (and later recovers)
``load_spike``    a pool-wide slowdown window (external load burst)
``churn``         joins and departures interleave every Δ
``flash_crowd``   a large join burst followed by mass departure of the
                  newcomers' worth of capacity
================  ==========================================================

Every scenario is a frozen dataclass of plain numbers, so scenario objects
pickle cleanly across the parallel sweep workers and serialise into the
benchmark ledgers via :meth:`~repro.scenarios.base.Scenario.params`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.scenarios.base import (
    Scenario,
    ScenarioContext,
    ScenarioError,
    ScenarioEvent,
)

__all__ = [
    "StaticScenario",
    "PaperJoinScenario",
    "DepartureScenario",
    "JoinBurstScenario",
    "ChurnScenario",
    "DegradationScenario",
    "LoadSpikeScenario",
    "register_scenario",
    "make_scenario",
    "available_scenarios",
    "scenario_summary",
]


def _per_event(fraction: float, initial_size: int) -> int:
    """The paper's ``ceil(δ·R)`` rule, with δ=0 meaning none."""
    if fraction == 0:
        return 0
    return max(1, math.ceil(fraction * initial_size))


@dataclass(frozen=True)
class StaticScenario(Scenario):
    """No dynamics: the pool at time 0 is the pool forever."""

    name = "static"

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        return []


@dataclass(frozen=True)
class PaperJoinScenario(Scenario):
    """The paper's (R, Δ, δ) change model: ``ceil(δ·R)`` joins every Δ."""

    interval: float = 400.0
    fraction: float = 0.15
    max_events: int = 64

    name = "paper"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ScenarioError("interval must be positive")
        if self.fraction < 0:
            raise ScenarioError("fraction must be non-negative")

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        join = _per_event(self.fraction, ctx.initial_size)
        if join == 0:
            return []
        return [
            ScenarioEvent(time=index * self.interval, join=join)
            for index in range(1, self.max_events + 1)
            if index * self.interval <= ctx.horizon
        ]


@dataclass(frozen=True)
class DepartureScenario(Scenario):
    """Resources *leave* every Δ — the inverse of the paper's model.

    Departures pick uniformly among the present resources, so busy
    resources depart too: their running jobs are killed (wasted work) and
    the strategies must recover.  ``max_events`` bounds the bleed so the
    materialiser's never-below-one-resource clamp is rarely hit.
    """

    interval: float = 400.0
    fraction: float = 0.10
    start: float = 0.0
    max_events: int = 8

    name = "departures"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ScenarioError("interval must be positive")
        if self.fraction < 0:
            raise ScenarioError("fraction must be non-negative")
        if self.start < 0:
            raise ScenarioError("start must be non-negative")

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        leave = _per_event(self.fraction, ctx.initial_size)
        if leave == 0:
            return []
        return [
            ScenarioEvent(time=self.start + index * self.interval, leave=leave)
            for index in range(1, self.max_events + 1)
            if self.start + index * self.interval <= ctx.horizon
        ]


@dataclass(frozen=True)
class JoinBurstScenario(Scenario):
    """A one-off flash-crowd arrival: ``ceil(δ·R)`` resources at once."""

    at: float = 400.0
    fraction: float = 1.0

    name = "join_burst"

    def __post_init__(self) -> None:
        if self.at <= 0:
            raise ScenarioError("at must be positive")
        if self.fraction < 0:
            raise ScenarioError("fraction must be non-negative")

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        join = _per_event(self.fraction, ctx.initial_size)
        if join == 0 or self.at > ctx.horizon:
            return []
        return [ScenarioEvent(time=self.at, join=join)]


@dataclass(frozen=True)
class ChurnScenario(Scenario):
    """Joins *and* departures at every change event.

    With ``join_fraction > leave_fraction`` the grid slowly grows through
    the churn; with equal fractions its size oscillates around R while its
    membership keeps rotating — the hostile version of the paper's model.
    """

    interval: float = 400.0
    join_fraction: float = 0.15
    leave_fraction: float = 0.10
    max_events: int = 12

    name = "churn"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ScenarioError("interval must be positive")
        if self.join_fraction < 0 or self.leave_fraction < 0:
            raise ScenarioError("fractions must be non-negative")

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        join = _per_event(self.join_fraction, ctx.initial_size)
        leave = _per_event(self.leave_fraction, ctx.initial_size)
        if join == 0 and leave == 0:
            return []
        return [
            ScenarioEvent(time=index * self.interval, join=join, leave=leave)
            for index in range(1, self.max_events + 1)
            if index * self.interval <= ctx.horizon
        ]


@dataclass(frozen=True)
class DegradationScenario(Scenario):
    """Part of the pool slows down at ``at`` and recovers at ``recover_at``.

    ``factor`` multiplies computation time (2.0 = half speed).  With
    ``recover_at = None`` the degradation is permanent.
    """

    at: float = 400.0
    fraction: float = 0.3
    factor: float = 2.0
    recover_at: float | None = 1600.0

    name = "degradation"

    def __post_init__(self) -> None:
        if self.at <= 0:
            raise ScenarioError("at must be positive")
        if self.fraction <= 0 or self.fraction > 1:
            raise ScenarioError("fraction must be in (0, 1]")
        if self.factor <= 0:
            raise ScenarioError("factor must be positive")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ScenarioError("recover_at must be after at")

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        count = _per_event(self.fraction, ctx.initial_size)
        if self.at > ctx.horizon:
            return []
        group = f"degradation@{self.at:g}"
        out = [ScenarioEvent(time=self.at, perf=((count, self.factor, group),))]
        if self.recover_at is not None and self.recover_at <= ctx.horizon:
            # same selection group: the recovery restores exactly the
            # resources that degraded (and are still present)
            out.append(
                ScenarioEvent(time=self.recover_at, perf=((count, 1.0, group),))
            )
        return out


@dataclass(frozen=True)
class LoadSpikeScenario(Scenario):
    """A pool-wide slowdown window: external load hits every resource."""

    start: float = 400.0
    duration: float = 800.0
    factor: float = 1.5

    name = "load_spike"

    def __post_init__(self) -> None:
        if self.start <= 0:
            raise ScenarioError("start must be positive")
        if self.duration <= 0:
            raise ScenarioError("duration must be positive")
        if self.factor <= 0:
            raise ScenarioError("factor must be positive")

    def events(self, ctx: ScenarioContext) -> List[ScenarioEvent]:
        if self.start > ctx.horizon:
            return []
        group = f"load_spike@{self.start:g}"
        out = [ScenarioEvent(time=self.start, perf=((-1, self.factor, group),))]
        end = self.start + self.duration
        if end <= ctx.horizon:
            out.append(ScenarioEvent(time=end, perf=((-1, 1.0, group),)))
        return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[..., Scenario]] = {}
_SUMMARIES: Dict[str, str] = {}


def register_scenario(name: str, summary: str = ""):
    """Register ``factory`` under ``name`` for configs and the CLI."""

    def decorator(factory: Callable[..., Scenario]):
        if name in _REGISTRY:
            raise ScenarioError(f"scenario {name!r} already registered")
        _REGISTRY[name] = factory
        _SUMMARIES[name] = summary
        return factory

    return decorator


# Thin wrappers over the uniform registry facade (:mod:`repro.registry`),
# kept for compatibility with existing callers.


def make_scenario(name: str, **params) -> Scenario:
    """Instantiate a registered scenario, passing ``params`` to its factory."""
    from repro import registry

    return registry.make("scenario", name, **params)


def available_scenarios() -> List[str]:
    from repro import registry

    return registry.available("scenario")


def scenario_summary(name: str) -> str:
    return _SUMMARIES.get(name, "")


register_scenario("static", "no pool changes at all (classic static world)")(
    StaticScenario
)
register_scenario("paper", "the paper's join-only (R, Δ, δ) model")(
    PaperJoinScenario
)
register_scenario("departures", "resources leave every Δ, busy ones included")(
    DepartureScenario
)
register_scenario("join_burst", "one flash-crowd arrival of ceil(δ·R) resources")(
    JoinBurstScenario
)
register_scenario("churn", "joins and departures interleave every Δ")(ChurnScenario)
register_scenario(
    "degradation", "part of the pool slows down, later recovers"
)(DegradationScenario)
register_scenario("load_spike", "pool-wide slowdown window (external load)")(
    LoadSpikeScenario
)


@register_scenario(
    "flash_crowd", "join burst at Δ, the same capacity departs at 4Δ"
)
def _flash_crowd(
    interval: float = 400.0, fraction: float = 0.5
) -> Scenario:
    """A flash crowd: a big arrival whose capacity later walks away again."""
    burst = JoinBurstScenario(at=interval, fraction=fraction)
    exodus = DepartureScenario(
        interval=interval,
        fraction=fraction,
        start=3 * interval,
        max_events=1,
    )
    composed = burst + exodus
    composed.name = "flash_crowd"
    return composed
