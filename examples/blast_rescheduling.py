#!/usr/bin/env python3
"""BLAST on a dynamic grid: HEFT vs AHEFT vs dynamic Min-Min.

Reproduces the paper's central scenario (§4.3) at laptop scale: a wide,
well-balanced BLAST workflow runs on a grid whose resource pool grows every
Δ time units.  Static HEFT can only use the initial pool; AHEFT reschedules
the remaining jobs whenever new resources appear; the dynamic Min-Min
baseline maps each job only when it becomes ready.

Run with:  python examples/blast_rescheduling.py [parallelism]
"""

import sys

import repro
from repro import ResourceChangeModel
from repro.generators.blast import generate_blast_case
from repro.workflow.analysis import max_parallelism, parallelism_profile


def main() -> None:
    parallelism = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    case = generate_blast_case(parallelism, ccr=1.0, beta=0.5, omega_dag=300.0, seed=42)
    model = ResourceChangeModel(initial_size=20, interval=400.0, fraction=0.15)
    pool = model.build_pool()

    print("=== BLAST workflow (paper Fig. 6 shape) ===")
    print(f"parallelism: {parallelism}-way, jobs: {case.workflow.num_jobs}")
    print(f"DAG width: {max_parallelism(case.workflow)}, "
          f"level profile: {parallelism_profile(case.workflow)[:6]}...")
    print(f"grid: {model.describe()} — {model.added_per_event} resource(s) join every Δ\n")

    heft = repro.run(case.workflow, pool, costs=case.costs, mode="static")
    aheft = repro.run(case.workflow, pool, costs=case.costs, mode="adaptive")
    minmin = repro.run(case.workflow, pool, costs=case.costs, mode="dynamic")

    improvement = (heft.makespan - aheft.makespan) / heft.makespan * 100.0
    print(f"{'strategy':<12}{'makespan':>12}")
    print("-" * 24)
    print(f"{'HEFT':<12}{heft.makespan:>12.1f}")
    print(f"{'AHEFT':<12}{aheft.makespan:>12.1f}")
    print(f"{'MinMin':<12}{minmin.makespan:>12.1f}")
    print()
    print(f"AHEFT adopted {aheft.rescheduling_count} of {aheft.metrics['evaluated_events']} "
          f"rescheduling opportunities")
    print(f"AHEFT improvement over HEFT: {improvement:.1f}% "
          f"(the paper reports 20.4% averaged over its full Table 5 grid)")
    extra = [r for r in aheft.schedule.resources_used()
             if pool.resource(r).available_from > 0]
    print(f"late-joining resources actually used by AHEFT: {len(extra)}")


if __name__ == "__main__":
    main()
