#!/usr/bin/env python3
"""'What ... if ...' analysis: proactive capacity planning for a running workflow.

Paper §3.3 sketches this as future work: while a workflow is executing, ask
the Planner what would happen to the expected makespan if specific resources
were added or removed.  The AHEFT evaluation machinery answers the query
without touching the running execution.

Run with:  python examples/whatif_analysis.py
"""

import repro
from repro import ResourceChangeModel
from repro.core.whatif import WhatIfAnalyzer
from repro.generators.montage import generate_montage_case
from repro.resources.resource import Resource


def main() -> None:
    case = generate_montage_case(40, ccr=2.0, beta=0.5, omega_dag=200.0, seed=3)
    pool = ResourceChangeModel(initial_size=8, interval=1000.0, fraction=0.1).build_pool()
    baseline = repro.run(case.workflow, pool, costs=case.costs, mode="static")
    schedule = baseline.schedule
    clock = schedule.makespan() * 0.25

    print("=== Montage workflow: what-if queries at 25% of the execution ===")
    print(f"jobs: {case.workflow.num_jobs}, baseline HEFT makespan: {schedule.makespan():.1f}")
    print(f"query time (clock): {clock:.1f}\n")

    analyzer = WhatIfAnalyzer(case.workflow, case.costs, pool)

    # 1. what if we could add 1, 2 or 4 extra machines right now?
    for count in (1, 2, 4):
        extras = [Resource(f"extra{i}", available_from=clock) for i in range(count)]
        result = analyzer.if_resources_added(extras, clock=clock, current_schedule=schedule)
        print(f"add {count} resource(s): predicted makespan {result.predicted_makespan:9.1f}  "
              f"gain {result.predicted_gain:8.1f} ({result.relative_gain * 100.0:5.1f}%)")

    # 2. which single existing resource hurts most if it were withdrawn?
    print("\nimpact of losing one existing resource:")
    for rid in pool.initial_resources()[:4]:
        result = analyzer.if_resources_removed([rid], clock=clock, current_schedule=schedule)
        print(f"remove {rid}: predicted makespan {result.predicted_makespan:9.1f} "
              f"(delta {result.predicted_makespan - result.baseline_makespan:+.1f})")

    # 3. rank candidate donations by their benefit
    print("\nranking candidate donations (best first):")
    candidates = [Resource(f"cand{i}", available_from=clock) for i in range(3)]
    for result in analyzer.rank_candidate_additions(candidates, clock=clock, current_schedule=schedule):
        print(f"  {result.query}: gain {result.predicted_gain:.1f}")


if __name__ == "__main__":
    main()
