#!/usr/bin/env python3
"""Quickstart: schedule the paper's worked example and react to a new resource.

This walks the Fig. 4/5 scenario of the paper end to end:

1. build the 10-job sample DAG and its tabulated costs,
2. compute the static HEFT schedule on the three initial resources
   (makespan 80, exactly the paper's Fig. 5(a)),
3. let resource ``r4`` join the grid at t=15 and run the adaptive
   rescheduling loop (AHEFT),
4. replay the final schedule on the discrete-event simulator to confirm the
   predicted makespan is achievable.

Run with:  python examples/quickstart.py
"""

import repro
from repro.generators.sample import (
    sample_dag_cost_model,
    sample_dag_pool,
    sample_dag_workflow,
)
from repro.simulation.executor import StaticScheduleExecutor
from repro.simulation.trace import render_gantt


def main() -> None:
    workflow = sample_dag_workflow()
    costs = sample_dag_cost_model(workflow)
    pool = sample_dag_pool()  # r1-r3 from the start, r4 joins at t=15

    print("=== Sample DAG (paper Fig. 4) ===")
    print(f"jobs: {workflow.num_jobs}, edges: {workflow.num_edges}")
    print(f"initial resources: {pool.initial_resources()}")
    print(f"r4 joins at t={pool.resource('r4').available_from:g}\n")

    static = repro.run(workflow, pool, costs=costs, mode="static")
    print("--- static HEFT (paper reports makespan 80) ---")
    print(f"makespan: {static.makespan:.1f}")
    print(render_gantt(static.schedule, width=60), "\n")

    adaptive = repro.run(workflow, pool, costs=costs, mode="adaptive")
    print("--- AHEFT adaptive rescheduling ---")
    print(f"events evaluated: {adaptive.metrics['evaluated_events']}, "
          f"reschedules adopted: {adaptive.rescheduling_count}")
    for decision in adaptive.decisions:
        verdict = "adopted" if decision.adopted else "kept previous plan"
        print(
            f"  t={decision.time:g}: event {decision.event} -> candidate makespan "
            f"{decision.candidate_makespan:.1f} vs {decision.previous_makespan:.1f} ({verdict})"
        )
    print(f"final makespan: {adaptive.makespan:.1f}")
    print(render_gantt(adaptive.schedule, width=60), "\n")

    trace = StaticScheduleExecutor(workflow, costs, adaptive.schedule, pool).run()
    print("--- replay on the discrete-event simulator ---")
    print(f"simulated makespan: {trace.makespan():.1f} "
          f"(matches the plan: {abs(trace.makespan() - adaptive.makespan) < 1e-9})")


if __name__ == "__main__":
    main()
