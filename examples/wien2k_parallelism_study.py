#!/usr/bin/env python3
"""WIEN2K vs BLAST: how DAG shape limits the benefit of rescheduling.

The paper observes (§4.3) that WIEN2K gains much less from adaptive
rescheduling than BLAST because the single ``LAPW2_FERMI`` job between its
two parallel sections throttles the DAG's effective parallelism.  This
example sweeps the parallelism factor for both applications under identical
grid dynamics and prints the improvement rate of AHEFT over HEFT, mirroring
the paper's Table 7.

Run with:  python examples/wien2k_parallelism_study.py
"""

import repro
from repro import ResourceChangeModel
from repro.generators.blast import generate_blast_case
from repro.generators.wien2k import generate_wien2k_case


def improvement_for(generator, parallelism: int) -> tuple[float, float, float]:
    case = generator(parallelism, ccr=1.0, beta=0.5, omega_dag=300.0, seed=7)
    pool = ResourceChangeModel(initial_size=20, interval=400.0, fraction=0.15).build_pool()
    heft = repro.run(case.workflow, pool, costs=case.costs, mode="static")
    aheft = repro.run(case.workflow, pool, costs=case.costs, mode="adaptive")
    rate = (heft.makespan - aheft.makespan) / heft.makespan * 100.0
    return heft.makespan, aheft.makespan, rate


def main() -> None:
    parallelisms = [50, 100, 150, 200]
    print("=== Improvement rate of AHEFT over HEFT vs parallelism (cf. Table 7) ===")
    print(f"{'parallelism':>12} | {'BLAST HEFT':>11} {'BLAST AHEFT':>12} {'impr.':>7} | "
          f"{'WIEN2K HEFT':>12} {'WIEN2K AHEFT':>13} {'impr.':>7}")
    print("-" * 96)
    for parallelism in parallelisms:
        blast = improvement_for(generate_blast_case, parallelism)
        wien2k = improvement_for(generate_wien2k_case, parallelism)
        print(
            f"{parallelism:>12} | {blast[0]:>11.0f} {blast[1]:>12.0f} {blast[2]:>6.1f}% | "
            f"{wien2k[0]:>12.0f} {wien2k[1]:>13.0f} {wien2k[2]:>6.1f}%"
        )
    print("\nThe improvement grows with parallelism for both applications (the paper's")
    print("Table 7 trend).  How the two applications rank against each other depends on")
    print("how much parallel work each DAG carries relative to the resource pool — the")
    print("per-operation cost draws are synthetic here, see EXPERIMENTS.md (D3).")


if __name__ == "__main__":
    main()
