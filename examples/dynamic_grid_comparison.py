#!/usr/bin/env python3
"""Random-DAG comparison of HEFT, AHEFT and dynamic Min-Min (cf. §4.2).

Generates a handful of parametric random DAGs (Table 2 style), runs the
three strategies on the same dynamic resource pools, and prints per-case
makespans plus the averages — the laptop-scale analogue of the paper's
500,000-case study whose reported averages are HEFT 4075, AHEFT 3911 and
Min-Min 12352.

Run with:  python examples/dynamic_grid_comparison.py [num_cases]
"""

import sys

from repro.experiments.config import sample_random_grid
from repro.experiments.metrics import average
from repro.experiments.reporting import render_case_results
from repro.experiments.runner import ExperimentCase, run_case


def main() -> None:
    num_cases = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    configs = sample_random_grid(num_cases, seed=11)
    # keep the sampled cases laptop sized
    configs = [cfg for cfg in configs if cfg.v <= 60] or configs[:3]

    results = []
    for config in configs:
        experiment = ExperimentCase(config.build_case(), config.build_resource_model())
        results.append(run_case(experiment, strategies=("HEFT", "AHEFT", "MinMin")))

    print("=== Random-DAG comparison (paper §4.2) ===")
    print(render_case_results(results, strategies=["HEFT", "AHEFT", "MinMin"]))
    print()
    for strategy in ("HEFT", "AHEFT", "MinMin"):
        mean = average(result.makespans[strategy] for result in results)
        print(f"average makespan {strategy:>7}: {mean:10.1f}")
    mean_improvement = average(result.improvement() for result in results) * 100.0
    print(f"\nmean AHEFT improvement over HEFT: {mean_improvement:.1f}%")
    print("expected ordering (paper): AHEFT <= HEFT << Min-Min")


if __name__ == "__main__":
    main()
