"""Tests for the dynamic Min-Min family and the extra baselines."""

import pytest

from repro.scheduling.baselines import (
    MaxMinScheduler,
    OpportunisticLoadBalancer,
    RandomStaticScheduler,
    SufferageScheduler,
)
from repro.scheduling.minmin import MinMinScheduler, minmin_batch
from repro.scheduling.validation import validate_schedule
from repro.workflow.costs import TabularCostModel
from repro.workflow.dag import Workflow


@pytest.fixture
def fork_workflow():
    """One finished producer feeding three independent ready jobs."""
    wf = Workflow("fork")
    wf.add_job("src")
    for job in ["x", "y", "z"]:
        wf.add_job(job)
        wf.add_edge("src", job, data=2.0)
    return wf


@pytest.fixture
def fork_costs(fork_workflow):
    return TabularCostModel(
        fork_workflow,
        {
            "src": {"r1": 1.0, "r2": 1.0},
            "x": {"r1": 2.0, "r2": 8.0},
            "y": {"r1": 6.0, "r2": 3.0},
            "z": {"r1": 10.0, "r2": 10.0},
        },
    )


class TestMinMinBatch:
    def test_all_ready_jobs_mapped(self, fork_workflow, fork_costs):
        assignments = minmin_batch(
            ["x", "y", "z"],
            fork_workflow,
            fork_costs,
            ["r1", "r2"],
            clock=5.0,
            resource_free={"r1": 5.0, "r2": 5.0},
            data_location={"src": "r1"},
        )
        assert {a.job_id for a in assignments} == {"x", "y", "z"}

    def test_shortest_job_first_and_local_data_preferred(self, fork_workflow, fork_costs):
        assignments = minmin_batch(
            ["x", "y"],
            fork_workflow,
            fork_costs,
            ["r1", "r2"],
            clock=5.0,
            resource_free={"r1": 5.0, "r2": 5.0},
            data_location={"src": "r1"},
        )
        # x on r1 completes at 7 (local data), the global minimum -> fixed first
        assert assignments[0].job_id == "x"
        assert assignments[0].resource_id == "r1"
        assert assignments[0].finish == pytest.approx(7.0)

    def test_transfer_starts_at_decision_time(self, fork_workflow, fork_costs):
        assignments = minmin_batch(
            ["y"],
            fork_workflow,
            fork_costs,
            ["r1", "r2"],
            clock=5.0,
            resource_free={"r1": 5.0, "r2": 5.0},
            data_location={"src": "r1"},
        )
        y = assignments[0]
        # y prefers r2 (cost 3) but must wait for the transfer started now: 5 + 2
        assert y.resource_id == "r2"
        assert y.start == pytest.approx(7.0)

    def test_unready_job_rejected(self, fork_workflow, fork_costs):
        with pytest.raises(ValueError, match="not ready"):
            minmin_batch(
                ["x"],
                fork_workflow,
                fork_costs,
                ["r1"],
                clock=0.0,
                resource_free={},
                data_location={},
            )

    def test_empty_resources_rejected(self, fork_workflow, fork_costs):
        with pytest.raises(ValueError):
            minmin_batch(
                ["x"], fork_workflow, fork_costs, [],
                clock=0.0, resource_free={}, data_location={"src": "r1"},
            )

    def test_no_two_jobs_overlap_on_one_resource(self, fork_workflow, fork_costs):
        assignments = minmin_batch(
            ["x", "y", "z"],
            fork_workflow,
            fork_costs,
            ["r1"],
            clock=5.0,
            resource_free={"r1": 5.0},
            data_location={"src": "r1"},
        )
        assignments.sort(key=lambda a: a.start)
        for first, second in zip(assignments, assignments[1:]):
            assert second.start >= first.finish - 1e-9


class TestMaxMinAndSufferage:
    def test_maxmin_fixes_longest_job_first(self, fork_workflow, fork_costs):
        assignments = MaxMinScheduler().map_ready_jobs(
            ["x", "z"],
            fork_workflow,
            fork_costs,
            ["r1", "r2"],
            clock=5.0,
            resource_free={"r1": 5.0, "r2": 5.0},
            data_location={"src": "r1"},
        )
        assert assignments[0].job_id == "z"

    def test_sufferage_prioritises_job_with_largest_penalty(self, fork_workflow, fork_costs):
        assignments = SufferageScheduler().map_ready_jobs(
            ["x", "y"],
            fork_workflow,
            fork_costs,
            ["r1", "r2"],
            clock=5.0,
            resource_free={"r1": 5.0, "r2": 5.0},
            data_location={"src": "r1"},
        )
        # x suffers 8-2=6 on losing r1, y suffers |6-3|=3ish -> x first
        assert assignments[0].job_id == "x"

    def test_all_schedulers_map_every_job(self, fork_workflow, fork_costs):
        for mapper in (MinMinScheduler(), MaxMinScheduler(), SufferageScheduler()):
            assignments = mapper.map_ready_jobs(
                ["x", "y", "z"],
                fork_workflow,
                fork_costs,
                ["r1", "r2"],
                clock=0.0,
                resource_free={},
                data_location={"src": "r1"},
            )
            assert len(assignments) == 3


class TestStaticBaselines:
    def test_random_static_schedules_everything_feasibly(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        schedule = RandomStaticScheduler(seed=3).schedule(wf, costs, ["r1", "r2", "r3"])
        assert validate_schedule(wf, costs, schedule) == []

    def test_random_static_deterministic_per_seed(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        a = RandomStaticScheduler(seed=3).schedule(wf, costs, ["r1", "r2"])
        b = RandomStaticScheduler(seed=3).schedule(wf, costs, ["r1", "r2"])
        c = RandomStaticScheduler(seed=4).schedule(wf, costs, ["r1", "r2"])
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != c.to_dict()

    def test_olb_schedules_everything_feasibly(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        schedule = OpportunisticLoadBalancer().schedule(wf, costs, ["r1", "r2", "r3"])
        assert validate_schedule(wf, costs, schedule) == []

    def test_heft_beats_random_and_olb_on_average(self, small_random_case):
        from repro.scheduling.heft import heft_schedule

        wf, costs = small_random_case.workflow, small_random_case.costs
        resources = ["r1", "r2", "r3"]
        heft = heft_schedule(wf, costs, resources).makespan()
        random_ms = RandomStaticScheduler(seed=1).schedule(wf, costs, resources).makespan()
        olb_ms = OpportunisticLoadBalancer().schedule(wf, costs, resources).makespan()
        assert heft <= random_ms + 1e-9
        assert heft <= olb_ms + 1e-9

    def test_empty_resources_rejected(self, diamond_workflow, diamond_costs):
        with pytest.raises(ValueError):
            RandomStaticScheduler().schedule(diamond_workflow, diamond_costs, [])
        with pytest.raises(ValueError):
            OpportunisticLoadBalancer().schedule(diamond_workflow, diamond_costs, [])
