"""Tests for the Planner/Executor collaboration components and what-if analysis."""

import pytest

from repro.core.events import EventBus, PerformanceVarianceEvent, ResourcePoolChangeEvent
from repro.core.history import PerformanceHistoryRepository
from repro.core.planner import Planner, WorkflowPlan
from repro.core.predictor import Predictor
from repro.core.whatif import WhatIfAnalyzer
from repro.generators.blast import generate_blast_case
from repro.generators.sample import sample_dag_cost_model, sample_dag_pool, sample_dag_workflow
from repro.resources.dynamics import ResourceChangeModel
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.base import ExecutionState


@pytest.fixture
def blast_setup():
    case = generate_blast_case(15, ccr=1.0, beta=0.5, omega_dag=100.0, seed=2)
    pool = ResourceChangeModel(initial_size=3, interval=200.0, fraction=0.5, max_events=10).build_pool()
    return case, pool


class TestWorkflowPlan:
    def test_initial_schedule_covers_all_jobs(self, blast_setup):
        case, pool = blast_setup
        planner = Planner()
        plan = planner.submit(case.workflow, case.costs, pool)
        assert plan.current_schedule is not None
        assert len(plan.current_schedule) == case.workflow.num_jobs
        assert plan.predicted_makespan() > 0

    def test_pool_change_event_adopts_better_schedule(self, blast_setup):
        case, pool = blast_setup
        planner = Planner()
        plan = planner.submit(case.workflow, case.costs, pool)
        before = plan.predicted_makespan()
        event_time = 200.0
        added = tuple(pool.joined_in(0.0, event_time))
        decision = plan.handle_event(
            ResourcePoolChangeEvent(time=event_time, added=added)
        )
        assert decision.candidate_makespan <= before + 1e-9
        if decision.adopted:
            assert plan.predicted_makespan() < before

    def test_insignificant_variance_event_ignored(self, blast_setup):
        case, pool = blast_setup
        planner = Planner()
        plan = planner.submit(case.workflow, case.costs, pool)
        job = case.workflow.jobs[0]
        sft = plan.current_schedule.scheduled_finish_time(job)
        decision = plan.handle_event(
            PerformanceVarianceEvent(
                time=sft, job_id=job, scheduled_finish=sft, actual_finish=sft * 1.01
            )
        )
        assert not decision.adopted
        assert decision.previous_makespan == decision.candidate_makespan

    def test_event_before_initial_schedule_rejected(self, blast_setup):
        case, pool = blast_setup
        plan = WorkflowPlan(
            case.workflow,
            case.costs,
            pool,
            predictor=Predictor(PerformanceHistoryRepository()),
            history=PerformanceHistoryRepository(),
        )
        with pytest.raises(RuntimeError):
            plan.handle_event(ResourcePoolChangeEvent(time=1.0, added=("rX",)))

    def test_job_completion_feeds_history(self, blast_setup):
        case, pool = blast_setup
        planner = Planner()
        plan = planner.submit(case.workflow, case.costs, pool)
        job = case.workflow.jobs[0]
        resource = plan.current_schedule.resource_of(job)
        plan.record_job_started(job, resource, 0.0)
        plan.record_job_finished(job, 42.0)
        operation = case.workflow.job(job).operation
        assert planner.history.observed_duration(operation, resource) == pytest.approx(42.0)
        assert plan.execution_state.is_finished(job)


class TestPlanner:
    def test_duplicate_submission_rejected(self, blast_setup):
        case, pool = blast_setup
        planner = Planner()
        planner.submit(case.workflow, case.costs, pool)
        with pytest.raises(ValueError, match="already submitted"):
            planner.submit(case.workflow, case.costs, pool)

    def test_event_bus_integration(self, blast_setup):
        case, pool = blast_setup
        bus = EventBus()
        planner = Planner(event_bus=bus)
        planner.submit(case.workflow, case.costs, pool)
        added = tuple(pool.joined_in(0.0, 200.0))
        bus.publish(ResourcePoolChangeEvent(time=200.0, added=added))
        assert len(planner.decisions()) == 1

    def test_plan_lookup(self, blast_setup):
        case, pool = blast_setup
        planner = Planner()
        plan = planner.submit(case.workflow, case.costs, pool)
        assert planner.plan_for(case.workflow.name) is plan


class TestWhatIf:
    @pytest.fixture
    def sample_setup(self):
        wf = sample_dag_workflow()
        costs = sample_dag_cost_model(wf)
        pool = ResourcePool([Resource("r1"), Resource("r2"), Resource("r3")])
        from repro.scheduling.heft import heft_schedule

        schedule = heft_schedule(wf, costs, ["r1", "r2", "r3"])
        return wf, costs, pool, schedule

    def test_addition_query_reports_gain_or_zero(self, sample_setup):
        wf, costs, pool, schedule = sample_setup
        analyzer = WhatIfAnalyzer(wf, costs, pool)
        result = analyzer.if_resources_added(
            [Resource("r4", available_from=15.0)], clock=15.0, current_schedule=schedule
        )
        assert result.baseline_makespan == pytest.approx(80.0)
        assert result.predicted_makespan <= result.baseline_makespan + 1e-9
        assert "add r4" in result.query

    def test_removal_query_never_improves(self, sample_setup):
        wf, costs, pool, schedule = sample_setup
        analyzer = WhatIfAnalyzer(wf, costs, pool)
        result = analyzer.if_resources_removed(["r2"], clock=15.0, current_schedule=schedule)
        assert result.predicted_makespan >= result.baseline_makespan - 1e-9
        assert not result.is_beneficial or result.predicted_gain == 0

    def test_cannot_remove_everything(self, sample_setup):
        wf, costs, pool, schedule = sample_setup
        analyzer = WhatIfAnalyzer(wf, costs, pool)
        with pytest.raises(ValueError):
            analyzer.if_resources_removed(["r1", "r2", "r3"], clock=0.0, current_schedule=schedule)

    def test_addition_requires_resources(self, sample_setup):
        wf, costs, pool, schedule = sample_setup
        analyzer = WhatIfAnalyzer(wf, costs, pool)
        with pytest.raises(ValueError):
            analyzer.if_resources_added([], clock=0.0, current_schedule=schedule)

    def test_rank_candidates_sorted_by_gain(self, blast_setup):
        case, pool = blast_setup
        from repro.scheduling.heft import heft_schedule

        resources = pool.initial_resources()
        schedule = heft_schedule(case.workflow, case.costs, resources)
        analyzer = WhatIfAnalyzer(case.workflow, case.costs, pool)
        candidates = [Resource("extra1"), Resource("extra2")]
        results = analyzer.rank_candidate_additions(
            candidates, clock=schedule.makespan() * 0.2, current_schedule=schedule
        )
        assert len(results) == 2
        assert results[0].predicted_gain >= results[1].predicted_gain
