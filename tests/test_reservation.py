"""Tests for advance reservations (Executor's Resource Manager)."""

import pytest

from repro.resources.reservation import Reservation, ReservationBook, ReservationConflict


class TestReservation:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Reservation("r1", "j1", start=5.0, end=4.0)

    def test_overlap_detection(self):
        a = Reservation("r1", "j1", 0.0, 10.0)
        b = Reservation("r1", "j2", 5.0, 15.0)
        c = Reservation("r1", "j3", 10.0, 20.0)
        d = Reservation("r2", "j4", 0.0, 100.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching intervals do not overlap
        assert not a.overlaps(d)  # different resource

    def test_zero_length_never_overlaps(self):
        a = Reservation("r1", "j1", 5.0, 5.0)
        b = Reservation("r1", "j2", 0.0, 10.0)
        assert not a.overlaps(b)


class TestReservationBook:
    def test_reserve_and_query(self):
        book = ReservationBook()
        book.reserve(Reservation("r1", "j1", 0.0, 10.0))
        book.reserve(Reservation("r1", "j2", 10.0, 20.0))
        assert len(book.reservations("r1")) == 2
        assert not book.has_conflicts()

    def test_conflict_raises(self):
        book = ReservationBook()
        book.reserve(Reservation("r1", "j1", 0.0, 10.0))
        with pytest.raises(ReservationConflict):
            book.reserve(Reservation("r1", "j2", 5.0, 8.0))

    def test_allow_conflict_flag(self):
        book = ReservationBook()
        book.reserve(Reservation("r1", "j1", 0.0, 10.0))
        book.reserve(Reservation("r1", "j2", 5.0, 8.0), allow_conflict=True)
        assert book.has_conflicts()
        assert len(book.conflicts()) == 1

    def test_reserve_schedule_and_revoke_plan(self):
        book = ReservationBook()
        book.reserve_schedule(
            [("j1", "r1", 0.0, 10.0), ("j2", "r2", 0.0, 5.0)], plan_id="plan-A"
        )
        book.reserve_schedule([("j3", "r1", 20.0, 30.0)], plan_id="plan-B")
        removed = book.revoke_plan("plan-A")
        assert removed == 2
        assert [r.plan_id for r in book.reservations()] == ["plan-B"]

    def test_revoke_plan_after_keeps_started_work(self):
        """Rescheduling keeps reservations of already-started jobs (paper §3.2)."""
        book = ReservationBook()
        book.reserve_schedule(
            [("j1", "r1", 0.0, 10.0), ("j2", "r1", 12.0, 20.0)], plan_id="plan-A"
        )
        removed = book.revoke_plan("plan-A", after=11.0)
        assert removed == 1
        remaining = book.reservations_for_plan("plan-A")
        assert [r.job_id for r in remaining] == ["j1"]

    def test_utilisation(self):
        book = ReservationBook()
        book.reserve(Reservation("r1", "j1", 0.0, 25.0))
        book.reserve(Reservation("r1", "j2", 50.0, 75.0))
        assert book.utilisation("r1", horizon=100.0) == pytest.approx(0.5)

    def test_utilisation_requires_positive_horizon(self):
        book = ReservationBook()
        with pytest.raises(ValueError):
            book.utilisation("r1", horizon=0.0)

    def test_rescheduling_workflow_has_no_conflicts(self):
        """Revoking the old plan before booking the new one never conflicts."""
        book = ReservationBook()
        book.reserve_schedule([("j1", "r1", 0.0, 10.0), ("j2", "r1", 10.0, 20.0)], plan_id="S0")
        book.revoke_plan("S0", after=5.0)
        book.reserve_schedule([("j2", "r1", 12.0, 18.0)], plan_id="S1")
        assert not book.has_conflicts()
