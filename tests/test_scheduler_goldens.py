"""Golden-schedule regression fixtures for every registered strategy.

Mirrors ``tests/test_generator_stability.py``: the *full schedule* each
registered strategy produces on two canonical inputs — the paper's Fig. 4
sample DAG and one fixed random DAG — is committed as JSON under
``tests/goldens/``.  A refactor that silently changes any strategy's
placement (a tie-break, a ready-time rule, an order change) fails here
with a precise diff instead of surfacing as an unexplained benchmark
drift.

If a change *intentionally* alters a strategy's output, regenerate with

    pytest tests/test_scheduler_goldens.py --regen-goldens

and re-bless any affected benchmark baselines in the same PR.  Newly
registered strategies are picked up automatically — the test fails until
their goldens are regenerated, which is the reminder to commit them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.generators.sample import sample_dag_case
from repro.scheduling import available_schedulers, make_scheduler

GOLDEN_PATH = Path(__file__).parent / "goldens" / "strategy_schedules.json"

#: canonical resource sets (the sample DAG prices r1..r4; the random case
#: prices lazily per resource identity, so any fixed list is canonical)
SAMPLE_RESOURCES = ("r1", "r2", "r3")
RANDOM_RESOURCES = ("r1", "r2", "r3", "r4")


def _random_case():
    return generate_random_case(RandomDAGParameters(v=20), seed=7)


def _render(schedule) -> dict:
    return {
        "assignments": schedule.to_dict(),
        "duplicates": schedule.duplicates_to_dict(),
        "makespan": schedule.makespan(),
    }


def _build_all() -> dict:
    sample = sample_dag_case()
    random_case = _random_case()
    out: dict = {}
    for name in available_schedulers():
        scheduler = make_scheduler(name)
        out[name] = {
            "sample": _render(
                scheduler.schedule(
                    sample.workflow, sample.costs, list(SAMPLE_RESOURCES)
                )
            ),
            "random_v20_seed7": _render(
                scheduler.schedule(
                    random_case.workflow, random_case.costs, list(RANDOM_RESOURCES)
                )
            ),
        }
    return out


class TestGoldenSchedules:
    def test_every_strategy_matches_its_golden_schedule(self, request):
        actual = _build_all()
        if request.config.getoption("--regen-goldens"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(actual, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.is_file(), (
            f"{GOLDEN_PATH} missing — run pytest {__file__} --regen-goldens"
        )
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert set(actual) == set(golden), (
            "strategy set changed — regenerate the goldens (--regen-goldens) "
            f"and commit them: {sorted(set(actual) ^ set(golden))}"
        )
        for name in sorted(actual):
            assert actual[name] == golden[name], (
                f"strategy {name!r} no longer reproduces its golden schedule — "
                "if intentional, regenerate with --regen-goldens and re-bless "
                "affected benchmark baselines in the same PR"
            )

    def test_goldens_cover_json_roundtrip_exactly(self):
        """Golden floats survive the JSON round-trip bit for bit."""
        actual = _build_all()
        roundtrip = json.loads(json.dumps(actual))
        assert roundtrip == actual

    def test_sample_heft_golden_matches_paper_makespan(self):
        """The committed HEFT golden pins the paper's Fig. 5(a) result."""
        sample = sample_dag_case()
        schedule = make_scheduler("heft").schedule(
            sample.workflow, sample.costs, list(SAMPLE_RESOURCES)
        )
        assert schedule.makespan() == pytest.approx(80.0)
