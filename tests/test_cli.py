"""Tests for the ``python -m repro`` CLI (repro.cli).

The ``compare`` exit-code contract is what CI's regression gate relies on:
0 when ledgers agree within tolerance, 1 on any deviation beyond it, 2 on
usage/I/O errors.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import EXIT_DEVIATION, EXIT_ERROR, EXIT_OK, main


def write_json(path: Path, payload) -> Path:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


@pytest.fixture
def ledger(tmp_path: Path) -> Path:
    return write_json(
        tmp_path / "a.json",
        {
            "name": "bench",
            "makespan": 100.0,
            "nested": {"jobs_per_sec": 5000.0, "count": 3},
            "rows": [{"makespan": 10.0}, {"makespan": 20.0}],
            "lines": ["header", "v=10  makespan=100.0"],
        },
    )


class TestCompare:
    def test_identical_ledgers_exit_zero(self, ledger, tmp_path, capsys):
        twin = write_json(tmp_path / "b.json", json.loads(ledger.read_text()))
        assert main(["compare", str(ledger), str(twin)]) == EXIT_OK
        assert "OK" in capsys.readouterr().out

    def test_deviation_beyond_tolerance_exits_one(self, ledger, tmp_path, capsys):
        payload = json.loads(ledger.read_text())
        payload["makespan"] = 120.0
        other = write_json(tmp_path / "b.json", payload)
        assert main(["compare", str(ledger), str(other)]) == EXIT_DEVIATION
        out = capsys.readouterr().out
        assert "DEVIATION" in out and "makespan" in out

    def test_deviation_within_tolerance_passes(self, ledger, tmp_path):
        payload = json.loads(ledger.read_text())
        payload["makespan"] = 101.0  # 1% off
        other = write_json(tmp_path / "b.json", payload)
        assert main(["compare", str(ledger), str(other)]) == EXIT_DEVIATION
        assert (
            main(["compare", str(ledger), str(other), "--tolerance", "0.05"])
            == EXIT_OK
        )

    def test_key_tolerance_overrides_default(self, ledger, tmp_path):
        payload = json.loads(ledger.read_text())
        payload["nested"]["jobs_per_sec"] = 4000.0  # 20% throughput drop
        other = write_json(tmp_path / "b.json", payload)
        assert main(["compare", str(ledger), str(other)]) == EXIT_DEVIATION
        assert (
            main(
                [
                    "compare",
                    str(ledger),
                    str(other),
                    "--key-tolerance",
                    "*jobs_per_sec*=0.5",
                ]
            )
            == EXIT_OK
        )

    def test_ignore_glob_skips_keys(self, ledger, tmp_path):
        payload = json.loads(ledger.read_text())
        payload["nested"]["jobs_per_sec"] = 1.0
        other = write_json(tmp_path / "b.json", payload)
        assert (
            main(["compare", str(ledger), str(other), "--ignore", "*jobs_per_sec*"])
            == EXIT_OK
        )

    def test_numbers_inside_text_lines_are_compared(self, ledger, tmp_path):
        payload = json.loads(ledger.read_text())
        payload["lines"][1] = "v=10  makespan=250.0"
        other = write_json(tmp_path / "b.json", payload)
        assert main(["compare", str(ledger), str(other)]) == EXIT_DEVIATION

    def test_missing_key_is_a_deviation_unless_allowed(self, ledger, tmp_path):
        payload = json.loads(ledger.read_text())
        del payload["nested"]["count"]
        other = write_json(tmp_path / "b.json", payload)
        assert main(["compare", str(ledger), str(other)]) == EXIT_DEVIATION
        assert (
            main(["compare", str(ledger), str(other), "--missing-ok"]) == EXIT_OK
        )

    def test_unreadable_file_exits_two(self, ledger, tmp_path):
        assert (
            main(["compare", str(ledger), str(tmp_path / "nope.json")]) == EXIT_ERROR
        )
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["compare", str(ledger), str(bad)]) == EXIT_ERROR


class TestScenariosCommand:
    def test_lists_required_scenarios(self, capsys):
        assert main(["scenarios"]) == EXIT_OK
        out = capsys.readouterr().out
        for name in ("departures", "degradation", "load_spike", "churn", "paper"):
            assert name in out

    def test_json_output_has_defaults(self, capsys):
        assert main(["scenarios", "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["churn"]["defaults"]["interval"] == 400.0


class TestSweepCommand:
    def test_quick_sweep_writes_deterministic_ledger(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        args = [
            "sweep",
            "--scenario",
            "departures",
            "--scenario",
            "degradation",
            "--v",
            "12",
            "--resources",
            "4",
            "--instances",
            "1",
            "--seed",
            "3",
        ]
        assert main(args + ["--out", str(out_a)]) == EXIT_OK
        assert main(args + ["--out", str(out_b)]) == EXIT_OK
        ledger = json.loads(out_a.read_text())
        assert ledger["kind"] == "scenario_sweep"
        assert [p["scenario"] for p in ledger["scenarios"]] == [
            "departures",
            "degradation",
        ]
        for point in ledger["scenarios"]:
            assert set(point["mean_makespans"]) == {"HEFT", "AHEFT", "MinMin"}
        # bit-identical across runs -> usable as a CI regression baseline
        assert out_a.read_text() == out_b.read_text()
        assert main(["compare", str(out_a), str(out_b)]) == EXIT_OK

    def test_scenario_param_overrides(self, tmp_path):
        out = tmp_path / "s.json"
        assert (
            main(
                [
                    "sweep",
                    "--scenario",
                    "departures",
                    "--scenario-param",
                    "interval=150",
                    "--v",
                    "10",
                    "--resources",
                    "4",
                    "--instances",
                    "1",
                    "--out",
                    str(out),
                ]
            )
            == EXIT_OK
        )
        ledger = json.loads(out.read_text())
        assert "interval=150" in ledger["scenarios"][0]["description"]

    def test_unknown_scenario_exits_two(self, tmp_path):
        assert (
            main(["sweep", "--scenario", "nope", "--out", str(tmp_path / "x.json")])
            == EXIT_ERROR
        )


class TestDynamicScenarioHelp:
    """`--help` must enumerate the registry, not a hard-coded list, so new
    scenarios can never drift out of the help text."""

    @pytest.mark.parametrize("command", ["sweep", "multi", "mc"])
    def test_help_lists_every_registered_scenario(self, command, capsys):
        from repro.scenarios import available_scenarios

        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in available_scenarios():
            assert name in out

    def test_freshly_registered_scenario_appears_in_help(self, capsys):
        from repro.scenarios import StaticScenario
        from repro.scenarios.library import _REGISTRY, _SUMMARIES, register_scenario

        name = "only_for_this_test"
        register_scenario(name, "ephemeral")(StaticScenario)
        try:
            with pytest.raises(SystemExit):
                main(["sweep", "--help"])
            assert name in capsys.readouterr().out
        finally:
            _REGISTRY.pop(name, None)
            _SUMMARIES.pop(name, None)


class TestStrategiesCommand:
    def test_lists_every_registered_strategy(self, capsys):
        from repro.scheduling import available_schedulers

        assert main(["strategies"]) == EXIT_OK
        out = capsys.readouterr().out
        for name in available_schedulers():
            assert name in out
        assert "static" in out and "adaptive" in out and "dynamic" in out

    def test_json_output_has_kind_and_params(self, capsys):
        from repro.scheduling import available_schedulers

        assert main(["strategies", "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == set(available_schedulers())
        assert payload["heft"]["kind"] == "static"
        assert payload["heft"]["params"] == {"insertion": True}
        assert payload["aheft"]["kind"] == "adaptive"
        assert payload["aheft"]["summary"]


class TestDynamicStrategyHelp:
    """`--strategies` help must enumerate the scheduling registry."""

    @pytest.mark.parametrize("command", ["sweep", "multi", "mc"])
    def test_help_lists_every_registered_strategy(self, command, capsys):
        from repro.scheduling import available_schedulers, make_scheduler

        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        names = available_schedulers()
        if command == "multi":
            names = [n for n in names if hasattr(make_scheduler(n), "reschedule")]
        for name in names:
            assert name in out

    def test_freshly_registered_strategy_appears_in_help(self, capsys):
        from repro.scheduling import SCHEDULERS, register_scheduler
        from repro.scheduling.heft import HEFTScheduler

        name = "only_for_this_cli_test"
        register_scheduler(name, kind="static", summary="ephemeral")(HEFTScheduler)
        try:
            with pytest.raises(SystemExit):
                main(["sweep", "--help"])
            assert name in capsys.readouterr().out
        finally:
            SCHEDULERS.pop(name, None)

    def test_unknown_strategy_exits_two(self, tmp_path):
        assert (
            main(
                [
                    "sweep",
                    "--scenario",
                    "static",
                    "--quick",
                    "--strategies",
                    "heft,not_a_strategy",
                    "--out",
                    str(tmp_path / "x.json"),
                ]
            )
            == EXIT_ERROR
        )

    def test_registry_strategies_flow_into_a_sweep_ledger(self, tmp_path):
        out = tmp_path / "registry_sweep.json"
        assert (
            main(
                [
                    "sweep",
                    "--scenario",
                    "static",
                    "--quick",
                    "--v",
                    "12",
                    "--resources",
                    "4",
                    "--strategies",
                    "heft,cpop,heft_dup",
                    "--out",
                    str(out),
                ]
            )
            == EXIT_OK
        )
        ledger = json.loads(out.read_text())
        assert ledger["strategies"] == ["heft", "cpop", "heft_dup"]
        for point in ledger["scenarios"]:
            assert set(point["mean_makespans"]) == {"heft", "cpop", "heft_dup"}


class TestMultiCommand:
    def test_multi_strategy_dimension_reaches_the_ledger(self, tmp_path):
        out = tmp_path / "multi_strategies.json"
        assert (
            main(
                [
                    "multi",
                    "--tenants",
                    "2",
                    "--quick",
                    "--v",
                    "10",
                    "--resources",
                    "4",
                    "--max-arrivals",
                    "1",
                    "--strategies",
                    "aheft,cpop",
                    "--out",
                    str(out),
                ]
            )
            == EXIT_OK
        )
        ledger = json.loads(out.read_text())
        assert ledger["strategies"] == ["aheft", "cpop"]
        assert [point["strategy"] for point in ledger["points"]] == ["aheft", "cpop"]

    def test_multi_rejects_non_replanning_strategy(self, tmp_path):
        assert (
            main(
                [
                    "multi",
                    "--quick",
                    "--strategies",
                    "olb",
                    "--out",
                    str(tmp_path / "x.json"),
                ]
            )
            == EXIT_ERROR
        )

    def test_multi_ledger_is_deterministic(self, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        args = [
            "multi",
            "--tenants",
            "2",
            "--arrival-rate",
            "0.003",
            "--scenario",
            "departures",
            "--quick",
            "--seed",
            "1",
        ]
        assert main(args + ["--out", str(out_a)]) == EXIT_OK
        assert main(args + ["--out", str(out_b)]) == EXIT_OK
        assert out_a.read_text() == out_b.read_text()
        assert main(["compare", str(out_a), str(out_b)]) == EXIT_OK
        ledger = json.loads(out_a.read_text())
        assert ledger["kind"] == "multi_workflow_sweep"
        point = ledger["points"][0]
        for key in ("mean_flow_time", "p95_flow_time", "fairness", "throughput"):
            assert key in point
        assert point["scenario"] == "departures"

    def test_default_scenario_is_static(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        assert (
            main(
                [
                    "multi",
                    "--tenants",
                    "1",
                    "--quick",
                    "--max-arrivals",
                    "1",
                    "--out",
                    str(out),
                ]
            )
            == EXIT_OK
        )
        assert json.loads(out.read_text())["points"][0]["scenario"] == "static"

    def test_unknown_policy_exits_two(self, tmp_path):
        assert (
            main(
                [
                    "multi",
                    "--policies",
                    "round_robin",
                    "--out",
                    str(tmp_path / "x.json"),
                ]
            )
            == EXIT_ERROR
        )

    def test_unknown_scenario_exits_two(self, tmp_path):
        assert (
            main(
                ["multi", "--scenario", "nope", "--out", str(tmp_path / "x.json")]
            )
            == EXIT_ERROR
        )

    def test_non_positive_tenants_exits_two(self, tmp_path):
        assert (
            main(["multi", "--tenants", "0", "--out", str(tmp_path / "x.json")])
            == EXIT_ERROR
        )


class TestMcCommand:
    #: a small-but-real invocation: 2 magnitudes × 2 replications
    QUICK = [
        "mc",
        "--error-model",
        "resource_bias",
        "--magnitude",
        "0.0",
        "--magnitude",
        "0.4",
        "--scenario",
        "paper",
        "--v",
        "14",
        "--resources",
        "5",
        "--instances",
        "1",
        "--replications",
        "2",
        "--seed",
        "0",
    ]

    def test_mc_ledger_is_deterministic_across_workers(self, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(self.QUICK + ["--out", str(out_a)]) == EXIT_OK
        assert main(self.QUICK + ["--workers", "2", "--out", str(out_b)]) == EXIT_OK
        assert out_a.read_text() == out_b.read_text()
        assert main(["compare", str(out_a), str(out_b)]) == EXIT_OK
        ledger = json.loads(out_a.read_text())
        assert ledger["kind"] == "uncertainty_sweep"
        assert ledger["magnitudes"] == [0.0, 0.4]
        point = ledger["points"][0]
        for key in ("stats", "improvement", "improvement_ci95_low", "magnitude"):
            assert key in point
        for stat in point["stats"].values():
            for key in ("mean", "std", "ci95_low", "ci95_high", "count"):
                assert key in stat

    def test_help_lists_every_registered_error_model(self, capsys):
        from repro.workflow.costs import available_error_models

        with pytest.raises(SystemExit) as excinfo:
            main(["mc", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in available_error_models():
            assert name in out

    def test_freshly_registered_error_model_appears_in_help(self, capsys):
        from repro.workflow.costs import ERROR_MODELS, GaussianErrorModel

        name = "only_for_this_test"
        ERROR_MODELS[name] = lambda magnitude=0.1, seed=0, **kw: GaussianErrorModel(
            sigma=magnitude, seed=seed, **kw
        )
        try:
            with pytest.raises(SystemExit):
                main(["mc", "--help"])
            assert name in capsys.readouterr().out
        finally:
            ERROR_MODELS.pop(name, None)

    def test_unknown_error_model_exits_two(self, tmp_path):
        assert (
            main(
                [
                    "mc",
                    "--error-model",
                    "nope",
                    "--out",
                    str(tmp_path / "x.json"),
                ]
            )
            == EXIT_ERROR
        )

    def test_invalid_magnitude_exits_two(self, tmp_path):
        assert (
            main(
                [
                    "mc",
                    "--error-model",
                    "uniform",
                    "--magnitude",
                    "1.5",
                    "--out",
                    str(tmp_path / "x.json"),
                ]
            )
            == EXIT_ERROR
        )

    def test_unknown_scenario_exits_two(self, tmp_path):
        assert (
            main(["mc", "--scenario", "nope", "--out", str(tmp_path / "x.json")])
            == EXIT_ERROR
        )


class TestRunCommand:
    def test_list_names_benchmarks(self, capsys):
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        assert main(["run", "--list", "--bench-dir", str(bench_dir)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "kernel_scaling" in out

    def test_unknown_bench_exits_two(self):
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        assert (
            main(["run", "definitely-missing", "--bench-dir", str(bench_dir)])
            == EXIT_ERROR
        )

    def test_forwarding_after_separator_reaches_the_script(self, tmp_path, capsys):
        """`repro run bench -- --flag` forwards --flag (the CI kernel-gate
        invocation) even though argparse consumes the first `--` itself."""
        (tmp_path / "bench_echo.py").write_text(
            "import json, sys\nprint('ARGS=' + json.dumps(sys.argv[1:]))\n",
            encoding="utf-8",
        )
        assert (
            main(["run", "--bench-dir", str(tmp_path), "echo", "--", "--quick"])
            == EXIT_OK
        )
        assert 'ARGS=["--quick"]' in capsys.readouterr().out

    def test_forwarding_without_separator_exits_two(self, tmp_path):
        (tmp_path / "bench_echo.py").write_text("pass\n", encoding="utf-8")
        assert (
            main(["run", "--bench-dir", str(tmp_path), "echo", "--quick"])
            == EXIT_ERROR
        )

    def test_option_before_separator_still_fails_loudly(self, tmp_path):
        """A mistyped repro option between bench name and `--` must not be
        silently forwarded to the script."""
        (tmp_path / "bench_echo.py").write_text("pass\n", encoding="utf-8")
        assert (
            main(
                [
                    "run",
                    "--bench-dir",
                    str(tmp_path),
                    "echo",
                    "--quick",
                    "--",
                    "--real",
                ]
            )
            == EXIT_ERROR
        )

    def test_literal_separator_inside_script_args_is_forwarded(self, tmp_path, capsys):
        (tmp_path / "bench_echo.py").write_text(
            "import json, sys\nprint('ARGS=' + json.dumps(sys.argv[1:]))\n",
            encoding="utf-8",
        )
        assert (
            main(
                ["run", "--bench-dir", str(tmp_path), "echo", "--", "a", "--", "b"]
            )
            == EXIT_OK
        )
        assert 'ARGS=["a", "--", "b"]' in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        repo_root = Path(__file__).resolve().parent.parent
        result = subprocess.run(
            [sys.executable, "-m", "repro", "scenarios"],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "churn" in result.stdout


class TestExitCodeContract:
    def test_bad_scenario_param_is_usage_error_not_deviation(self, tmp_path):
        # load_spike has no `interval` parameter: must exit 2 (usage), not
        # 1 (reserved for compare deviations)
        code = main(
            [
                "sweep",
                "--scenario",
                "load_spike",
                "--scenario-param",
                "interval=100",
                "--out",
                str(tmp_path / "x.json"),
            ]
        )
        assert code == EXIT_ERROR
