"""Tests for the resource model: resources, pools and the (R, Δ, δ) dynamics."""

import pytest

from repro.resources.dynamics import ResourceChangeModel, StaticResourceModel
from repro.resources.pool import PoolEvent, ResourcePool
from repro.resources.resource import Resource


class TestResource:
    def test_defaults(self):
        res = Resource("r1")
        assert res.available_from == 0.0
        assert res.is_available_at(0.0)
        assert res.is_available_at(1e9)

    def test_joining_later(self):
        res = Resource("r2", available_from=10.0)
        assert not res.is_available_at(5.0)
        assert res.is_available_at(10.0)

    def test_leaving(self):
        res = Resource("r3", available_from=0.0, available_until=20.0)
        assert res.is_available_at(19.9)
        assert not res.is_available_at(20.0)

    def test_negative_join_time_rejected(self):
        with pytest.raises(ValueError):
            Resource("r", available_from=-1.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Resource("r", available_from=5.0, available_until=5.0)


class TestResourcePool:
    def test_add_and_query(self, growing_pool):
        assert len(growing_pool) == 6
        assert "r1" in growing_pool
        assert growing_pool.resource("r5").available_from == 30.0

    def test_duplicate_rejected(self):
        pool = ResourcePool([Resource("r1")])
        with pytest.raises(ValueError, match="duplicate"):
            pool.add(Resource("r1"))

    def test_available_at_respects_join_times(self, growing_pool):
        assert growing_pool.available_at(0.0) == ["r1", "r2", "r3", "r4"]
        assert "r5" in growing_pool.available_at(30.0)
        assert "r6" not in growing_pool.available_at(30.0)
        assert len(growing_pool.available_at(100.0)) == 6

    def test_initial_resources(self, growing_pool):
        assert growing_pool.initial_resources() == ["r1", "r2", "r3", "r4"]

    def test_joined_in_window(self, growing_pool):
        assert growing_pool.joined_in(0.0, 40.0) == ["r5"]
        assert growing_pool.joined_in(30.0, 100.0) == ["r6"]

    def test_events_sorted_and_aggregated(self, growing_pool):
        events = growing_pool.events()
        assert [e.time for e in events] == [30.0, 60.0]
        assert events[0].added == ("r5",)
        assert events[0].is_addition and not events[0].is_removal

    def test_events_until_filter(self, growing_pool):
        events = growing_pool.events(until=30.0)
        assert len(events) == 1

    def test_removal_events(self):
        pool = ResourcePool([Resource("r1", available_until=50.0), Resource("r2")])
        events = pool.events()
        assert events[0].removed == ("r1",)

    def test_snapshot_and_restrict(self, growing_pool):
        snap = growing_pool.snapshot(0.0)
        assert len(snap) == 4
        restricted = growing_pool.restricted_to(["r1", "r6"])
        assert restricted.all_resource_ids() == ["r1", "r6"]

    def test_extended_with(self, growing_pool):
        bigger = growing_pool.extended_with([Resource("extra")])
        assert "extra" in bigger
        assert "extra" not in growing_pool


class TestPoolEvent:
    def test_requires_content(self):
        event = PoolEvent(time=1.0, added=("r1",))
        assert event.is_addition


class TestResourceChangeModel:
    def test_pool_growth_per_interval(self, change_model):
        pool = change_model.build_pool()
        assert len(pool.available_at(0.0)) == 4
        # ceil(0.25 * 4) = 1 new resource per event
        assert len(pool.available_at(25.0)) == 5
        assert len(pool.available_at(51.0)) == 6

    def test_added_per_event_rounds_up(self):
        model = ResourceChangeModel(initial_size=10, interval=100, fraction=0.11)
        assert model.added_per_event == 2  # ceil(1.1)

    def test_zero_fraction_means_static(self):
        model = ResourceChangeModel(initial_size=5, interval=100, fraction=0.0, max_events=3)
        pool = model.build_pool()
        assert len(pool) == 5
        assert pool.events() == []

    def test_max_events_bounds_pool(self):
        model = ResourceChangeModel(initial_size=2, interval=10, fraction=0.5, max_events=3)
        pool = model.build_pool()
        assert len(pool) == 2 + 3 * 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ResourceChangeModel(initial_size=0, interval=10, fraction=0.1)
        with pytest.raises(ValueError):
            ResourceChangeModel(initial_size=1, interval=0, fraction=0.1)
        with pytest.raises(ValueError):
            ResourceChangeModel(initial_size=1, interval=10, fraction=-0.1)

    def test_leave_fraction_creates_bounded_windows(self):
        model = ResourceChangeModel(
            initial_size=4, interval=10, fraction=0.25, leave_fraction=0.25, max_events=2
        )
        pool = model.build_pool()
        leaving = [
            rid
            for rid in pool.all_resource_ids()
            if pool.resource(rid).available_until is not None
        ]
        assert leaving  # some resource departs in the extension model

    def test_describe_mentions_parameters(self, change_model):
        text = change_model.describe()
        assert "R=4" in text and "Δ=25" in text


class TestStaticResourceModel:
    def test_builds_fixed_pool(self):
        pool = StaticResourceModel(size=7).build_pool()
        assert len(pool) == 7
        assert pool.events() == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            StaticResourceModel(size=0)
