"""Differential tests: PartialScheduleFrame's fast min-EFT path vs the scalar loop.

:meth:`PartialScheduleFrame.min_eft_placement` has two implementations — the
generic per-resource FEA sweep (reference semantics) and the vectorised
default/override decomposition used when the cost model prices its own
workflow with placement-uniform communication.  The fast path must be
bit-identical on every scenario the schedulers can produce: cold starts,
mid-flight reschedules with pinned history, pool growth and shrinkage,
recorded data arrivals, and duplicate copies (historical and fresh).
"""

from __future__ import annotations

import pytest

from repro.generators.blast import generate_blast_case
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.scheduling.base import ExecutionState
from repro.scheduling.frame import PartialScheduleFrame
from repro.scheduling.heft import heft_priority_order, heft_schedule


def _case(v: int, seed: int, out_degree: float = 0.2):
    params = RandomDAGParameters(
        v=v, out_degree=out_degree, ccr=1.0, beta=0.5, omega_dag=300.0
    )
    return generate_random_case(params, seed=seed)


def _paired_frames(case, resources, **kwargs):
    """Two frames over identical state: fast path on, fast path off."""
    fast = PartialScheduleFrame(case.workflow, case.costs, resources, **kwargs)
    slow = PartialScheduleFrame(case.workflow, case.costs, resources, **kwargs)
    assert fast._fast, "expected the fast path to be eligible"
    slow._fast = False  # force the scalar reference sweep
    return fast, slow


def _drive_and_compare(case, fast, slow, resources, *, insertion=True):
    """Place every unpinned job through both frames, comparing each step."""
    order = heft_priority_order(case.workflow, case.costs, resources)
    placed = 0
    for job in order:
        if job not in fast.to_schedule_set:
            continue
        got = fast.min_eft_placement(job, insertion=insertion)
        want = slow.min_eft_placement(job, insertion=insertion)
        assert got == want, f"divergence at {job!r}: fast={got} slow={want}"
        rid, start, finish = got
        fast.place(job, rid, start, finish)
        slow.place(job, rid, start, finish)
        placed += 1
    assert placed > 0
    assert fast.schedule.to_dict() == slow.schedule.to_dict()


class TestFrameFastPath:
    def test_cold_start_matches_scalar(self):
        resources = [f"r{i + 1}" for i in range(9)]
        for seed in (0, 3, 7):
            case = _case(50, seed)
            fast, slow = _paired_frames(case, resources)
            _drive_and_compare(case, fast, slow, resources)

    def test_no_insertion_matches_scalar(self):
        resources = [f"r{i + 1}" for i in range(6)]
        case = _case(40, 11)
        fast, slow = _paired_frames(case, resources)
        _drive_and_compare(case, fast, slow, resources, insertion=False)

    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_midflight_pool_change_matches_scalar(self, seed):
        resources = [f"r{i + 1}" for i in range(8)]
        case = _case(60, seed)
        previous = heft_schedule(case.workflow, case.costs, resources)
        clock = previous.makespan() * 0.4
        # shrink and grow the pool so recorded arrivals, departed old
        # targets, and fresh resources all appear in the override sets
        changed = resources[:-2] + ["g1", "g2", "g3"]
        fast, slow = _paired_frames(
            case, changed, clock=clock, previous_schedule=previous
        )
        _drive_and_compare(case, fast, slow, changed)

    def test_duplicates_lower_the_fea_identically(self):
        resources = [f"r{i + 1}" for i in range(7)]
        case = _case(45, 5)
        previous = heft_schedule(case.workflow, case.costs, resources)
        clock = previous.makespan() * 0.3
        fast, slow = _paired_frames(
            case, resources, clock=clock, previous_schedule=previous
        )
        order = heft_priority_order(case.workflow, case.costs, resources)
        pending = [j for j in order if j in fast.to_schedule_set]
        for step, job in enumerate(pending):
            got = fast.min_eft_placement(job)
            want = slow.min_eft_placement(job)
            assert got == want, f"divergence at {job!r}: fast={got} slow={want}"
            rid, start, finish = got
            fast.place(job, rid, start, finish)
            slow.place(job, rid, start, finish)
            # every third placement, book a duplicate copy of the job on
            # another resource so later successors see min'd arrivals
            if step % 3 == 0:
                other = resources[(step + 1) % len(resources)]
                if other != rid:
                    d_start, d_finish = fast.earliest_finish(job, other)
                    fast.place_duplicate(job, other, d_start, d_finish)
                    slow.place_duplicate(job, other, d_start, d_finish)
        assert fast.schedule.to_dict() == slow.schedule.to_dict()

    def test_application_dag_matches_scalar(self):
        case = generate_blast_case(24, ccr=1.0, beta=0.5, omega_dag=300.0, seed=2)
        resources = [f"r{i + 1}" for i in range(10)]
        previous = heft_schedule(case.workflow, case.costs, resources)
        clock = previous.makespan() * 0.5
        fast, slow = _paired_frames(
            case, resources, clock=clock, previous_schedule=previous
        )
        _drive_and_compare(case, fast, slow, resources)

    def test_explicit_execution_state_arrivals_match(self):
        # recorded data arrivals (satellite of ISSUE-10's FEA precedence
        # rule) must participate in the override enumeration identically
        resources = [f"r{i + 1}" for i in range(6)]
        case = _case(30, 8)
        previous = heft_schedule(case.workflow, case.costs, resources)
        clock = previous.makespan() * 0.45
        state = ExecutionState.from_schedule(
            previous, clock, jobs=case.workflow.jobs
        )
        # synthesize extra replicated-input arrivals for finished jobs
        for (job, rid), when in list(state.data_arrivals.items()):
            for other in resources[:2]:
                state.data_arrivals.setdefault((job, other), when * 1.25)
        fast, slow = _paired_frames(
            case,
            resources,
            clock=clock,
            previous_schedule=previous,
            execution_state=state,
        )
        _drive_and_compare(case, fast, slow, resources)
