"""Tests for AHEFT — the paper's adaptive rescheduling algorithm."""

import pytest

from repro.generators.sample import sample_dag_cost_model, sample_dag_workflow
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.aheft import AHEFTScheduler, aheft_reschedule
from repro.scheduling.base import ExecutionState, JobStatus
from repro.scheduling.heft import heft_schedule
from repro.scheduling.validation import validate_schedule


class TestInitialSchedulingIdentity:
    """At clock 0 with no history AHEFT is identical to HEFT (paper §3.4)."""

    def test_identical_on_sample(self, sample_workflow, sample_costs):
        heft = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        aheft = aheft_reschedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        assert aheft.to_dict() == heft.to_dict()

    def test_identical_on_random_case(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        resources = ["r1", "r2", "r3", "r4"]
        assert (
            aheft_reschedule(wf, costs, resources).to_dict()
            == heft_schedule(wf, costs, resources).to_dict()
        )

    def test_scheduler_wrapper_initial(self, diamond_workflow, diamond_costs):
        schedule = AHEFTScheduler().schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        assert len(schedule) == diamond_workflow.num_jobs


class TestReschedulingMechanics:
    @pytest.fixture
    def sample_setup(self, sample_workflow, sample_costs):
        previous = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        state = ExecutionState.from_schedule(previous, clock=15.0, jobs=sample_workflow.jobs)
        return sample_workflow, sample_costs, previous, state

    def test_finished_jobs_are_pinned(self, sample_setup):
        wf, costs, previous, state = sample_setup
        new = aheft_reschedule(
            wf, costs, ["r1", "r2", "r3", "r4"], clock=15.0,
            previous_schedule=previous, execution_state=state,
        )
        assert new.assignment("n1").resource_id == previous.assignment("n1").resource_id
        assert new.assignment("n1").finish == pytest.approx(9.0)

    def test_running_job_pinned_when_respected(self, sample_setup):
        wf, costs, previous, state = sample_setup
        assert state.is_running("n3")
        new = aheft_reschedule(
            wf, costs, ["r1", "r2", "r3", "r4"], clock=15.0,
            previous_schedule=previous, execution_state=state, respect_running=True,
        )
        assert new.assignment("n3").resource_id == previous.assignment("n3").resource_id
        assert new.assignment("n3").start == previous.assignment("n3").start

    def test_running_job_restarts_when_not_respected(self, sample_setup):
        wf, costs, previous, state = sample_setup
        new = aheft_reschedule(
            wf, costs, ["r1", "r2", "r3", "r4"], clock=15.0,
            previous_schedule=previous, execution_state=state, respect_running=False,
        )
        # a re-mapped running job cannot start before the rescheduling clock
        assert new.assignment("n3").start >= 15.0

    def test_not_started_jobs_start_at_or_after_clock_or_keep_validity(self, sample_setup):
        wf, costs, previous, state = sample_setup
        new = aheft_reschedule(
            wf, costs, ["r1", "r2", "r3", "r4"], clock=15.0,
            previous_schedule=previous, execution_state=state,
        )
        for job in state.not_started_jobs():
            assert new.assignment(job).start >= 15.0 - 1e-9

    def test_rescheduled_schedule_is_feasible(self, sample_setup):
        wf, costs, previous, state = sample_setup
        pool = ResourcePool(
            [Resource("r1"), Resource("r2"), Resource("r3"), Resource("r4", available_from=15.0)]
        )
        new = aheft_reschedule(
            wf, costs, ["r1", "r2", "r3", "r4"], clock=15.0,
            previous_schedule=previous, execution_state=state,
        )
        assert validate_schedule(wf, costs, new, pool=pool) == []

    def test_rescheduling_never_touches_resources_outside_the_set(self, sample_setup):
        wf, costs, previous, state = sample_setup
        new = aheft_reschedule(
            wf, costs, ["r1", "r2"], clock=15.0,
            previous_schedule=previous, execution_state=state,
        )
        for job in state.not_started_jobs():
            assert new.assignment(job).resource_id in {"r1", "r2"}

    def test_empty_resource_set_rejected(self, sample_setup):
        wf, costs, previous, state = sample_setup
        with pytest.raises(ValueError):
            aheft_reschedule(wf, costs, [], clock=15.0, previous_schedule=previous)

    def test_negative_clock_rejected(self, sample_workflow, sample_costs):
        with pytest.raises(ValueError):
            aheft_reschedule(sample_workflow, sample_costs, ["r1"], clock=-1.0)

    def test_state_derived_from_schedule_when_omitted(self, sample_workflow, sample_costs):
        previous = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        new = aheft_reschedule(
            sample_workflow, sample_costs, ["r1", "r2", "r3", "r4"],
            clock=15.0, previous_schedule=previous,
        )
        # n1 finished before clock 15, so it must be pinned to its actual run
        assert new.assignment("n1").finish == pytest.approx(9.0)


class TestFEACases:
    """Exercise Equation (1) case by case on a tiny chain a -> b."""

    @pytest.fixture
    def chain_setup(self, chain_workflow):
        from repro.workflow.costs import TabularCostModel

        costs = TabularCostModel(
            chain_workflow,
            {
                "a": {"r1": 4.0, "r2": 4.0},
                "b": {"r1": 5.0, "r2": 5.0},
                "c": {"r1": 6.0, "r2": 6.0},
            },
        )
        previous = heft_schedule(chain_workflow, costs, ["r1"])
        return chain_workflow, costs, previous

    @staticmethod
    def _state_a_finished(workflow, clock):
        """a finished on r1 at t=4; b and c not started; clock as given."""
        state = ExecutionState.initial(workflow.jobs)
        state.clock = clock
        state.record_start("a", "r1", 0.0)
        state.record_finish("a", 4.0)
        return state

    def test_case1_local_output_free(self, chain_setup):
        wf, costs, previous = chain_setup
        state = self._state_a_finished(wf, clock=6.0)
        new = aheft_reschedule(
            wf, costs, ["r1", "r2"], clock=6.0,
            previous_schedule=previous, execution_state=state,
        )
        assert new.assignment("b").resource_id == "r1"
        assert new.assignment("b").start == pytest.approx(6.0)

    def test_case2_transfer_starts_at_clock(self, chain_workflow):
        from repro.workflow.costs import TabularCostModel

        # make r2 much faster for b so it is chosen despite the transfer
        costs = TabularCostModel(
            chain_workflow,
            {
                "a": {"r1": 4.0, "r2": 40.0},
                "b": {"r1": 50.0, "r2": 1.0},
                "c": {"r1": 50.0, "r2": 1.0},
            },
        )
        previous = heft_schedule(chain_workflow, costs, ["r1"])
        clock = 10.0
        state = self._state_a_finished(chain_workflow, clock)
        new = aheft_reschedule(
            chain_workflow, costs, ["r1", "r2"], clock=clock,
            previous_schedule=previous, execution_state=state,
        )
        b = new.assignment("b")
        assert b.resource_id == "r2"
        # a's output was never scheduled to move to r2, so the transfer can
        # only start at the rescheduling clock: start = clock + c(a, b)
        assert b.start == pytest.approx(clock + chain_workflow.data("a", "b"))

    def test_in_flight_transfer_recorded_in_state_is_used(self, chain_workflow):
        from repro.workflow.costs import TabularCostModel

        costs = TabularCostModel(
            chain_workflow,
            {
                "a": {"r1": 4.0, "r2": 40.0},
                "b": {"r1": 50.0, "r2": 1.0},
                "c": {"r1": 50.0, "r2": 1.0},
            },
        )
        previous = heft_schedule(chain_workflow, costs, ["r1"])
        clock = 10.0
        state = self._state_a_finished(chain_workflow, clock)
        # the Executor already shipped a's output to r2, arriving at t=7
        state.record_data_arrival("a", "r2", 7.0)
        new = aheft_reschedule(
            chain_workflow, costs, ["r1", "r2"], clock=clock,
            previous_schedule=previous, execution_state=state,
        )
        assert new.assignment("b").start == pytest.approx(clock)

    def test_unfinished_predecessor_same_resource_case3(self, chain_setup):
        wf, costs, previous = chain_setup
        # at clock 2, a is still running on r1 until 4; b placed on r1 starts at 4
        new = aheft_reschedule(
            wf, costs, ["r1", "r2"], clock=2.0, previous_schedule=previous,
        )
        assert new.assignment("b").resource_id == "r1"
        assert new.assignment("b").start == pytest.approx(4.0)


class TestAdoptionGuarantee:
    def test_candidate_never_schedules_before_clock(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        previous = heft_schedule(wf, costs, ["r1", "r2"])
        clock = previous.makespan() * 0.3
        state = ExecutionState.from_schedule(previous, clock, jobs=wf.jobs)
        new = aheft_reschedule(
            wf, costs, ["r1", "r2", "r3", "r4"], clock=clock,
            previous_schedule=previous, execution_state=state,
        )
        for job in state.not_started_jobs():
            assert new.assignment(job).start >= clock - 1e-9

    def test_reschedule_with_extra_resources_never_increases_makespan_after_accept_rule(
        self, small_random_case
    ):
        """The Planner adopts S1 only if better, so min(S0, S1) <= S0 trivially;
        here we check S1 itself is usually no worse when resources are added."""
        wf, costs = small_random_case.workflow, small_random_case.costs
        previous = heft_schedule(wf, costs, ["r1", "r2"])
        clock = previous.makespan() * 0.25
        new = aheft_reschedule(
            wf, costs, ["r1", "r2", "r3", "r4", "r5"], clock=clock,
            previous_schedule=previous,
        )
        # even if the heuristic fails to improve, the accept-if-better rule
        # caps the adopted plan at the previous makespan
        assert min(new.makespan(), previous.makespan()) <= previous.makespan()
