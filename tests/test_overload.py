"""Overload-safe multi-tenancy.

Four regression suites for the shared-grid correctness fixes —

* an arrival during a pool gap is deferred to the next capacity point
  instead of killing the whole stream,
* same-instant pool events are merged, not last-writer-wins,
* ``consumed_time`` charges duplicate bookings (duplication strategies),
* ``busy_view`` prunes with the same ``TIME_EPS`` tolerance as
  ``finished_by``

— plus the overload-management layer on top: credit scores stay in
(0, 1] under arbitrary completion histories (hypothesis), a permissive
admission controller is bit-identical to no controller on every
registered scenario, and deferred/rejected arrivals never violate the
cross-tenant slot-exclusivity invariant.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cli import EXIT_OK, main
from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    predicted_saturation,
)
from repro.core.credit import CreditConfig, CreditLedger
from repro.core.multi_tenant import (
    POLICIES,
    ActiveWorkflow,
    MultiTenantPlanner,
)
from repro.experiments.multi_tenant import MultiTenantConfig, run_multi_tenant_case
from repro.resources.pool import PoolEvent, ResourcePool
from repro.resources.resource import Resource
from repro.scenarios import available_scenarios, make_scenario, materialize
from repro.scenarios.library import DepartureScenario, JoinBurstScenario
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.base import Assignment, Schedule, TIME_EPS
from repro.workload.streams import TenantSpec, WorkflowArrival, WorkloadStream


def _active(key, tenant, seq, spans, *, duplicates=(), dedicated=100.0):
    schedule = Schedule(name=key)
    for index, (rid, start, finish) in enumerate(spans):
        schedule.add(Assignment(f"{key}-j{index}", rid, start, finish))
    for job, rid, start, finish in duplicates:
        schedule.add_duplicate(Assignment(job, rid, start, finish))
    return ActiveWorkflow(
        key=key,
        tenant=tenant,
        seq=seq,
        arrival_time=0.0,
        kind="random",
        workflow=None,
        costs=None,
        scheduler=AHEFTScheduler(),
        schedule=schedule,
        dedicated_span=dedicated,
    )


def _run_multi(arrivals, pool, **options):
    return repro.run(arrivals, pool, mode="multi", **options).raw


# ----------------------------------------------------------------------
# fix 1: arrivals during a pool gap defer instead of crashing the stream
# ----------------------------------------------------------------------
class TestEmptyPoolDeferral:
    def _gap_pool(self):
        # capacity in [0, 10) and [50, ∞): empty gap at the arrival
        return ResourcePool(
            [
                Resource("r1", available_until=10.0),
                Resource("r2", available_from=50.0),
            ]
        )

    def test_arrival_in_gap_runs_after_next_join(self, make_case):
        case = make_case(v=6, seed=1)
        arrivals = [WorkflowArrival("t1", 0, 20.0, "random", case, seq=0)]
        result = _run_multi(arrivals, self._gap_pool())
        (outcome,) = result.outcomes
        # flow time is charged from the original submission, not the retry
        assert outcome.arrival_time == 20.0
        assert all(a.start >= 50.0 - TIME_EPS for a in outcome.schedule)
        assert outcome.flow_time > 30.0
        assert outcome.stretch > 1.0

    def test_no_future_capacity_still_raises(self, make_case):
        pool = ResourcePool([Resource("r1", available_until=10.0)])
        case = make_case(v=6, seed=1)
        arrivals = [WorkflowArrival("t1", 0, 20.0, "random", case, seq=0)]
        with pytest.raises(ValueError, match="no resources available"):
            _run_multi(arrivals, pool)

    def test_planner_admit_still_rejects_empty_pool(self, make_case):
        """The planner-level guard survives; only the executor defers."""
        planner = MultiTenantPlanner(self._gap_pool())
        case = make_case(v=6, seed=1)
        arrival = WorkflowArrival("t1", 0, 20.0, "random", case, seq=0)
        with pytest.raises(ValueError, match="no resources available"):
            planner.admit(arrival, 20.0)


# ----------------------------------------------------------------------
# fix 2: same-instant pool events merge instead of last-writer-wins
# ----------------------------------------------------------------------
class _SplitEventPool(ResourcePool):
    """A pool whose ``events()`` reports one event per joining/leaving
    resource — several same-instant events where ``ResourcePool.events``
    aggregates.  Legal per the PoolEvent contract, so the executor must
    merge them instead of keeping only the last."""

    def events(self, *, after=0.0, until=None):
        split = []
        for event in super().events(after=after, until=until):
            for rid in event.removed:
                split.append(PoolEvent(time=event.time, added=(), removed=(rid,)))
            for rid in event.added:
                split.append(PoolEvent(time=event.time, added=(rid,), removed=()))
        return split


class TestSameInstantPoolEvents:
    def _resources(self):
        return [
            Resource("r1", available_until=120.0),
            Resource("r2", available_until=120.0),
            Resource("r3"),
        ]

    def test_split_events_match_aggregated_events(self, make_case):
        case = make_case(v=16, seed=3, omega_dag=100.0)
        arrivals = [WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)]
        merged = _run_multi(arrivals, ResourcePool(self._resources()))
        split = _run_multi(arrivals, _SplitEventPool(self._resources()))
        a, b = merged.outcomes[0], split.outcomes[0]
        assert a.schedule.to_dict() == b.schedule.to_dict()
        assert a.wasted_work == b.wasted_work
        assert a.killed_jobs == b.killed_jobs
        assert [d.event for d in a.decisions] == [d.event for d in b.decisions]

    def test_both_same_instant_departures_are_applied(self, make_case):
        case = make_case(v=16, seed=3, omega_dag=100.0)
        arrivals = [WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)]
        result = _run_multi(arrivals, _SplitEventPool(self._resources()))
        (outcome,) = result.outcomes
        # a dropped removal would leave bookings on a departed resource
        for assignment in outcome.schedule.all_assignments():
            if assignment.resource_id in ("r1", "r2"):
                assert assignment.finish <= 120.0 + TIME_EPS
        # and the single merged trigger saw both removals at once
        departure = [d for d in outcome.decisions if "-" in d.event]
        assert departure and any(
            "r1" in d.event and "r2" in d.event for d in departure
        )

    def test_composed_scenarios_firing_at_one_instant(self, make_case):
        """End to end: two scenario parts at the same instant, one trigger."""
        scenario = JoinBurstScenario(at=400.0, fraction=0.5) + DepartureScenario(
            interval=400.0, fraction=0.25, start=0.0, max_events=1
        )
        run = materialize(scenario, initial_size=4, seed=0, horizon=2000.0)
        times = [event.time for event in run.pool.events()]
        assert times.count(400.0) == 1  # join and leave merged at t=400
        case = make_case(v=14, seed=5, omega_dag=300.0)
        arrivals = [WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)]
        result = _run_multi(arrivals, run.pool, perf_profile=run.profile)
        result.shared_timelines()
        events = [d.event for d in result.outcomes[0].decisions if d.time == 400.0]
        assert len(events) == 1 and "+" in events[0] and "-" in events[0]


# ----------------------------------------------------------------------
# fix 3: consumed_time charges duplicate bookings too
# ----------------------------------------------------------------------
class TestConsumedTimeDuplicates:
    def test_duplicates_count_toward_fair_share(self):
        wf = _active(
            "a/0",
            "a",
            0,
            [("r1", 0.0, 50.0)],
            duplicates=(("a/0-j0", "r2", 0.0, 40.0),),
        )
        # 50 main + 40 duplicate, both fully elapsed by t=100
        assert wf.consumed_time(100.0) == pytest.approx(90.0)
        # partially elapsed duplicates are clipped at the clock like mains
        assert wf.consumed_time(20.0) == pytest.approx(40.0)

    def test_served_accounting_matches_busy_view(self):
        """The time fair-share charges equals the span busy_view books."""
        pool = ResourcePool([Resource("r1"), Resource("r2")])
        planner = MultiTenantPlanner(pool, policy="fair_share")
        planner._active["a/0"] = _active(
            "a/0",
            "a",
            0,
            [("r1", 0.0, 50.0)],
            duplicates=(("a/0-j0", "r2", 0.0, 40.0),),
        )
        served = planner._served_by_tenant(100.0)
        booked = sum(
            finish - start
            for spans in planner.busy_view(None, 0.0).values()
            for start, finish in spans
        )
        assert served["a"] == pytest.approx(booked) == pytest.approx(90.0)


# ----------------------------------------------------------------------
# fix 4: busy_view prunes with the same TIME_EPS as finished_by
# ----------------------------------------------------------------------
class TestBusyViewEpsilon:
    def test_finished_within_eps_does_not_block_capacity(self):
        pool = ResourcePool([Resource("r1")])
        planner = MultiTenantPlanner(pool)
        wf = _active("a/0", "a", 0, [("r1", 0.0, 100.0)])
        planner._active["a/0"] = wf
        clock = 100.0 - TIME_EPS / 2  # finished_by() is already True here
        assert wf.finished_by(clock)
        assert planner.busy_view(None, clock) == {}

    def test_assignment_within_eps_is_pruned(self):
        pool = ResourcePool([Resource("r1"), Resource("r2")])
        planner = MultiTenantPlanner(pool)
        clock = 100.0
        planner._active["a/0"] = _active(
            "a/0", "a", 0, [("r1", 0.0, clock + TIME_EPS / 2), ("r2", 150.0, 200.0)]
        )
        assert planner.busy_view(None, clock) == {"r2": [(150.0, 200.0)]}


# ----------------------------------------------------------------------
# credit scores
# ----------------------------------------------------------------------
class TestCreditLedger:
    @given(
        completions=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.booleans(),
                st.booleans(),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_credit_stays_in_unit_interval(self, completions):
        ledger = CreditLedger()
        for stretch, deadline_violated, slo_violated in completions:
            credit = ledger.record_completion(
                "t",
                stretch=stretch,
                deadline_violated=deadline_violated,
                slo_violated=slo_violated,
            )
            assert ledger.config.floor <= credit <= 1.0
            assert 0.5 < ledger.weight("t") <= 1.0

    def test_violations_erode_credit_and_recovery_restores_it(self):
        ledger = CreditLedger(CreditConfig(tail_window=4))
        for _ in range(6):
            ledger.record_completion("t", stretch=10.0, slo_violated=True)
        eroded = ledger.credit("t")
        assert eroded < 0.5
        for _ in range(12):
            ledger.record_completion("t", stretch=1.0)
        assert ledger.credit("t") > eroded

    def test_fresh_tenant_is_trusted(self):
        ledger = CreditLedger()
        assert ledger.credit("unseen") == 1.0
        assert ledger.weight("unseen") == 1.0
        assert ledger.tail_stretch("unseen") == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CreditConfig(floor=0.0)
        with pytest.raises(ValueError):
            CreditConfig(memory=1.0)
        with pytest.raises(ValueError):
            CreditConfig(tail_quantile=1.5)

    def test_snapshot_counts_violations(self):
        ledger = CreditLedger()
        ledger.record_completion("t", stretch=5.0, deadline_violated=True)
        ledger.record_completion("t", stretch=1.0)
        snap = ledger.snapshot()["t"]
        assert snap["completions"] == 2
        assert snap["deadline_violations"] == 1
        assert snap["slo_violations"] == 0


class TestCreditDrfPolicy:
    def test_registered_in_policies(self):
        assert "credit_drf" in POLICIES

    def test_low_credit_tenant_books_later(self):
        pool = ResourcePool([Resource("r1"), Resource("r2")])
        planner = MultiTenantPlanner(pool, policy="credit_drf")
        for _ in range(6):
            planner.credit.record_completion("bad", stretch=20.0, slo_violated=True)
        # equal consumption, 'bad' submitted first: fair_share would tie-
        # break by seq and let 'bad' book first; credit damping flips it
        planner._active["bad/0"] = _active("bad/0", "bad", 0, [("r1", 0.0, 100.0)])
        planner._active["good/0"] = _active("good/0", "good", 1, [("r2", 0.0, 100.0)])
        candidates = list(planner._active.values())
        order = [wf.key for wf in planner.replan_order(candidates, clock=100.0)]
        assert order == ["good/0", "bad/0"]
        fair = MultiTenantPlanner(pool, policy="fair_share")
        fair._active = planner._active
        assert [wf.key for wf in fair.replan_order(candidates, clock=100.0)] == [
            "bad/0",
            "good/0",
        ]

    def test_completions_feed_ledger_during_runs(self, make_scenario):
        specs = [
            TenantSpec(name="t1", arrival_rate=0.01, max_arrivals=3, v=10, slo_stretch=1.0),
            TenantSpec(name="t2", arrival_rate=0.01, max_arrivals=3, v=10, slo_stretch=1.0),
        ]
        stream = WorkloadStream(specs, seed=2, horizon=4000.0)
        run = make_scenario("static", initial_size=3, seed=2)
        result = _run_multi(
            stream.arrivals(),
            run.pool,
            perf_profile=run.profile,
            policy="credit_drf",
            tenant_weights=stream.weights(),
        )
        result.shared_timelines()
        assert set(result.credits) == {"t1", "t2"}
        assert all(0.0 < credit <= 1.0 for credit in result.credits.values())
        # an slo_stretch of 1.0 makes any queueing a violation, so at
        # least one tenant's credit must have moved off the initial 1.0
        assert result.slo_violations() > 0
        assert min(result.credits.values()) < 1.0


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmissionUnits:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(saturation_threshold=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(stretch_limit=0.5)
        with pytest.raises(ValueError):
            AdmissionConfig(max_deferrals=-1)

    def test_predicted_saturation_clips_to_window(self):
        busy = {"r1": [(0.0, 50.0)], "r2": [(25.0, 200.0)]}
        # window [0, 100] over 2 resources = 200 capacity; booked 50 + 75
        assert predicted_saturation(busy, 2, 0.0, 100.0) == pytest.approx(0.625)
        assert predicted_saturation({}, 2, 0.0, 100.0) == 0.0
        assert predicted_saturation(busy, 0, 0.0, 100.0) == 0.0

    def test_overlapping_spans_counted_once(self):
        busy = {"r1": [(0.0, 60.0), (30.0, 90.0)]}
        assert predicted_saturation(busy, 1, 0.0, 100.0) == pytest.approx(0.9)

    def test_reject_after_max_deferrals(self, make_case):
        pool = ResourcePool([Resource("r1", available_from=1000.0)])
        planner = MultiTenantPlanner(pool)
        controller = AdmissionController(AdmissionConfig(max_deferrals=2))
        case = make_case(v=6, seed=1)
        arrival = WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)
        actions = [
            controller.evaluate(planner, arrival, float(clock))[0]
            for clock in (0, 10, 20)
        ]
        assert actions == ["defer", "defer", "reject"]
        assert controller.deferral_count == 2
        assert controller.rejected_keys == ["t1/0"]

    def test_cannot_defer_escalates_to_reject(self, make_case):
        pool = ResourcePool([Resource("r1", available_from=1000.0)])
        planner = MultiTenantPlanner(pool)
        controller = AdmissionController()
        case = make_case(v=6, seed=1)
        arrival = WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)
        action, planned = controller.evaluate(
            planner, arrival, 0.0, can_defer=False
        )
        assert action == "reject" and planned is None


class TestDeferralBookkeeping:
    """Deferral chains are pruned on every terminal decision.

    Regression: `_deferrals` entries from abandoned chains (a deferred
    arrival the caller never re-offered) used to live forever keyed by
    the bare workflow key, so a later arrival reusing the key inherited
    the stale offer count and was rejected before exhausting its own
    deferral budget — and a long-lived stream grew the dict without
    bound.
    """

    def _saturated_planner(self):
        # no capacity until t=1000: every offer below that is throttled
        return MultiTenantPlanner(
            ResourcePool([Resource("r1", available_from=1000.0)])
        )

    def test_stale_chain_does_not_leak_into_resubmission(self, make_case):
        planner = self._saturated_planner()
        controller = AdmissionController(AdmissionConfig(max_deferrals=2))
        case = make_case(v=6, seed=1)
        first = WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)
        assert controller.evaluate(planner, first, 0.0)[0] == "defer"
        assert controller.evaluate(planner, first, 10.0)[0] == "defer"
        # chain abandoned here; a re-submission reusing the key must get
        # the full deferral budget, not the abandoned chain's count
        resubmitted = WorkflowArrival("t1", 0, 500.0, "random", case, seq=1)
        actions = [
            controller.evaluate(planner, resubmitted, clock)[0]
            for clock in (500.0, 510.0, 520.0)
        ]
        assert actions == ["defer", "defer", "reject"]
        assert controller.pending_deferrals == {}

    def test_terminal_decisions_prune_pending_state(self, make_case):
        planner = self._saturated_planner()
        controller = AdmissionController(AdmissionConfig(max_deferrals=1))
        case = make_case(v=6, seed=1)
        arrival = WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)
        assert controller.evaluate(planner, arrival, 0.0)[0] == "defer"
        assert controller.pending_deferrals == {"t1/0": 1}
        assert controller.evaluate(planner, arrival, 10.0)[0] == "reject"
        assert controller.pending_deferrals == {}
        # admit prunes too: permissive gates so only the empty pool
        # throttles, then retry once capacity exists
        permissive = AdmissionController(
            AdmissionConfig(saturation_threshold=1.0, stretch_limit=1e9)
        )
        late = WorkflowArrival("t2", 0, 0.0, "random", case, seq=1)
        assert permissive.evaluate(planner, late, 0.0)[0] == "defer"
        assert permissive.pending_deferrals == {"t2/0": 1}
        assert permissive.evaluate(planner, late, 1500.0)[0] == "admit"
        assert permissive.pending_deferrals == {}

    def test_forget_drops_abandoned_chain(self, make_case):
        planner = self._saturated_planner()
        controller = AdmissionController()
        case = make_case(v=6, seed=1)
        arrival = WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)
        assert controller.evaluate(planner, arrival, 0.0)[0] == "defer"
        assert controller.pending_deferrals == {"t1/0": 1}
        controller.forget("t1/0")
        assert controller.pending_deferrals == {}
        controller.forget("ghost")  # unknown keys are a no-op


class TestAdmissionOffBitIdentity:
    """A permissive controller must change nothing: admission decisions
    are logged but every arrival admits exactly as without a controller,
    on every registered scenario."""

    #: gates that can never fire: saturation is capped at 1.0 and the
    #: comparison is strict, and no plan reaches a 1e9 stretch
    PERMISSIVE = AdmissionConfig(saturation_threshold=1.0, stretch_limit=1e9)

    @pytest.mark.parametrize("scenario_name", available_scenarios())
    def test_permissive_controller_is_identity(self, scenario_name):
        specs = [
            TenantSpec(name="t1", arrival_rate=0.008, max_arrivals=2, v=10),
            TenantSpec(name="t2", arrival_rate=0.008, max_arrivals=2, v=10),
        ]
        stream = WorkloadStream(specs, seed=5, horizon=4000.0)
        runs = {}
        for admission in (None, self.PERMISSIVE):
            run = materialize(
                make_scenario(scenario_name), initial_size=4, seed=5, horizon=4000.0
            )
            runs[admission is not None] = _run_multi(
                stream.arrivals(),
                run.pool,
                perf_profile=run.profile,
                admission=admission,
            )
        plain, gated = runs[False], runs[True]
        assert len(plain.outcomes) == len(gated.outcomes)
        for a, b in zip(plain.outcomes, gated.outcomes):
            assert a.schedule.to_dict() == b.schedule.to_dict()
            assert a.completed_at == b.completed_at
            assert a.dedicated_span == b.dedicated_span
            assert [
                (d.time, d.event, d.adopted) for d in a.decisions
            ] == [(d.time, d.event, d.adopted) for d in b.decisions]
        assert not plain.admission
        assert gated.admission and all(
            d.action == "admit" for d in gated.admission
        )


class TestAdmissionUnderOverload:
    def _overload_config(self, **overrides):
        base = MultiTenantConfig(
            tenants=3,
            arrival_rate=0.02,
            resources=8,
            v=12,
            parallelism=6,
            max_arrivals=4,
            scenario="flash_crowd",
            seed=0,
        )
        return replace(base, **overrides)

    def test_admission_bounds_tail_stretch_under_flash_crowd(self):
        off = run_multi_tenant_case(self._overload_config())
        on = run_multi_tenant_case(
            self._overload_config(
                admission=True,
                stretch_limit=3.0,
                saturation_threshold=0.8,
                max_deferrals=3,
            )
        )
        assert on.rejected + on.deferrals > 0
        assert on.p99_stretch < off.p99_stretch
        assert on.workflows + on.rejected == off.workflows

    def test_deferred_arrivals_keep_cross_tenant_exclusivity(self):
        on = run_multi_tenant_case(
            self._overload_config(
                admission=True,
                stretch_limit=2.0,
                saturation_threshold=0.5,
                max_deferrals=5,
            )
        )
        assert on.deferrals > 0
        on.result.shared_timelines()  # raises on any overlapping slot

    def test_rejected_workflows_produce_no_outcome(self):
        on = run_multi_tenant_case(
            self._overload_config(
                admission=True,
                stretch_limit=2.0,
                saturation_threshold=0.5,
                max_deferrals=0,
            )
        )
        rejected = set(on.result.rejected_keys())
        assert rejected
        assert rejected.isdisjoint({o.key for o in on.result.outcomes})
        assert 0.0 < on.rejection_rate <= 1.0


# ----------------------------------------------------------------------
# deadlines / SLOs on the workload layer
# ----------------------------------------------------------------------
class TestServiceTargets:
    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError, match="deadline_factor"):
            TenantSpec(name="t1", deadline_factor=0.0)
        with pytest.raises(ValueError, match="slo_stretch"):
            TenantSpec(name="t1", slo_stretch=0.5)

    def test_targets_flow_through_stream_to_outcomes(self, make_case):
        spec = TenantSpec(
            name="t1",
            trace=(0.0,),
            mix=(("random", 1.0),),
            v=8,
            deadline_factor=2.0,
            slo_stretch=3.0,
        )
        stream = WorkloadStream([spec], seed=1, horizon=100.0)
        (arrival,) = stream.arrivals()
        assert arrival.deadline_factor == 2.0
        assert arrival.slo_stretch == 3.0
        pool = ResourcePool([Resource("r1"), Resource("r2")])
        result = _run_multi(stream.arrivals(), pool)
        (outcome,) = result.outcomes
        assert outcome.deadline == pytest.approx(2.0 * outcome.dedicated_span)
        assert outcome.slo_stretch == 3.0
        # alone on the grid: completion == dedicated span, no violations
        assert not outcome.deadline_violated
        assert not outcome.slo_violated

    def test_violation_flags_fire_under_contention(self, make_case):
        pool = ResourcePool([Resource("r1")])  # pure queueing
        cases = [make_case(v=8, seed=s) for s in (1, 2)]
        arrivals = [
            WorkflowArrival(
                "t1", 0, 0.0, "random", cases[0], seq=0,
                deadline_factor=1.1, slo_stretch=1.1,
            ),
            WorkflowArrival(
                "t2", 0, 0.0, "random", cases[1], seq=1,
                deadline_factor=1.1, slo_stretch=1.1,
            ),
        ]
        result = _run_multi(arrivals, pool)
        assert result.deadline_violations() >= 1
        assert result.slo_violations() >= 1


# ----------------------------------------------------------------------
# CLI + ledger threading
# ----------------------------------------------------------------------
class TestOverloadCli:
    def test_multi_admission_flag_writes_overload_columns(self, tmp_path: Path):
        out = tmp_path / "overload.json"
        code = main(
            [
                "multi",
                "--tenants",
                "3",
                "--arrival-rate",
                "0.02",
                "--scenario",
                "flash_crowd",
                "--policies",
                "credit_drf",
                "--admission",
                "--stretch-limit",
                "3.0",
                "--saturation-threshold",
                "0.8",
                "--max-deferrals",
                "3",
                "--quick",
                "--seed",
                "0",
                "--name",
                "overload_cli",
                "--out",
                str(out),
            ]
        )
        assert code == EXIT_OK
        ledger = json.loads(out.read_text())
        assert ledger["admission"] is True
        assert ledger["base_config"]["admission"] is True
        (point,) = ledger["points"]
        assert point["admission"] is True
        assert point["p99_stretch"] > 0.0
        assert point["rejected"] + point["deferrals"] >= 0
        for tenant_metrics in point["per_tenant"].values():
            assert 0.0 < tenant_metrics["credit"] <= 1.0

    def test_bad_admission_options_rejected(self):
        from repro.cli import EXIT_ERROR

        argv = ["multi", "--quick", "--admission"]
        for bad in (
            ["--stretch-limit", "0.5"],
            ["--saturation-threshold", "1.5"],
            ["--max-deferrals", "-1"],
        ):
            assert main(argv + bad) == EXIT_ERROR

    def test_facade_metrics_surface_overload_numbers(self):
        config = MultiTenantConfig(
            tenants=3,
            arrival_rate=0.02,
            resources=8,
            v=12,
            parallelism=6,
            max_arrivals=4,
            scenario="flash_crowd",
            seed=0,
        )
        stream = config.build_stream()
        run = config.build_scenario_run()
        result = repro.run(
            stream,
            run.pool,
            mode="multi",
            perf_profile=run.profile,
            admission=AdmissionConfig(stretch_limit=2.0, saturation_threshold=0.5),
            policy="credit_drf",
        )
        metrics = result.metrics
        assert "rejected_workflows" in metrics
        assert "deferred_offers" in metrics
        assert metrics["deferred_offers"] + metrics["rejected_workflows"] > 0
        assert set(metrics["credits"]) <= {"t1", "t2", "t3"}
