"""Tests for the multi-workflow subsystem: workload streams, shared-grid
booking (the ``busy`` scheduler parameter), the multi-tenant planner's
policies, the shared-grid executor, and the multi-tenancy metrics."""

from __future__ import annotations

import pytest

from repro.core.multi_tenant import POLICIES, ActiveWorkflow, MultiTenantPlanner
from repro.experiments.metrics import (
    exceedance_rate,
    jain_fairness_index,
    percentile,
)
from repro.experiments.multi_tenant import (
    MultiTenantConfig,
    run_multi_tenant_case,
)
from repro.experiments.reporting import render_multi_tenant_matrix
from repro.experiments.sweep import sweep_multi_workflow
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.aheft import AHEFTScheduler, aheft_reschedule
from repro.scheduling.base import Assignment, Schedule
from repro.scheduling.heft import heft_schedule
from repro.scheduling.validation import check_no_overlap
from repro.simulation.shared_grid import SharedGridExecutor
from repro.utils.rng import spawn_rng
from repro.workload.streams import (
    TenantSpec,
    WorkflowArrival,
    WorkloadStream,
    default_tenants,
    poisson_arrival_times,
)


# ----------------------------------------------------------------------
# workload streams
# ----------------------------------------------------------------------
class TestPoissonArrivals:
    def test_deterministic_from_rng(self):
        a = poisson_arrival_times(
            0.01, horizon=1000.0, max_arrivals=50, rng=spawn_rng(1, "x")
        )
        b = poisson_arrival_times(
            0.01, horizon=1000.0, max_arrivals=50, rng=spawn_rng(1, "x")
        )
        assert a == b and a

    def test_zero_rate_is_empty(self):
        assert (
            poisson_arrival_times(
                0.0, horizon=100.0, max_arrivals=5, rng=spawn_rng(0, "y")
            )
            == []
        )

    def test_horizon_and_cap_bound_the_stream(self):
        times = poisson_arrival_times(
            10.0, horizon=50.0, max_arrivals=7, rng=spawn_rng(2, "z")
        )
        assert len(times) <= 7
        assert all(0 < t <= 50.0 for t in times)
        assert times == sorted(times)


class TestTenantSpec:
    def test_rejects_unknown_workload_kind(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            TenantSpec(name="t1", mix=(("fractal", 1.0),))

    def test_rejects_unsorted_trace(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TenantSpec(name="t1", trace=(5.0, 1.0))

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            TenantSpec(name="t1", weight=0.0)

    def test_trace_replay_overrides_poisson(self):
        spec = TenantSpec(name="t1", arrival_rate=99.0, trace=(10.0, 20.0, 9000.0))
        assert spec.arrival_times(seed=0, horizon=8000.0) == [10.0, 20.0]

    def test_single_kind_mix_always_draws_it(self):
        spec = TenantSpec(name="t1", mix=(("wien2k", 1.0),))
        assert {spec.draw_kind(i, seed=4) for i in range(6)} == {"wien2k"}

    def test_case_generation_is_deterministic(self):
        spec = TenantSpec(name="t1", v=12)
        a = spec.build_case("random", 0, seed=7)
        b = spec.build_case("random", 0, seed=7)
        assert a.workflow.num_jobs == b.workflow.num_jobs == 12
        assert a.costs.computation_cost("n1", "r1") == b.costs.computation_cost(
            "n1", "r1"
        )


class TestWorkloadStream:
    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadStream([TenantSpec(name="t1"), TenantSpec(name="t1")])

    def test_arrivals_sorted_with_global_seq(self):
        stream = WorkloadStream(default_tenants(3, arrival_rate=0.004), seed=1)
        arrivals = stream.arrivals()
        assert [a.seq for a in arrivals] == list(range(len(arrivals)))
        assert [a.time for a in arrivals] == sorted(a.time for a in arrivals)

    def test_tenant_stream_independent_of_other_tenants(self):
        """Adding a tenant never reshuffles an existing tenant's arrivals."""
        small = WorkloadStream(default_tenants(1), seed=3).arrivals()
        large = WorkloadStream(default_tenants(3), seed=3).arrivals()
        t1_small = [(a.time, a.kind) for a in small if a.tenant == "t1"]
        t1_large = [(a.time, a.kind) for a in large if a.tenant == "t1"]
        assert t1_small == t1_large


# ----------------------------------------------------------------------
# the busy scheduler parameter (shared-grid booking seam)
# ----------------------------------------------------------------------
class TestBusyIntervals:
    def test_heft_plans_around_busy_blocks(self, make_case):
        case = make_case(v=16, seed=2)
        resources = ["r1", "r2"]
        busy = {rid: [(0.0, 400.0)] for rid in resources}
        schedule = heft_schedule(case.workflow, case.costs, resources, busy=busy)
        assert min(a.start for a in schedule) >= 400.0 - 1e-9
        assert check_no_overlap(schedule) == []

    def test_empty_busy_is_identical_to_none(self, make_case):
        case = make_case(v=20, seed=5)
        resources = ["r1", "r2", "r3"]
        a = heft_schedule(case.workflow, case.costs, resources)
        b = heft_schedule(case.workflow, case.costs, resources, busy={})
        assert a.to_dict() == b.to_dict()

    def test_overlapping_busy_spans_are_merged_not_rejected(self, make_case):
        case = make_case(v=10, seed=1)
        busy = {"r1": [(0.0, 100.0), (50.0, 150.0)], "r2": [(10.0, 10.0)]}
        schedule = heft_schedule(case.workflow, case.costs, ["r1", "r2"], busy=busy)
        for assignment in schedule:
            if assignment.resource_id == "r1":
                assert assignment.start >= 150.0 - 1e-9

    def test_aheft_reschedule_respects_busy(self, make_case):
        case = make_case(v=16, seed=8)
        resources = ["r1", "r2"]
        previous = heft_schedule(case.workflow, case.costs, resources)
        clock = previous.makespan() * 0.4
        horizon = previous.makespan() * 2.0
        busy = {rid: [(clock, horizon)] for rid in resources}
        candidate = aheft_reschedule(
            case.workflow,
            case.costs,
            resources,
            clock=clock,
            previous_schedule=previous,
            busy=busy,
        )
        for assignment in candidate:
            if assignment.start >= clock - 1e-9 and assignment.finish > assignment.start:
                # every newly placed job had to wait for the foreign block
                assert assignment.start >= horizon - 1e-9 or assignment.finish <= clock + 1e-9


# ----------------------------------------------------------------------
# planner policies
# ----------------------------------------------------------------------
def _synthetic(key, tenant, seq, spans, dedicated=100.0):
    schedule = Schedule(name=key)
    for index, (rid, start, finish) in enumerate(spans):
        schedule.add(Assignment(f"{key}-j{index}", rid, start, finish))
    return ActiveWorkflow(
        key=key,
        tenant=tenant,
        seq=seq,
        arrival_time=0.0,
        kind="random",
        workflow=None,
        costs=None,
        scheduler=AHEFTScheduler(),
        schedule=schedule,
        dedicated_span=dedicated,
    )


class TestPlannerPolicies:
    def _pool(self, n=2):
        return ResourcePool([Resource(f"r{i + 1}") for i in range(n)])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            MultiTenantPlanner(self._pool(), policy="round_robin")

    def test_fifo_orders_by_submission(self):
        planner = MultiTenantPlanner(self._pool(), policy="fifo")
        early = _synthetic("a/0", "a", 0, [("r1", 0.0, 50.0)])
        late = _synthetic("b/0", "b", 1, [("r2", 0.0, 500.0)])
        assert planner.replan_order([late, early], clock=10.0) == [early, late]

    def test_fair_share_prefers_least_served_tenant(self):
        planner = MultiTenantPlanner(self._pool(), policy="fair_share")
        planner._active["hog/0"] = _synthetic("hog/0", "hog", 0, [("r1", 0.0, 100.0)])
        planner._active["new/0"] = _synthetic("new/0", "new", 1, [("r2", 90.0, 120.0)])
        order = planner.replan_order(list(planner._active.values()), clock=100.0)
        # hog consumed 100 units, new only 10: new replans (books) first
        assert [wf.key for wf in order] == ["new/0", "hog/0"]

    def test_fair_share_weights_scale_entitlement(self):
        planner = MultiTenantPlanner(
            self._pool(), policy="fair_share", tenant_weights={"hog": 20.0}
        )
        planner._active["hog/0"] = _synthetic("hog/0", "hog", 0, [("r1", 0.0, 100.0)])
        planner._active["new/0"] = _synthetic("new/0", "new", 1, [("r2", 90.0, 120.0)])
        order = planner.replan_order(list(planner._active.values()), clock=100.0)
        # weight 20 divides hog's consumption to 5 < new's 10
        assert [wf.key for wf in order] == ["hog/0", "new/0"]

    def test_rank_priority_puts_longest_remaining_first(self):
        planner = MultiTenantPlanner(self._pool(), policy="rank_priority")
        short = _synthetic("s/0", "s", 0, [("r1", 0.0, 50.0)])
        long = _synthetic("l/0", "l", 1, [("r2", 0.0, 900.0)])
        assert planner.replan_order([short, long], clock=10.0) == [long, short]

    def test_busy_view_excludes_self_and_finished_work(self):
        planner = MultiTenantPlanner(self._pool(), policy="fifo")
        planner._active["a/0"] = _synthetic("a/0", "a", 0, [("r1", 0.0, 50.0)])
        planner._active["b/0"] = _synthetic(
            "b/0", "b", 1, [("r1", 60.0, 90.0), ("r2", 0.0, 10.0)]
        )
        view = planner.busy_view("a/0", clock=20.0)
        assert view == {"r1": [(60.0, 90.0)]}  # own spans and finished work pruned


# ----------------------------------------------------------------------
# shared-grid executor semantics
# ----------------------------------------------------------------------
class TestSharedGridExecutor:
    def test_second_workflow_waits_for_residual_capacity(self, make_case):
        pool = ResourcePool([Resource("r1")])  # one resource: pure queueing
        first = make_case(v=8, seed=1)
        second = make_case(v=8, seed=2)
        arrivals = [
            WorkflowArrival("t1", 0, 0.0, "random", first, seq=0),
            WorkflowArrival("t2", 0, 0.0, "random", second, seq=1),
        ]
        result = SharedGridExecutor(arrivals, pool).run()
        result.shared_timelines()  # no overlap on the single resource
        a, b = result.outcomes
        # with one resource the joint span is at least the sum of work
        assert result.makespan() >= a.dedicated_span + b.dedicated_span - 1e-6
        assert b.stretch > 1.0

    def test_wasted_work_attributed_to_the_right_tenant(self, make_case, make_scenario):
        run = make_scenario("departures", initial_size=5, seed=2)
        case = make_case(v=20, seed=6, omega_dag=300.0)
        arrivals = [WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)]
        result = SharedGridExecutor(
            arrivals, run.pool, perf_profile=run.profile
        ).run()
        outcome = result.outcomes[0]
        assert result.total_wasted_work() == outcome.wasted_work
        assert result.total_killed_jobs() == outcome.killed_jobs

    def test_policies_produce_valid_but_possibly_different_interleaves(
        self, make_scenario
    ):
        specs = default_tenants(2, arrival_rate=0.003, max_arrivals=2, v=10)
        stream = WorkloadStream(specs, seed=4, horizon=4000.0)
        spans = {}
        for policy in POLICIES:
            run = make_scenario("churn", initial_size=5, seed=4)
            result = SharedGridExecutor(
                stream.arrivals(),
                run.pool,
                perf_profile=run.profile,
                policy=policy,
            ).run()
            result.shared_timelines()
            assert result.policy == policy
            spans[policy] = result.makespan()
        assert len(spans) == len(POLICIES)

    def test_duplicate_admission_rejected(self, make_case):
        pool = ResourcePool([Resource("r1")])
        case = make_case(v=8, seed=1)
        arrival = WorkflowArrival("t1", 0, 0.0, "random", case, seq=0)
        with pytest.raises(ValueError, match="already admitted"):
            SharedGridExecutor([arrival, arrival], pool).run()


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentile_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([], 95.0) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 120.0)

    def test_percentile_boundaries_exact(self):
        values = [3.0, 1.0, 4.0, 1.5]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        # a generator is consumed once, never iterated twice
        assert percentile(iter(values), 100) == 4.0
        assert percentile([], 0) == 0.0
        assert percentile([], 100) == 0.0

    def test_percentile_invalid_q_raises_even_when_empty(self):
        # regression: the empty-input shortcut used to run before the q
        # validation, so percentile([], 250) silently returned 0.0
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([], 250.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([], -1.0)

    def test_exceedance_rate_contract(self):
        assert exceedance_rate([], 2.0) == 0.0
        # strictly above the limit: values equal to the limit do not count
        assert exceedance_rate([1.0, 2.0, 3.0, 4.0], 2.0) == pytest.approx(0.5)
        assert exceedance_rate(iter([1.0, 3.0]), 2.0) == pytest.approx(0.5)

    def test_jain_index_bounds(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            jain_fairness_index([-1.0])


# ----------------------------------------------------------------------
# experiments layer
# ----------------------------------------------------------------------
class TestMultiTenantExperiments:
    def test_case_result_ledger_shape(self):
        config = MultiTenantConfig(
            tenants=2,
            arrival_rate=0.003,
            resources=5,
            scenario="departures",
            v=12,
            parallelism=6,
            max_arrivals=2,
            seed=1,
        )
        outcome = run_multi_tenant_case(config)
        payload = outcome.as_dict()
        for key in (
            "mean_flow_time",
            "p95_flow_time",
            "mean_stretch",
            "throughput",
            "fairness",
            "wasted_work",
            "per_tenant",
        ):
            assert key in payload
        assert set(payload["per_tenant"]) == set(outcome.per_tenant)
        assert outcome.workflows > 0
        assert 0.0 < outcome.fairness <= 1.0 + 1e-9

    def test_sweep_matrix_shape_and_determinism(self):
        base = MultiTenantConfig(resources=5, v=10, parallelism=6, max_arrivals=2)
        kwargs = dict(
            arrival_rates=[0.003],
            tenant_counts=[1, 2],
            scenarios=["static", "departures"],
            policies=["fifo"],
            base_config=base,
            seed=2,
        )
        points_a = sweep_multi_workflow(**kwargs)
        points_b = sweep_multi_workflow(**kwargs)
        assert len(points_a) == 4
        assert [p.as_dict() for p in points_a] == [p.as_dict() for p in points_b]
        table = render_multi_tenant_matrix(points_a, title="matrix")
        assert "fairness" in table and "departures" in table

    def test_same_seed_same_workload_across_scenarios(self):
        """Scenario rows differ by dynamics, not workload sampling."""
        base = MultiTenantConfig(resources=5, v=10, max_arrivals=2, seed=3)
        points = sweep_multi_workflow(
            scenarios=["static", "churn"],
            tenant_counts=[2],
            arrival_rates=[0.003],
            base_config=base,
        )
        static_point, churn_point = points
        assert static_point.workflows == churn_point.workflows
