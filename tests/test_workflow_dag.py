"""Tests for the workflow DAG model."""

import pytest

from repro.workflow.dag import Job, Workflow


class TestConstruction:
    def test_add_job_by_name(self):
        wf = Workflow("w")
        job = wf.add_job("a", operation="blast")
        assert isinstance(job, Job)
        assert wf.job("a").operation == "blast"

    def test_add_job_object(self):
        wf = Workflow("w")
        wf.add_job(Job("a", operation="x", payload={"k": 1}))
        assert wf.job("a").payload["k"] == 1

    def test_duplicate_job_raises(self):
        wf = Workflow("w")
        wf.add_job("a")
        with pytest.raises(ValueError, match="duplicate"):
            wf.add_job("a")

    def test_add_edge_unknown_source_raises(self):
        wf = Workflow("w")
        wf.add_job("a")
        with pytest.raises(KeyError):
            wf.add_edge("ghost", "a")

    def test_add_edge_unknown_destination_raises(self):
        wf = Workflow("w")
        wf.add_job("a")
        with pytest.raises(KeyError):
            wf.add_edge("a", "ghost")

    def test_self_loop_raises(self):
        wf = Workflow("w")
        wf.add_job("a")
        with pytest.raises(ValueError, match="self loop"):
            wf.add_edge("a", "a")

    def test_duplicate_edge_raises(self):
        wf = Workflow("w")
        wf.add_job("a")
        wf.add_job("b")
        wf.add_edge("a", "b")
        with pytest.raises(ValueError, match="duplicate edge"):
            wf.add_edge("a", "b")

    def test_negative_data_raises(self):
        wf = Workflow("w")
        wf.add_job("a")
        wf.add_job("b")
        with pytest.raises(ValueError):
            wf.add_edge("a", "b", data=-1.0)

    def test_set_data_updates_both_directions(self, diamond_workflow):
        diamond_workflow.set_data("a", "b", 9.0)
        assert diamond_workflow.data("a", "b") == 9.0

    def test_set_data_missing_edge_raises(self, diamond_workflow):
        with pytest.raises(KeyError):
            diamond_workflow.set_data("b", "c", 1.0)

    def test_remove_edge(self, diamond_workflow):
        diamond_workflow.remove_edge("a", "b")
        assert "b" not in diamond_workflow.successors("a")
        assert "a" not in diamond_workflow.predecessors("b")


class TestQueries:
    def test_counts(self, diamond_workflow):
        assert diamond_workflow.num_jobs == 4
        assert diamond_workflow.num_edges == 4
        assert len(diamond_workflow) == 4

    def test_contains_and_iter(self, diamond_workflow):
        assert "a" in diamond_workflow
        assert "ghost" not in diamond_workflow
        assert set(iter(diamond_workflow)) == {"a", "b", "c", "d"}

    def test_predecessors_successors(self, diamond_workflow):
        assert set(diamond_workflow.successors("a")) == {"b", "c"}
        assert set(diamond_workflow.predecessors("d")) == {"b", "c"}

    def test_data_lookup(self, diamond_workflow):
        assert diamond_workflow.data("a", "c") == 3.0

    def test_data_missing_edge_raises(self, diamond_workflow):
        with pytest.raises(KeyError):
            diamond_workflow.data("a", "d")

    def test_entry_exit_jobs(self, diamond_workflow):
        assert diamond_workflow.entry_jobs() == ["a"]
        assert diamond_workflow.exit_jobs() == ["d"]

    def test_degrees(self, diamond_workflow):
        assert diamond_workflow.out_degree("a") == 2
        assert diamond_workflow.in_degree("d") == 2

    def test_edges_listing(self, diamond_workflow):
        edges = diamond_workflow.edges()
        assert ("a", "b", 2.0) in edges
        assert len(edges) == 4

    def test_operations_sorted_unique(self):
        wf = Workflow("w")
        wf.add_job("a", operation="z")
        wf.add_job("b", operation="a")
        wf.add_job("c", operation="z")
        assert wf.operations() == ["a", "z"]


class TestStructure:
    def test_topological_order_respects_edges(self, diamond_workflow):
        order = diamond_workflow.topological_order()
        assert order.index("a") < order.index("b")
        assert order.index("c") < order.index("d")

    def test_is_acyclic_true(self, diamond_workflow):
        assert diamond_workflow.is_acyclic()

    def test_cycle_detection(self):
        wf = Workflow("w")
        wf.add_job("a")
        wf.add_job("b")
        wf.add_edge("a", "b")
        wf.add_edge("b", "a")
        assert not wf.is_acyclic()
        with pytest.raises(ValueError):
            wf.validate()

    def test_validate_empty_raises(self):
        with pytest.raises(ValueError, match="no jobs"):
            Workflow("empty").validate()

    def test_ancestors_descendants(self, diamond_workflow):
        assert diamond_workflow.ancestors("d") == {"a", "b", "c"}
        assert diamond_workflow.descendants("a") == {"b", "c", "d"}
        assert diamond_workflow.ancestors("a") == set()

    def test_subgraph_keeps_internal_edges(self, diamond_workflow):
        sub = diamond_workflow.subgraph(["a", "b", "d"])
        assert sub.num_jobs == 3
        assert ("a", "b", 2.0) in sub.edges()
        assert ("b", "d", 1.0) in sub.edges()
        # the c path is gone
        assert all(src != "c" and dst != "c" for src, dst, _ in sub.edges())

    def test_subgraph_unknown_job_raises(self, diamond_workflow):
        with pytest.raises(KeyError):
            diamond_workflow.subgraph(["a", "ghost"])


class TestMutationLog:
    """The data-mutation log behind subgraph-scoped rank invalidation."""

    def _chain(self):
        wf = Workflow("log")
        for j in ("a", "b", "c"):
            wf.add_job(j)
        wf.add_edge("a", "b", data=4.0)
        wf.add_edge("b", "c", data=2.0)
        return wf

    def test_set_data_is_reconstructible(self):
        wf = self._chain()
        v0 = wf.version
        wf.set_data("a", "b", 9.0)
        wf.set_data("b", "c", 1.0)
        assert wf.data_edges_changed_between(v0, wf.version) == [
            ("a", "b"),
            ("b", "c"),
        ]

    def test_empty_range_is_empty_not_none(self):
        wf = self._chain()
        assert wf.data_edges_changed_between(wf.version, wf.version) == []

    def test_structural_mutation_defeats_reconstruction(self):
        wf = self._chain()
        v0 = wf.version
        wf.set_data("a", "b", 9.0)
        wf.add_job("d")
        wf.add_edge("c", "d", data=1.0)
        assert wf.data_edges_changed_between(v0, wf.version) is None
        # but a window entirely after the structural change is fine again
        v1 = wf.version
        wf.set_data("c", "d", 3.0)
        assert wf.data_edges_changed_between(v1, wf.version) == [("c", "d")]

    def test_inverted_range_is_none(self):
        wf = self._chain()
        assert wf.data_edges_changed_between(wf.version + 1, wf.version) is None

    def test_structure_version_only_bumps_on_topology(self):
        wf = self._chain()
        sv = wf.structure_version
        wf.set_data("a", "b", 7.0)
        assert wf.structure_version == sv
        wf.add_job("d")
        assert wf.structure_version == sv + 1

    def test_log_overflow_falls_back_to_none(self):
        wf = self._chain()
        v0 = wf.version
        limit = Workflow._MUTATION_LOG_LIMIT
        for i in range(2 * limit + 1):
            wf.set_data("a", "b", float(i + 1))
        # the trimmed prefix is unreconstructible ...
        assert wf.data_edges_changed_between(v0, wf.version) is None
        # ... while the retained suffix still answers exactly
        recent = wf.version - 10
        assert wf.data_edges_changed_between(recent, wf.version) == [
            ("a", "b")
        ] * 10
