"""Tests for deterministic ordering helpers."""

import pytest

from repro.utils.ordering import argsort_stable, stable_min, topological_order


class TestArgsortStable:
    def test_sorts_by_value(self):
        assert argsort_stable({"a": 3.0, "b": 1.0, "c": 2.0}) == ["b", "c", "a"]

    def test_reverse(self):
        assert argsort_stable({"a": 3.0, "b": 1.0, "c": 2.0}, reverse=True) == [
            "a",
            "c",
            "b",
        ]

    def test_ties_broken_by_key(self):
        assert argsort_stable({"z": 1.0, "a": 1.0, "m": 1.0}) == ["a", "m", "z"]

    def test_ties_broken_by_key_in_reverse_too(self):
        assert argsort_stable({"z": 1.0, "a": 1.0}, reverse=True) == ["a", "z"]


class TestStableMin:
    def test_picks_minimum(self):
        assert stable_min([3, 1, 2], key=lambda x: x) == 1

    def test_tie_broken_by_repr(self):
        assert stable_min(["bb", "aa"], key=len) == "aa"

    def test_tolerance_treats_close_values_as_ties(self):
        values = {"b": 1.0, "a": 1.0000001}
        assert stable_min(values, key=values.get, tolerance=1e-3) == "a"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stable_min([], key=lambda x: x)


class TestTopologicalOrder:
    def test_chain(self):
        order = topological_order(["a", "b", "c"], {"a": ["b"], "b": ["c"]})
        assert order == ["a", "b", "c"]

    def test_diamond_respects_dependencies(self):
        order = topological_order(
            ["d", "c", "b", "a"], {"a": ["b", "c"], "b": ["d"], "c": ["d"]}
        )
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_deterministic_tie_break(self):
        order = topological_order(["b", "a", "c"], {})
        assert order == ["a", "b", "c"]

    def test_cycle_raises(self):
        with pytest.raises(ValueError, match="cycle"):
            topological_order(["a", "b"], {"a": ["b"], "b": ["a"]})

    def test_unknown_edge_target_raises(self):
        with pytest.raises(ValueError):
            topological_order(["a"], {"a": ["ghost"]})
