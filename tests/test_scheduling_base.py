"""Tests for scheduling data structures: Assignment, Schedule, timelines, state."""

import pytest

from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    ResourceTimeline,
    Schedule,
)


class TestAssignment:
    def test_duration(self):
        a = Assignment("j", "r", 2.0, 5.0)
        assert a.duration == 3.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Assignment("j", "r", 5.0, 2.0)

    def test_shifted(self):
        a = Assignment("j", "r", 2.0, 5.0).shifted(10.0)
        assert (a.start, a.finish) == (12.0, 15.0)


class TestResourceTimeline:
    def test_append_without_insertion(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 10.0, "a")
        assert tl.earliest_start(0.0, 5.0, insertion=False) == 10.0

    def test_insertion_finds_gap(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 5.0, "a")
        tl.occupy(20.0, 30.0, "b")
        assert tl.earliest_start(0.0, 10.0, insertion=True) == 5.0

    def test_insertion_skips_too_small_gap(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 5.0, "a")
        tl.occupy(8.0, 30.0, "b")
        assert tl.earliest_start(0.0, 10.0, insertion=True) == 30.0

    def test_ready_time_and_available_from(self):
        tl = ResourceTimeline("r1", available_from=7.0)
        assert tl.ready_time() == 7.0
        assert tl.earliest_start(0.0, 1.0) == 7.0
        tl.occupy(7.0, 9.0, "a")
        assert tl.ready_time() == 9.0

    def test_overlap_rejected(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 10.0, "a")
        with pytest.raises(ValueError, match="overlaps"):
            tl.occupy(5.0, 15.0, "b")

    def test_touching_intervals_allowed(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 10.0, "a")
        tl.occupy(10.0, 20.0, "b")
        assert len(tl.intervals()) == 2

    def test_utilisation(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 5.0, "a")
        assert tl.utilisation(10.0) == pytest.approx(0.5)


class TestSchedule:
    def _schedule(self):
        s = Schedule(name="test")
        s.add(Assignment("a", "r1", 0.0, 5.0))
        s.add(Assignment("b", "r1", 5.0, 9.0))
        s.add(Assignment("c", "r2", 1.0, 4.0))
        return s

    def test_basic_queries(self):
        s = self._schedule()
        assert len(s) == 3
        assert "a" in s and "ghost" not in s
        assert s.resource_of("c") == "r2"
        assert s.scheduled_finish_time("b") == 9.0
        assert s.makespan() == 9.0

    def test_empty_makespan_zero(self):
        assert Schedule().makespan() == 0.0

    def test_assignments_on_sorted(self):
        s = self._schedule()
        on_r1 = s.assignments_on("r1")
        assert [a.job_id for a in on_r1] == ["a", "b"]

    def test_replace_assignment(self):
        s = self._schedule()
        s.add(Assignment("a", "r2", 0.0, 3.0))
        assert s.resource_of("a") == "r2"
        assert len(s) == 3

    def test_copy_is_independent(self):
        s = self._schedule()
        clone = s.copy(name="clone")
        clone.add(Assignment("d", "r2", 4.0, 6.0))
        assert "d" in clone and "d" not in s

    def test_timelines_reflect_assignments(self):
        s = self._schedule()
        timelines = s.timelines(["r1", "r2", "r3"])
        assert timelines["r1"].ready_time() == 9.0
        assert timelines["r3"].ready_time() == 0.0

    def test_gantt_rows_and_dict(self):
        s = self._schedule()
        rows = s.gantt_rows()
        assert rows[0][0] == "r1"
        as_dict = s.to_dict()
        assert as_dict["a"]["resource"] == "r1"
        assert as_dict["c"]["finish"] == 4.0

    def test_resources_used(self):
        assert self._schedule().resources_used() == ["r1", "r2"]


class TestExecutionState:
    def test_initial_state(self):
        state = ExecutionState.initial(["a", "b"])
        assert state.job_status("a") is JobStatus.NOT_STARTED
        assert state.not_started_jobs() == ["a", "b"]
        assert not state.all_finished()

    def test_record_lifecycle(self):
        state = ExecutionState.initial(["a"])
        state.record_start("a", "r1", 1.0)
        assert state.is_running("a")
        state.record_finish("a", 3.0)
        assert state.is_finished("a")
        assert state.actual_finish["a"] == 3.0
        assert state.data_available_at("a", "r1") == 3.0
        assert state.all_finished()

    def test_finish_without_start_raises(self):
        state = ExecutionState.initial(["a"])
        with pytest.raises(ValueError):
            state.record_finish("a", 3.0)

    def test_data_arrival_keeps_earliest(self):
        state = ExecutionState.initial(["a"])
        state.record_data_arrival("a", "r2", 10.0)
        state.record_data_arrival("a", "r2", 8.0)
        state.record_data_arrival("a", "r2", 12.0)
        assert state.data_available_at("a", "r2") == 8.0

    def test_from_schedule_statuses(self):
        schedule = Schedule()
        schedule.add(Assignment("a", "r1", 0.0, 5.0))
        schedule.add(Assignment("b", "r1", 5.0, 12.0))
        schedule.add(Assignment("c", "r2", 20.0, 25.0))
        state = ExecutionState.from_schedule(schedule, clock=10.0)
        assert state.is_finished("a")
        assert state.is_running("b")
        assert state.is_not_started("c")
        assert state.executed_on["a"] == "r1"
        assert state.actual_finish["a"] == 5.0
        assert state.data_available_at("a", "r1") == 5.0

    def test_from_schedule_with_explicit_job_list(self):
        schedule = Schedule()
        schedule.add(Assignment("a", "r1", 0.0, 5.0))
        state = ExecutionState.from_schedule(schedule, clock=1.0, jobs=["a", "b"])
        assert state.job_status("b") is JobStatus.NOT_STARTED
